#ifndef CULINARYLAB_COMMON_LOGGING_H_
#define CULINARYLAB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace culinary {

/// Severity levels, ordered: messages below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets / reads the process-wide minimum severity that is emitted.
/// Default is `kWarning` so library internals stay quiet in tests and
/// benches unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message collector; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Usage: `CULINARY_LOG(kInfo) << "loaded " << n << " recipes";`
#define CULINARY_LOG(severity)                                      \
  ::culinary::internal_logging::LogMessage(                         \
      ::culinary::LogLevel::severity, __FILE__, __LINE__)

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_LOGGING_H_
