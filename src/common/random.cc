#include "common/random.h"

#include <cmath>
#include <limits>

namespace culinary {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  uint64_t mixed = SplitMix64(state);
  return SplitMix64(state) ^ mixed;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller with rejection of u1 == 0.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

int64_t Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until product drops below e^-lambda.
    double limit = std::exp(-lambda);
    double prod = 1.0;
    int64_t k = 0;
    do {
      prod *= NextDouble();
      ++k;
    } while (prod > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  double v = lambda + std::sqrt(lambda) * NextGaussian() + 0.5;
  if (v < 0.0) return 0;
  return static_cast<int64_t>(v);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  SampleWithoutReplacement(n, k, out);
  return out;
}

void Rng::SampleWithoutReplacement(size_t n, size_t k,
                                   std::vector<size_t>& out) {
  out.clear();
  if (k == 0 || n == 0) return;
  if (k > n) k = n;
  out.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if taken, use j.
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    bool taken = false;
    for (size_t chosen : out) {
      if (chosen == t) {
        taken = true;
        break;
      }
    }
    out.push_back(taken ? j : t);
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) return;
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) return;  // negative or NaN
    total += w;
  }
  if (!(total > 0.0)) return;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have probability 1 up to rounding.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
  valid_ = true;
}

ZipfSampler::ZipfSampler(size_t n, double s, double q, uint64_t /*unused*/)
    : probs_(BuildProbs(n, s, q)), alias_(probs_) {}

std::vector<double> ZipfSampler::BuildProbs(size_t n, double s, double q) {
  std::vector<double> p(n, 0.0);
  if (n == 0 || !(s > 0.0) || q < 0.0) return p;
  double total = 0.0;
  for (size_t r = 1; r <= n; ++r) {
    p[r - 1] = 1.0 / std::pow(static_cast<double>(r) + q, s);
    total += p[r - 1];
  }
  for (double& v : p) v /= total;
  return p;
}

double ZipfSampler::Probability(size_t rank) const {
  if (rank == 0 || rank > probs_.size()) return 0.0;
  return probs_[rank - 1];
}

}  // namespace culinary
