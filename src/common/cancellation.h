#ifndef CULINARYLAB_COMMON_CANCELLATION_H_
#define CULINARYLAB_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace culinary {

/// A wall-clock budget for a long-running operation.
///
/// A default-constructed `Deadline` is infinite (never expires). Sweeps
/// check `expired()` cooperatively between units of work — one steady-clock
/// read — so an expired deadline stops a sweep within one unit's latency
/// rather than preempting it mid-unit. Deadlines are plain values: copying
/// one copies the absolute expiry instant, so a budget set at the CLI is
/// naturally shared by every sweep of the command.
class Deadline {
 public:
  /// Infinite: `expired()` is always false.
  Deadline() = default;

  /// A deadline `ms` milliseconds from now (clamped to now for `ms < 0`).
  static Deadline After(double ms);

  /// Synonym for the default constructor, for call-site readability.
  static Deadline Infinite() { return Deadline(); }

  /// True when a finite expiry instant was set.
  bool has_deadline() const { return has_deadline_; }

  /// True when the deadline has passed (never for infinite deadlines).
  bool expired() const;

  /// Milliseconds until expiry: negative once expired, +infinity for
  /// infinite deadlines.
  double remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool has_deadline_ = false;
};

/// Observer half of a cancellation channel (see `CancellationSource`).
///
/// A default-constructed token is *null*: it can never report cancellation
/// and costs nothing to check, so APIs can take a token unconditionally.
/// Tokens are cheap to copy (one shared_ptr) and safe to read from any
/// thread.
class CancellationToken {
 public:
  /// A null token that never reports cancellation.
  CancellationToken() = default;

  /// True when this token is connected to a source (and so could ever
  /// become cancelled).
  bool cancellable() const { return flag_ != nullptr; }

  /// True once the connected source requested cancellation. One relaxed
  /// pointer test plus an acquire load; never true for null tokens.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner half of a cancellation channel.
///
/// The party that wants to be able to abort (a watchdog thread, a signal
/// handler trampoline, a test) holds the source and hands out tokens;
/// calling `RequestCancel()` flips every token derived from this source.
/// Cancellation is sticky — there is no un-cancel.
class CancellationSource {
 public:
  CancellationSource();

  /// A token observing this source.
  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation. Idempotent and thread-safe.
  void RequestCancel() { flag_->store(true, std::memory_order_release); }

  /// True once `RequestCancel` has been called.
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The cooperative stop check used between blocks of a sweep: returns
/// `kCancelled` when `cancel` fired, else `kDeadlineExceeded` when
/// `deadline` passed, else OK. Cancellation wins when both hold, since it
/// is the more deliberate signal.
Status CheckStop(const CancellationToken& cancel, const Deadline& deadline);

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_CANCELLATION_H_
