#ifndef CULINARYLAB_COMMON_BITMAP_H_
#define CULINARYLAB_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace culinary {

/// Portable single-word popcount. On targets that guarantee the POPCNT
/// instruction the builtin lowers to one instruction; elsewhere GCC would
/// emit a libgcc call per word, so we fall back to the SWAR reduction
/// (~12 ops, branch-free, auto-vectorizable). Generalized out of
/// flavor::CompoundBitset so the dataframe kernels share one definition.
inline uint64_t PopCount64(uint64_t x) {
#if defined(__POPCNT__)
  return static_cast<uint64_t>(__builtin_popcountll(x));
#else
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return (x * 0x0101010101010101ULL) >> 56;
#endif
}

/// Index of the lowest set bit of a non-zero word.
inline size_t CountTrailingZeros64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<size_t>(__builtin_ctzll(x));
#else
  // Isolate the lowest set bit and count the bits below it.
  return static_cast<size_t>(PopCount64((x & (~x + 1)) - 1));
#endif
}

/// |a AND b| over two word runs of length `n`, with four independent
/// accumulators so the loop pipelines / vectorizes. This is the innermost
/// kernel of both the pairing triangle build and dataframe selection
/// counting, so it lives here rather than being duplicated per caller.
inline size_t IntersectionPopCount(const uint64_t* a, const uint64_t* b,
                                   size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += PopCount64(a[i] & b[i]);
    c1 += PopCount64(a[i + 1] & b[i + 1]);
    c2 += PopCount64(a[i + 2] & b[i + 2]);
    c3 += PopCount64(a[i + 3] & b[i + 3]);
  }
  for (; i < n; ++i) c0 += PopCount64(a[i] & b[i]);
  return static_cast<size_t>(c0 + c1 + c2 + c3);
}

/// A growable bitset packed into uint64 words, least-significant bit first.
///
/// The shared substrate behind `flavor::CompoundBitset` (molecule sets) and
/// the dataframe layer's validity and selection bitmaps. Two invariants are
/// maintained by every mutator and relied on by the word-at-a-time kernels:
///
///   1. `words().size() == WordsFor(num_bits())` exactly.
///   2. Bits at positions >= `num_bits()` in the last word are zero, so
///      whole-word popcounts never overcount and word-wise equality is
///      value equality.
class Bitmap {
 public:
  static constexpr size_t kBitsPerWord = 64;

  /// Number of words needed for `bits` bits.
  static size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

  Bitmap() = default;

  /// `num_bits` bits, all set to `value`.
  explicit Bitmap(size_t num_bits, bool value = false)
      : words_(WordsFor(num_bits), value ? ~uint64_t{0} : uint64_t{0}),
        num_bits_(num_bits) {
    MaskTail();
  }

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }
  bool empty() const { return num_bits_ == 0; }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Appends one bit.
  void PushBack(bool value) {
    if ((num_bits_ & 63) == 0) words_.push_back(0);
    if (value) words_.back() |= uint64_t{1} << (num_bits_ & 63);
    ++num_bits_;
  }

  /// Pre-allocates capacity for `bits` bits without changing the size.
  void Reserve(size_t bits) { words_.reserve(WordsFor(bits)); }

  /// Grows or shrinks to `num_bits`; new bits take `value`.
  void Resize(size_t num_bits, bool value = false) {
    const size_t old_bits = num_bits_;
    num_bits_ = num_bits;
    words_.resize(WordsFor(num_bits), value ? ~uint64_t{0} : uint64_t{0});
    if (num_bits > old_bits && value && old_bits % 64 != 0) {
      // The partial old tail word must gain set bits too.
      words_[old_bits >> 6] |= ~uint64_t{0} << (old_bits & 63);
    }
    MaskTail();
  }

  /// Number of set bits (whole-bitmap popcount; tail invariant makes the
  /// plain word loop exact).
  size_t CountSet() const {
    uint64_t total = 0;
    for (uint64_t w : words_) total += PopCount64(w);
    return static_cast<size_t>(total);
  }

  /// Number of set bits in [begin, end): word-at-a-time with edge masks.
  size_t CountSetRange(size_t begin, size_t end) const {
    if (begin >= end) return 0;
    const size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
    const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
    if (first_word == last_word) {
      return PopCount64(words_[first_word] & first_mask & last_mask);
    }
    uint64_t total = PopCount64(words_[first_word] & first_mask);
    for (size_t w = first_word + 1; w < last_word; ++w) {
      total += PopCount64(words_[w]);
    }
    total += PopCount64(words_[last_word] & last_mask);
    return static_cast<size_t>(total);
  }

  /// In-place AND / OR with a same-size bitmap.
  void AndWith(const Bitmap& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }
  void OrWith(const Bitmap& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// In-place complement, re-zeroing the tail beyond num_bits().
  void FlipAll() {
    for (uint64_t& w : words_) w = ~w;
    MaskTail();
  }

  /// Calls `fn(i)` for every set bit in [begin, end), ascending. The loop
  /// touches one word per 64 rows and one ctz per set bit — the idiom every
  /// selection consumer uses.
  template <typename Fn>
  void ForEachSetBit(size_t begin, size_t end, Fn&& fn) const {
    ForEachSetBitInWords(words_.data(), begin, end, std::forward<Fn>(fn));
  }

  /// Same loop over a raw word run (for kernels holding borrowed words).
  template <typename Fn>
  static void ForEachSetBitInWords(const uint64_t* words, size_t begin,
                                   size_t end, Fn&& fn) {
    if (begin >= end) return;
    size_t w = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    uint64_t word = words[w] & (~uint64_t{0} << (begin & 63));
    for (;;) {
      if (w == last_word) word &= ~uint64_t{0} >> (63 - ((end - 1) & 63));
      while (word != 0) {
        fn(w * 64 + CountTrailingZeros64(word));
        word &= word - 1;  // clear lowest set bit
      }
      if (w == last_word) break;
      word = words[++w];
    }
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitmap& a, const Bitmap& b) {
    return !(a == b);
  }

 private:
  /// Restores invariant 2 after whole-word mutations.
  void MaskTail() {
    if (num_bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= ~uint64_t{0} >> (64 - (num_bits_ & 63));
    }
  }

  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
};

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_BITMAP_H_
