#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace culinary {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

RunningStats RunningStats::FromMoments(int64_t count, double mean, double m2,
                                       double min, double max) {
  RunningStats s;
  if (count <= 0) return s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> MidRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average of 1-based ranks i+1 .. j+1.
    double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return PearsonCorrelation(MidRanks(x), MidRanks(y));
}

double ZScore(double observed_mean, double null_mean, double null_stddev,
              int64_t null_count) {
  if (null_count < 1 || null_stddev <= 0.0) return 0.0;
  double se = null_stddev / std::sqrt(static_cast<double>(null_count));
  return (observed_mean - null_mean) / se;
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  if (static_cast<size_t>(value) >= counts_.size()) {
    counts_.resize(static_cast<size_t>(value) + 1, 0);
  }
  ++counts_[static_cast<size_t>(value)];
  ++total_;
  sum_ += static_cast<double>(value);
}

int64_t Histogram::CountAt(int64_t value) const {
  if (value < 0 || static_cast<size_t>(value) >= counts_.size()) return 0;
  return counts_[static_cast<size_t>(value)];
}

int64_t Histogram::max_value() const {
  for (size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] > 0) return static_cast<int64_t>(i - 1);
  }
  return -1;
}

double Histogram::Pmf(int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(CountAt(value)) / static_cast<double>(total_);
}

double Histogram::Cdf(int64_t value) const {
  if (total_ == 0) return 0.0;
  int64_t acc = 0;
  int64_t upper = std::min<int64_t>(value, static_cast<int64_t>(counts_.size()) - 1);
  for (int64_t v = 0; v <= upper; ++v) acc += counts_[static_cast<size_t>(v)];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::MeanValue() const {
  if (total_ == 0) return 0.0;
  return sum_ / static_cast<double>(total_);
}

std::vector<double> Histogram::DensePmf() const {
  int64_t mv = max_value();
  std::vector<double> pmf;
  if (mv < 0) return pmf;
  pmf.reserve(static_cast<size_t>(mv) + 1);
  for (int64_t v = 0; v <= mv; ++v) pmf.push_back(Pmf(v));
  return pmf;
}

double KolmogorovSmirnovStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0, ib = 0;
  double d = 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

}  // namespace culinary
