#ifndef CULINARYLAB_COMMON_THREAD_POOL_H_
#define CULINARYLAB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace culinary {

/// Cooperative stop predicate for `ThreadPool::ParallelFor`: called between
/// iterations, it returns OK to continue or an error status (typically
/// `kCancelled` / `kDeadlineExceeded`, see common/cancellation.h) to stop
/// scheduling further iterations. Must be thread-safe and cheap — it runs
/// once per iteration on every worker.
using StopCheck = std::function<Status()>;

/// A fixed-size worker pool for embarrassingly parallel analysis sweeps
/// (per-region null models, per-ingredient contributions).
///
/// Tasks are plain `std::function<void()>`; `Submit` returns a future for
/// the wrapped callable's result. The pool joins its workers on
/// destruction after draining the queue. All methods are thread-safe.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Signals shutdown, drains remaining tasks and joins the workers.
  ~ThreadPool();

  /// Explicitly signals shutdown, drains the queue and joins the workers.
  /// Idempotent; the destructor calls it. After `Shutdown` returns, `Submit`
  /// runs tasks inline in the calling thread (see below), so late
  /// submissions still complete and their futures never hang.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Tasks submitted
  /// after destruction has begun are executed inline by the caller.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        lock.unlock();
        (*task)();  // inline fallback
        return future;
      }
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs `body(i)` for every i in [0, count) across the pool and blocks
  /// until all iterations finish.
  ///
  /// Iterations are grouped into at most `ParallelForChunks(count,
  /// num_threads())` contiguous chunks — about 4 per worker — so the queue
  /// holds a bounded number of tasks regardless of `count` while load still
  /// balances when chunks run at different speeds. If any iteration throws,
  /// the remaining iterations of that chunk are skipped, every other chunk
  /// still runs to completion, and the first exception (in chunk submission
  /// order) is rethrown to the caller.
  ///
  /// Re-entrant calls are safe: when invoked from one of this pool's own
  /// workers (an instrumented sweep that itself parallelizes), the
  /// iterations run inline on the calling worker instead of being enqueued
  /// — queueing them behind the caller's own task and then blocking on
  /// their futures would deadlock once every worker waits this way.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Cooperative-stop variant: `stop_check` (when non-null) runs before
  /// every iteration; the first non-OK status it returns stops every chunk
  /// from starting further iterations, and that status is returned once all
  /// in-flight iterations finish. Iterations therefore either run to
  /// completion or never start — a stop never tears one — so stop latency
  /// is bounded by the longest single iteration. Returns OK when all
  /// `count` iterations ran.
  Status ParallelFor(size_t count, const std::function<void(size_t)>& body,
                     const StopCheck& stop_check);

  /// True when the calling thread is one of this pool's workers. Exposed so
  /// higher layers can make the same inline-fallback decision.
  bool InWorkerThread() const;

  /// Number of chunks `ParallelFor(count, ...)` submits on a pool of
  /// `num_threads` workers: min(count, 4 * num_threads). Exposed for tests.
  static size_t ParallelForChunks(size_t count, size_t num_threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_THREAD_POOL_H_
