#include "common/status.h"

#include <cstdio>
#include <cstdlib>

#include "common/result.h"

namespace culinary {

namespace internal {

void ResultValueAbort(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() called on error result: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status Status::WithContext(std::string_view prefix) const {
  if (ok() || prefix.empty()) return *this;
  std::string annotated(prefix);
  if (!message_.empty()) {
    annotated += ": ";
    annotated += message_;
  }
  return Status(code_, std::move(annotated));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace culinary
