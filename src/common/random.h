#ifndef CULINARYLAB_COMMON_RANDOM_H_
#define CULINARYLAB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace culinary {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** (Blackman & Vigna) with SplitMix64 state
/// expansion. Every stochastic component in CulinaryLab takes an explicit
/// seed so that datasets, null models and benchmarks are reproducible
/// run-to-run and platform-to-platform. The generator is cheap to copy;
/// copies evolve independently.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in `[0, bound)`. `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the closed range `[lo, hi]` (requires `lo <= hi`).
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double NextDouble();

  /// Uniform double in `[lo, hi)`.
  double NextDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal deviate (Box–Muller, one value per call).
  double NextGaussian();

  /// Lognormal deviate with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Poisson deviate with mean `lambda` (Knuth's method for small lambda,
  /// PTRS-lite normal approximation with rounding above 30).
  int64_t NextPoisson(double lambda);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from `[0, n)` (k <= n) using
  /// Floyd's algorithm; order of the returned indices is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks a new independent generator from this one's stream. Useful for
  /// giving each region / model its own stream that does not depend on how
  /// many variates earlier consumers drew.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second Box–Muller deviate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// O(1) sampling from an arbitrary discrete distribution (Walker / Vose
/// alias method). Construction is O(n).
///
/// Weights need not be normalized; they must be non-negative with a positive
/// sum. Sampling uses one uniform variate and one table lookup, which is what
/// makes generating 100,000-recipe null models cheap.
class AliasSampler {
 public:
  /// Builds the alias table from `weights`. Invalid input (empty, negative
  /// weight, zero sum, non-finite) leaves the sampler in a state where
  /// `valid()` is false and `Sample` always returns 0.
  explicit AliasSampler(const std::vector<double>& weights);

  /// True iff construction succeeded.
  bool valid() const { return valid_; }

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Draws one index in `[0, size())` distributed per the weights.
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  bool valid_ = false;
};

/// Samples ranks from a Zipf–Mandelbrot distribution:
///   P(rank = r) ∝ 1 / (r + q)^s   for r in [1, n].
///
/// This is the empirical shape of ingredient popularity across cuisines
/// (paper Fig. 3b). Implemented on top of AliasSampler since n is modest.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (> 0), Mandelbrot shift `q` (>= 0).
  ZipfSampler(size_t n, double s, double q, uint64_t unused_seed = 0);

  /// True iff construction succeeded.
  bool valid() const { return alias_.valid(); }

  /// Draws a rank in `[1, n]`.
  size_t Sample(Rng& rng) const { return alias_.Sample(rng) + 1; }

  /// The probability assigned to `rank` (1-based).
  double Probability(size_t rank) const;

 private:
  static std::vector<double> BuildProbs(size_t n, double s, double q);

  std::vector<double> probs_;
  AliasSampler alias_;
};

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_RANDOM_H_
