#ifndef CULINARYLAB_COMMON_RANDOM_H_
#define CULINARYLAB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace culinary {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** (Blackman & Vigna) with SplitMix64 state
/// expansion. Every stochastic component in CulinaryLab takes an explicit
/// seed so that datasets, null models and benchmarks are reproducible
/// run-to-run and platform-to-platform. The generator is cheap to copy;
/// copies evolve independently.
/// Derives the seed of an independent PRNG stream from a base seed and a
/// stream index (two SplitMix64 finalization rounds over their golden-ratio
/// combination). Parallel sweeps give task `i` the generator
/// `Rng(DeriveStreamSeed(seed, i))`: the streams are decorrelated, and the
/// mapping depends only on (seed, i) — never on thread count or execution
/// order — which is what makes seeded parallel results bit-identical across
/// `num_threads` settings.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

/// Rotate-left, the xoshiro mixing primitive.
inline uint64_t Rotl64(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits. Inline: the null-model ensembles draw
  /// hundreds of millions of variates, and an out-of-line call costs more
  /// than the xoshiro step itself.
  uint64_t NextUint64() {
    const uint64_t result = Rotl64(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl64(s_[3], 45);
    return result;
  }

  /// Uniform integer in `[0, bound)`. `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range `[lo, hi]` (requires `lo <= hi`).
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in `[lo, hi)`.
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal deviate (Box–Muller, one value per call).
  double NextGaussian();

  /// Lognormal deviate with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Poisson deviate with mean `lambda` (Knuth's method for small lambda,
  /// PTRS-lite normal approximation with rounding above 30).
  int64_t NextPoisson(double lambda);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from `[0, n)` (k <= n) using
  /// Floyd's algorithm; order of the returned indices is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Allocation-free variant: appends the sample to `out` (which is cleared
  /// first but keeps its capacity). Identical draw sequence to the
  /// returning overload. Hot loops (the 100k-recipe null models) reuse one
  /// buffer across calls.
  void SampleWithoutReplacement(size_t n, size_t k, std::vector<size_t>& out);

  /// Forks a new independent generator from this one's stream. Useful for
  /// giving each region / model its own stream that does not depend on how
  /// many variates earlier consumers drew.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second Box–Muller deviate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// O(1) sampling from an arbitrary discrete distribution (Walker / Vose
/// alias method). Construction is O(n).
///
/// Weights need not be normalized; they must be non-negative with a positive
/// sum. Sampling uses one uniform variate and one table lookup, which is what
/// makes generating 100,000-recipe null models cheap.
class AliasSampler {
 public:
  /// Builds the alias table from `weights`. Invalid input (empty, negative
  /// weight, zero sum, non-finite) leaves the sampler in a state where
  /// `valid()` is false and `Sample` always returns 0.
  explicit AliasSampler(const std::vector<double>& weights);

  /// True iff construction succeeded.
  bool valid() const { return valid_; }

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Draws one index in `[0, size())` distributed per the weights.
  /// Inline for the same reason as the Rng core: null-model sampling makes
  /// ~10 alias draws per synthetic recipe.
  size_t Sample(Rng& rng) const {
    if (!valid_) return 0;
    size_t i = static_cast<size_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  bool valid_ = false;
};

/// Samples ranks from a Zipf–Mandelbrot distribution:
///   P(rank = r) ∝ 1 / (r + q)^s   for r in [1, n].
///
/// This is the empirical shape of ingredient popularity across cuisines
/// (paper Fig. 3b). Implemented on top of AliasSampler since n is modest.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (> 0), Mandelbrot shift `q` (>= 0).
  ZipfSampler(size_t n, double s, double q, uint64_t unused_seed = 0);

  /// True iff construction succeeded.
  bool valid() const { return alias_.valid(); }

  /// Draws a rank in `[1, n]`.
  size_t Sample(Rng& rng) const { return alias_.Sample(rng) + 1; }

  /// The probability assigned to `rank` (1-based).
  double Probability(size_t rank) const;

 private:
  static std::vector<double> BuildProbs(size_t n, double s, double q);

  std::vector<double> probs_;
  AliasSampler alias_;
};

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_RANDOM_H_
