#ifndef CULINARYLAB_COMMON_ATOMIC_FILE_H_
#define CULINARYLAB_COMMON_ATOMIC_FILE_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace culinary {

/// Step names passed to `AtomicWriteOptions::fault_hook`, in the order they
/// are reached. Callers that want fault injection bind their own FaultInjector
/// sites to these steps; `common` itself stays free of a dependency on the
/// robustness layer.
inline constexpr std::string_view kAtomicStepOpen = "open";
inline constexpr std::string_view kAtomicStepWrite = "write";
inline constexpr std::string_view kAtomicStepRename = "rename";

struct AtomicWriteOptions {
  /// fsync the temp file before rename and the parent directory entry after.
  /// Disable only in tests that measure the non-durable fast path.
  bool sync = true;
  /// Invoked at each step boundary; a non-OK return aborts the write at that
  /// step (the temp file is removed) and is returned to the caller verbatim.
  std::function<Status(std::string_view step)> fault_hook;
};

/// Durably replaces `path` with `contents`.
///
/// The write is crash-safe by construction: contents go to `path + ".tmp"`,
/// the temp file is fsync'd, atomically renamed over `path`, and finally the
/// parent directory entry is fsync'd so the rename itself survives a power
/// cut. After a crash at any point, `path` holds either the old bytes or the
/// new bytes in full — never a torn mix. On failure the temp file is removed
/// and `path` is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options = {});

/// fsyncs the directory containing `path` so a previously renamed-in entry is
/// durable. Exposed for callers that manage their own rename.
Status SyncDirectoryOf(const std::string& path);

/// Reads the whole file at `path` into a string. Returns kNotFound when the
/// file does not exist and kIOError for other failures.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_ATOMIC_FILE_H_
