#ifndef CULINARYLAB_COMMON_RESULT_H_
#define CULINARYLAB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace culinary {

namespace internal {
/// Prints the status to stderr and aborts. Out-of-line so the cold path
/// costs one call in `Result::value()`.
[[noreturn]] void ResultValueAbort(const Status& status);
}  // namespace internal

/// The union of a `Status` and a value of type `T` (a `StatusOr`).
///
/// A `Result<T>` either holds a value (in which case `ok()` is true and
/// `status()` is OK) or an error status. Accessing the value of an error
/// result is a programming error and aborts — in every build mode — with
/// the error status on stderr (an `assert` would compile out of release
/// builds and leave the access as undefined behaviour).
///
/// ```cpp
/// Result<Table> r = CsvReader::ReadFile(path);
/// if (!r.ok()) return r.status();
/// Table t = std::move(r).value();
/// ```
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      internal::ResultValueAbort(
          Status::Internal("Result constructed from OK status without value"));
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Value accessors. Calling on an error result aborts with the status
  /// message (all build modes).
  const T& value() const& {
    if (!ok()) internal::ResultValueAbort(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal::ResultValueAbort(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal::ResultValueAbort(status_);
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

/// Propagates an error out of the enclosing function or binds the value.
///
/// ```cpp
/// CULINARY_ASSIGN_OR_RETURN(Table t, CsvReader::ReadFile(path));
/// ```
#define CULINARY_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  decl = std::move(tmp).value()

#define CULINARY_ASSIGN_OR_RETURN_CAT_(a, b) a##b
#define CULINARY_ASSIGN_OR_RETURN_CAT(a, b) CULINARY_ASSIGN_OR_RETURN_CAT_(a, b)

#define CULINARY_ASSIGN_OR_RETURN(decl, expr) \
  CULINARY_ASSIGN_OR_RETURN_IMPL(             \
      CULINARY_ASSIGN_OR_RETURN_CAT(_result_tmp_, __LINE__), decl, expr)

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_RESULT_H_
