#ifndef CULINARYLAB_COMMON_STATISTICS_H_
#define CULINARYLAB_COMMON_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace culinary {

/// Streaming accumulator for count / mean / variance (Welford's algorithm).
///
/// Numerically stable for the very long streams produced by the 100,000
/// recipe null models; supports merging partial accumulators.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (Chan's parallel update).
  void Merge(const RunningStats& other);

  /// Reconstructs an accumulator from its raw moments, the exact inverse of
  /// (`count()`, `mean()`, `m2()`, `min()`, `max()`). Checkpoint/resume
  /// round-trips partial accumulators through this: restoring the very bits
  /// that were saved makes a resumed merge bit-identical to an
  /// uninterrupted one. A non-positive `count` yields an empty accumulator.
  static RunningStats FromMoments(int64_t count, double mean, double m2,
                                  double min, double max);

  /// Sum of squared deviations from the mean (Welford's M2 term), the raw
  /// state behind `variance()`. Exposed for exact serialization.
  double m2() const { return count_ > 0 ? m2_ : 0.0; }

  /// Number of observations added.
  int64_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;

  /// Square root of `variance()`.
  double stddev() const;

  /// Standard error of the mean: stddev / sqrt(count).
  double stderr_mean() const;

  /// Smallest / largest observation (undefined when empty; 0 returned).
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Unbiased sample variance / standard deviation (0 for n < 2).
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// Median (copies and partially sorts; 0 for empty input). For even n the
/// mean of the two central order statistics is returned.
double Median(std::vector<double> values);

/// `q`-quantile in [0, 1] with linear interpolation (type-7, as NumPy).
double Quantile(std::vector<double> values, double q);

/// Pearson product-moment correlation of two equal-length vectors.
/// Returns 0 for degenerate inputs (n < 2 or zero variance).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson of mid-ranks; ties share ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Z-score of an observed mean against a null distribution described by its
/// mean, standard deviation and sample count:
///   z = (observed − null_mean) / (null_stddev / sqrt(n)).
/// Returns 0 when the denominator is degenerate.
double ZScore(double observed_mean, double null_mean, double null_stddev,
              int64_t null_count);

/// An integer-valued empirical distribution (e.g. recipe sizes).
///
/// Tracks counts per value over [0, max_value] plus summary statistics, and
/// can render the probability mass function and CDF as plain series.
class Histogram {
 public:
  Histogram() = default;

  /// Adds one observation (negative values are clamped to 0).
  void Add(int64_t value);

  /// Total observations.
  int64_t total() const { return total_; }

  /// Count of observations equal to `value` (0 outside the observed range).
  int64_t CountAt(int64_t value) const;

  /// Largest value observed (-1 when empty).
  int64_t max_value() const;

  /// Empirical probability of `value`.
  double Pmf(int64_t value) const;

  /// Empirical P(X <= value).
  double Cdf(int64_t value) const;

  /// Mean of the observations.
  double MeanValue() const;

  /// PMF over [0, max_value()] as a dense vector.
  std::vector<double> DensePmf() const;

 private:
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double sum_ = 0.0;
};

/// Two-sample Kolmogorov–Smirnov statistic between empirical distributions
/// given as raw samples. Used by the robustness ablation to quantify how
/// much the recipe-size distribution moves under perturbation.
double KolmogorovSmirnovStatistic(std::vector<double> a, std::vector<double> b);

/// Mid-ranks of `values` (1-based; ties receive the average of their ranks).
std::vector<double> MidRanks(const std::vector<double>& values);

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_STATISTICS_H_
