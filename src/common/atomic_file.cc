#include "common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace culinary {
namespace {

Status RunHook(const AtomicWriteOptions& options, std::string_view step) {
  if (!options.fault_hook) return Status::OK();
  return options.fault_hook(step);
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status SyncDirectoryOf(const std::string& path) {
  const std::string dir = ParentDirectory(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open directory", dir));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::IOError(ErrnoMessage("cannot fsync directory", dir));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options) {
  const std::string tmp_path = path + ".tmp";

  Status step = RunHook(options, kAtomicStepOpen);
  if (!step.ok()) return step;

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open", tmp_path));
  }
  // Any failure from here on removes the temp file and leaves `path` alone.
  const auto fail = [&](Status why) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp_path.c_str());
    return why;
  };

  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IOError(ErrnoMessage("cannot write", tmp_path)));
    }
    written += static_cast<size_t>(n);
  }
  step = RunHook(options, kAtomicStepWrite);
  if (!step.ok()) return fail(step);

  if (options.sync && ::fsync(fd) != 0) {
    return fail(Status::IOError(ErrnoMessage("cannot fsync", tmp_path)));
  }
  if (::close(fd) != 0) {
    fd = -1;
    return fail(Status::IOError(ErrnoMessage("cannot close", tmp_path)));
  }
  fd = -1;

  step = RunHook(options, kAtomicStepRename);
  if (!step.ok()) return fail(step);

  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(Status::IOError(ErrnoMessage("cannot rename to", path)));
  }
  if (options.sync) {
    // Without this, a crash after rename can roll the directory entry back to
    // the old file even though the data blocks were fsync'd.
    Status dir = SyncDirectoryOf(path);
    if (!dir.ok()) return dir;
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IOError("cannot read " + path);
  }
  return out;
}

}  // namespace culinary
