#ifndef CULINARYLAB_COMMON_STRING_UTIL_H_
#define CULINARYLAB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace culinary {

/// Splits `input` on the single character `sep`. Empty fields are kept:
/// `Split("a,,b", ',') == {"a", "", "b"}`. An empty input yields one empty
/// field, matching the behaviour of Python's `str.split(sep)`.
std::vector<std::string> Split(std::string_view input, char sep);

/// Splits `input` on any run of ASCII whitespace; empty fields are dropped,
/// matching Python's `str.split()` with no arguments.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lowercases / uppercases a copy of `input`.
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

/// Prefix / suffix / substring predicates.
bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);
bool Contains(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to);

/// True iff every character is an ASCII digit (and input is non-empty).
bool IsDigits(std::string_view input);

/// Formats `value` with exactly `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Pads `input` with spaces on the right (`PadRight`) or left (`PadLeft`) to
/// at least `width` characters.
std::string PadRight(std::string_view input, size_t width);
std::string PadLeft(std::string_view input, size_t width);

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_STRING_UTIL_H_
