#include "common/cancellation.h"

#include <limits>

namespace culinary {

Deadline Deadline::After(double ms) {
  Deadline d;
  d.has_deadline_ = true;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(ms < 0.0 ? 0.0 : ms));
  return d;
}

bool Deadline::expired() const {
  return has_deadline_ && std::chrono::steady_clock::now() >= at_;
}

double Deadline::remaining_ms() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(
             at_ - std::chrono::steady_clock::now())
      .count();
}

CancellationSource::CancellationSource()
    : flag_(std::make_shared<std::atomic<bool>>(false)) {}

Status CheckStop(const CancellationToken& cancel, const Deadline& deadline) {
  if (cancel.cancelled()) return Status::Cancelled("operation cancelled");
  if (deadline.expired()) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

}  // namespace culinary
