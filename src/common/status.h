#ifndef CULINARYLAB_COMMON_STATUS_H_
#define CULINARYLAB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace culinary {

/// Canonical error codes used across CulinaryLab.
///
/// The library does not throw exceptions; every fallible operation returns a
/// `Status` (or a `Result<T>`, see result.h) in the style of RocksDB /
/// Abseil. `StatusCode::kOk` means success, everything else is an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kParseError = 6,
  kIOError = 7,
  kInternal = 8,
  kUnimplemented = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
  /// The service is temporarily unable to take the work (admission queue
  /// full, engine draining). Retryable by design, unlike kFailedPrecondition.
  kUnavailable = 12,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// `Status` is copyable and movable. The success path stores no message and
/// allocates nothing. Typical use:
///
/// ```cpp
/// Status s = table.AppendRow(values);
/// if (!s.ok()) return s;
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// True iff the status carries the given error code.
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True for error classes that describe a *moment*, not the request: the
  /// same call may well succeed if repeated (IO flake, shed admission).
  /// This is the contract the retry layer keys off — parse errors and
  /// argument errors are deterministic and must never be retried, while
  /// transient errors are fair game for backoff-and-retry loops and for
  /// client-side resubmission against a degraded service.
  bool IsTransient() const {
    return code_ == StatusCode::kIOError || code_ == StatusCode::kUnavailable;
  }

  /// Returns a copy whose message is prefixed with `prefix` (": "-joined),
  /// preserving the code. OK statuses pass through untouched. Ingestion
  /// call sites use this so a deep CSV error still names the file/stage:
  ///
  /// ```cpp
  /// return s.WithContext("loading registry from " + path);
  /// ```
  Status WithContext(std::string_view prefix) const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error status out of the enclosing function.
///
/// ```cpp
/// CULINARY_RETURN_IF_ERROR(DoThing());
/// ```
#define CULINARY_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::culinary::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace culinary

#endif  // CULINARYLAB_COMMON_STATUS_H_
