#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace culinary {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && IsAsciiSpace(input[i])) ++i;
    size_t start = i;
    while (i < n && !IsAsciiSpace(input[i])) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && IsAsciiSpace(input[begin])) ++begin;
  while (end > begin && IsAsciiSpace(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(input);
  std::string out;
  out.reserve(input.size());
  size_t start = 0;
  while (true) {
    size_t pos = input.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(input.substr(start));
      break;
    }
    out.append(input.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool IsDigits(std::string_view input) {
  if (input.empty()) return false;
  for (char c : input) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string PadRight(std::string_view input, size_t width) {
  std::string out(input);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string PadLeft(std::string_view input, size_t width) {
  std::string out;
  if (input.size() < width) out.append(width - input.size(), ' ');
  out.append(input);
  return out;
}

}  // namespace culinary
