#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace culinary {

namespace {

/// The pool whose WorkerLoop the calling thread is inside, if any. Lets
/// ParallelFor detect re-entrant use and degrade to inline execution
/// instead of deadlocking.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::InWorkerThread() const { return tls_current_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

size_t ThreadPool::ParallelForChunks(size_t count, size_t num_threads) {
  if (count == 0) return 0;
  return std::min(count, 4 * std::max<size_t>(num_threads, 1));
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (InWorkerThread()) {
    // Nested use from our own worker: enqueueing would park this worker on
    // futures that can only run behind it in the queue — with every worker
    // doing so, nobody drains the queue. Run inline instead; exceptions
    // propagate directly.
    CULINARY_OBS_COUNT("threadpool.nested_parallel_for_inline", 1);
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const size_t num_chunks = ParallelForChunks(count, num_threads());
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  const auto enqueue_time = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(count, begin + chunk);
    futures.push_back(Submit([&body, begin, end, enqueue_time]() {
      // Queue wait: how long the chunk sat behind other work before a
      // worker picked it up — the sweep-level contention signal.
      CULINARY_OBS_OBSERVE(
          "threadpool.queue_wait_us",
          (std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - enqueue_time)
               .count()));
      for (size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Drain every chunk before rethrowing so no task still references `body`.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace culinary
