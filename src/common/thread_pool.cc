#include "common/thread_pool.h"

#include <algorithm>

namespace culinary {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&body, i]() { body(i); }));
  }
  for (auto& f : futures) f.wait();
}

}  // namespace culinary
