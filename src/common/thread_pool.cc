#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace culinary {

namespace {

/// The pool whose WorkerLoop the calling thread is inside, if any. Lets
/// ParallelFor detect re-entrant use and degrade to inline execution
/// instead of deadlocking.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::InWorkerThread() const { return tls_current_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

size_t ThreadPool::ParallelForChunks(size_t count, size_t num_threads) {
  if (count == 0) return 0;
  return std::min(count, 4 * std::max<size_t>(num_threads, 1));
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  ParallelFor(count, body, nullptr);
}

Status ThreadPool::ParallelFor(size_t count,
                               const std::function<void(size_t)>& body,
                               const StopCheck& stop_check) {
  if (count == 0) return Status::OK();
  // Shared stop state: the first non-OK stop status wins; `stopped` lets
  // every other chunk bail with one relaxed load instead of re-running the
  // (potentially clock-reading) check after the verdict is in.
  std::atomic<bool> stopped{false};
  std::mutex stop_mutex;
  Status stop_status;
  auto should_stop = [&]() -> bool {
    if (!stop_check) return false;
    if (stopped.load(std::memory_order_relaxed)) return true;
    Status s = stop_check();
    if (s.ok()) return false;
    {
      std::lock_guard<std::mutex> lock(stop_mutex);
      if (stop_status.ok()) stop_status = std::move(s);
    }
    stopped.store(true, std::memory_order_relaxed);
    return true;
  };
  if (InWorkerThread()) {
    // Nested use from our own worker: enqueueing would park this worker on
    // futures that can only run behind it in the queue — with every worker
    // doing so, nobody drains the queue. Run inline instead; exceptions
    // propagate directly.
    CULINARY_OBS_COUNT("threadpool.nested_parallel_for_inline", 1);
    for (size_t i = 0; i < count; ++i) {
      if (should_stop()) break;
      body(i);
    }
    return stop_status;
  }
  const size_t num_chunks = ParallelForChunks(count, num_threads());
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  const auto enqueue_time = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(count, begin + chunk);
    futures.push_back(Submit([&body, &should_stop, begin, end,
                              enqueue_time]() {
      // Queue wait: how long the chunk sat behind other work before a
      // worker picked it up — the sweep-level contention signal.
      CULINARY_OBS_OBSERVE(
          "threadpool.queue_wait_us",
          (std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - enqueue_time)
               .count()));
      for (size_t i = begin; i < end; ++i) {
        if (should_stop()) return;
        body(i);
      }
    }));
  }
  // Drain every chunk before rethrowing so no task still references `body`.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return stop_status;
}

}  // namespace culinary
