#ifndef CULINARYLAB_SNAPSHOT_FORMAT_H_
#define CULINARYLAB_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <string_view>

namespace culinary::snapshot {

/// On-disk layout of a world snapshot (all integers native-endian; the
/// snapshot is a machine-local cache artifact, not an interchange format,
/// and the endian tag turns a foreign-endian file into a typed error
/// instead of garbage):
///
///   offset  0  char[8]  magic            "CULSNAP\n"
///   offset  8  u32      endian_tag       0x01020304 as written
///   offset 12  u32      version          kFormatVersion
///   offset 16  u32      section_count
///   offset 20  u32      reserved         0
///   offset 24  u64      world_digest     digest of the inputs the world
///                                        was built from (see snapshot.h)
///   offset 32  u64      header_checksum  FNV-1a over bytes [0, 32) ++ the
///                                        whole section table
///   offset 40  section table: section_count entries of kSectionEntryBytes
///              { u32 id; u32 reserved; u64 offset; u64 size; u64 checksum }
///   then payloads, each starting at an 8-byte-aligned offset (zero padding
///   between them; padding is covered by no checksum and carries no data).
///
/// Versioning rules: `version` bumps on any layout change — readers accept
/// exactly their own version (kFailedPrecondition otherwise) and never
/// attempt cross-version repair; adding a new section id is also a version
/// bump, since readers treat unknown ids in the table as corruption.
///
/// Corruption → Status mapping (every class is typed, never a crash):
///   bad magic / unparseable header . kParseError
///   endian tag or version skew ..... kFailedPrecondition
///   truncation (header, table, or
///     section bounds past EOF) ..... kOutOfRange
///   header/section checksum ........ kParseError
///   world digest mismatch .......... kFailedPrecondition
inline constexpr std::string_view kSnapshotMagic = "CULSNAP\n";
inline constexpr uint32_t kEndianTag = 0x01020304u;
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 40;
inline constexpr size_t kHeaderChecksumOffset = 32;
inline constexpr size_t kSectionTableOffset = kHeaderBytes;
inline constexpr size_t kSectionEntryBytes = 32;
inline constexpr size_t kSectionAlignment = 8;

/// Section identifiers. Values are stable on disk; additions bump
/// `kFormatVersion`.
enum class SectionId : uint32_t {
  /// FlavorRegistry: molecules (names + descriptors) and every ingredient
  /// slot in id order (tombstones included) with category, kind, synonyms,
  /// profile and constituents.
  kRegistry = 1,
  /// RecipeDatabase: every recipe's name, region and ingredient id list.
  kRecipes = 2,
  /// The world PairingCache: dense ingredient ids plus the uint16 strict
  /// upper triangle, stored 8-byte aligned for zero-copy reads. Optional —
  /// a snapshot written without a cache simply omits it.
  kPairing = 3,
};

/// Human-readable section name for diagnostics.
constexpr std::string_view SectionName(SectionId id) {
  switch (id) {
    case SectionId::kRegistry:
      return "registry";
    case SectionId::kRecipes:
      return "recipes";
    case SectionId::kPairing:
      return "pairing";
  }
  return "unknown";
}

/// FNV-1a 64-bit, the same checksum idiom the checkpoint records use.
/// `Fnv64Continue` lets the header checksum chain over discontiguous spans.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv64Continue(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

inline uint64_t Fnv64(const void* data, size_t size) {
  return Fnv64Continue(kFnvOffsetBasis, data, size);
}

}  // namespace culinary::snapshot

#endif  // CULINARYLAB_SNAPSHOT_FORMAT_H_
