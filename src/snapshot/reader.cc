#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "robustness/fault_injector.h"
#include "snapshot/byte_io.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace culinary::snapshot {

namespace {

using internal::ByteReader;

culinary::Status Truncated(const std::string& path, const std::string& what) {
  return culinary::Status::OutOfRange("snapshot " + path + " is truncated: " +
                                      what);
}

culinary::Status DecodeFailure(ByteReader& reader, const char* section) {
  if (!reader.ok()) {
    return culinary::Status::OutOfRange(std::string("snapshot ") + section +
                                        " section is truncated");
  }
  return culinary::Status::ParseError(std::string("snapshot ") + section +
                                      " section is internally inconsistent");
}

culinary::Result<std::unique_ptr<flavor::FlavorRegistry>> DecodeRegistry(
    std::string_view payload) {
  ByteReader r(payload);
  auto registry = std::make_unique<flavor::FlavorRegistry>();
  const uint64_t num_molecules = r.U64();
  if (!r.FitsArray(num_molecules, 8)) {
    return DecodeFailure(r, "registry");
  }
  for (uint64_t m = 0; m < num_molecules; ++m) {
    std::string name(r.Str());
    const uint32_t num_descriptors = r.U32();
    if (!r.FitsArray(num_descriptors, 4)) return DecodeFailure(r, "registry");
    std::vector<std::string> descriptors;
    descriptors.reserve(num_descriptors);
    for (uint32_t d = 0; d < num_descriptors; ++d) {
      descriptors.emplace_back(r.Str());
    }
    if (!r.ok()) return DecodeFailure(r, "registry");
    culinary::Result<flavor::MoleculeId> added =
        registry->AddMolecule(std::move(name), std::move(descriptors));
    if (!added.ok() ||
        added.value() != static_cast<flavor::MoleculeId>(m)) {
      return culinary::Status::ParseError(
          "snapshot registry section is internally inconsistent: molecule " +
          std::to_string(m));
    }
  }
  const uint64_t num_slots = r.U64();
  if (!r.FitsArray(num_slots, 16)) return DecodeFailure(r, "registry");
  for (uint64_t i = 0; i < num_slots; ++i) {
    flavor::Ingredient ing;
    ing.id = static_cast<flavor::IngredientId>(i);
    ing.name = std::string(r.Str());
    const uint8_t category = r.U8();
    const uint8_t kind = r.U8();
    const uint8_t removed = r.U8();
    r.U8();  // pad
    if (category >= flavor::kNumCategories || kind > 2 || removed > 1) {
      return DecodeFailure(r, "registry");
    }
    ing.category = static_cast<flavor::Category>(category);
    ing.kind = static_cast<flavor::IngredientKind>(kind);
    ing.removed = removed != 0;
    const uint32_t num_synonyms = r.U32();
    if (!r.FitsArray(num_synonyms, 4)) return DecodeFailure(r, "registry");
    ing.synonyms.reserve(num_synonyms);
    for (uint32_t s = 0; s < num_synonyms; ++s) {
      ing.synonyms.emplace_back(r.Str());
    }
    const uint32_t num_profile = r.U32();
    if (!r.FitsArray(num_profile, 4)) return DecodeFailure(r, "registry");
    std::vector<flavor::MoleculeId> profile_ids;
    profile_ids.reserve(num_profile);
    for (uint32_t p = 0; p < num_profile; ++p) profile_ids.push_back(r.I32());
    ing.profile = flavor::FlavorProfile(std::move(profile_ids));
    const uint32_t num_constituents = r.U32();
    if (!r.FitsArray(num_constituents, 4)) {
      return DecodeFailure(r, "registry");
    }
    ing.constituents.reserve(num_constituents);
    for (uint32_t c = 0; c < num_constituents; ++c) {
      ing.constituents.push_back(r.I32());
    }
    if (!r.ok()) return DecodeFailure(r, "registry");
    culinary::Status restored = registry->RestoreIngredient(ing);
    if (!restored.ok()) {
      return culinary::Status::ParseError(
          "snapshot registry section is internally inconsistent: slot " +
          std::to_string(i) + ": " + restored.message());
    }
  }
  if (!r.AtEnd()) return DecodeFailure(r, "registry");
  return registry;
}

culinary::Result<std::unique_ptr<recipe::RecipeDatabase>> DecodeRecipes(
    std::string_view payload, const flavor::FlavorRegistry* registry) {
  ByteReader r(payload);
  auto database = std::make_unique<recipe::RecipeDatabase>(registry);
  const uint64_t num_recipes = r.U64();
  if (!r.FitsArray(num_recipes, 9)) return DecodeFailure(r, "recipes");
  for (uint64_t i = 0; i < num_recipes; ++i) {
    std::string name(r.Str());
    const uint8_t region = r.U8();
    const uint32_t num_ids = r.U32();
    if (region >= recipe::kNumRegions || !r.FitsArray(num_ids, 4)) {
      return DecodeFailure(r, "recipes");
    }
    std::vector<flavor::IngredientId> ids;
    ids.reserve(num_ids);
    for (uint32_t k = 0; k < num_ids; ++k) ids.push_back(r.I32());
    if (!r.ok()) return DecodeFailure(r, "recipes");
    culinary::Result<recipe::RecipeId> added = database->AddRecipe(
        std::move(name), static_cast<recipe::Region>(region), std::move(ids));
    if (!added.ok()) {
      return culinary::Status::ParseError(
          "snapshot recipes section is internally inconsistent: recipe " +
          std::to_string(i) + ": " + added.status().message());
    }
  }
  if (!r.AtEnd()) return DecodeFailure(r, "recipes");
  return database;
}

culinary::Result<analysis::PairingCache> DecodePairing(
    std::string_view payload, const flavor::FlavorRegistry& registry) {
  ByteReader r(payload);
  const uint64_t n = r.U64();
  if (!r.FitsArray(n, 4)) return DecodeFailure(r, "pairing");
  std::vector<flavor::IngredientId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) ids.push_back(r.I32());
  r.AlignTo8();
  const uint64_t tri_len = r.U64();
  if (!r.FitsArray(tri_len, sizeof(uint16_t))) {
    return DecodeFailure(r, "pairing");
  }
  std::string_view tri_bytes = r.Bytes(tri_len * sizeof(uint16_t));
  if (!r.ok() || !r.AtEnd()) return DecodeFailure(r, "pairing");
  // The payload starts 8-byte aligned in the mapping and the id array is
  // padded, so this cast is aligned; the copy into the cache happens inside
  // FromPrecomputed via memcpy.
  return analysis::PairingCache::FromPrecomputed(
      registry, std::move(ids),
      reinterpret_cast<const uint16_t*>(tri_bytes.data()), tri_len);
}

}  // namespace

bool IsCorruptionStatus(const culinary::Status& status) {
  return status.IsParseError() || status.IsOutOfRange() ||
         status.IsFailedPrecondition();
}

// --- SnapshotView ----------------------------------------------------------

SnapshotView::SnapshotView(SnapshotView&& other) noexcept {
  *this = std::move(other);
}

SnapshotView& SnapshotView::operator=(SnapshotView&& other) noexcept {
  if (this != &other) {
    Release();
    path_ = std::move(other.path_);
    base_ = other.base_;
    size_ = other.size_;
    version_ = other.version_;
    world_digest_ = other.world_digest_;
    entries_ = std::move(other.entries_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

SnapshotView::~SnapshotView() { Release(); }

void SnapshotView::Release() {
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), size_);
    base_ = nullptr;
    size_ = 0;
  }
}

culinary::Result<SnapshotView> SnapshotView::Open(const std::string& path) {
  CULINARY_RETURN_IF_ERROR(
      robustness::FaultInjector::Global()
          .Check(robustness::kFaultSnapshotMmap)
          .WithContext("mapping snapshot " + path));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return culinary::Status::NotFound("no snapshot at " + path);
    }
    return culinary::Status::IOError("cannot open snapshot " + path + ": " +
                                     std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return culinary::Status::IOError("cannot stat snapshot " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Truncated(path, "file smaller than the header");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped == MAP_FAILED) {
    return culinary::Status::IOError("cannot mmap snapshot " + path + ": " +
                                     std::strerror(errno));
  }
  SnapshotView view;
  view.path_ = path;
  view.base_ = static_cast<const char*>(mapped);
  view.size_ = size;

  // Header: magic, endianness, version, then bounds + checksum over the
  // header and section table. Everything here is eager — a few dozen bytes.
  if (std::memcmp(view.base_, kSnapshotMagic.data(), kSnapshotMagic.size()) !=
      0) {
    return culinary::Status::ParseError("snapshot " + path +
                                        " has a bad magic header");
  }
  const auto read_u32 = [&view](size_t offset) {
    uint32_t v;
    std::memcpy(&v, view.base_ + offset, sizeof(v));
    return v;
  };
  const auto read_u64 = [&view](size_t offset) {
    uint64_t v;
    std::memcpy(&v, view.base_ + offset, sizeof(v));
    return v;
  };
  if (read_u32(8) != kEndianTag) {
    return culinary::Status::FailedPrecondition(
        "snapshot " + path + " was written with a different byte order");
  }
  view.version_ = read_u32(12);
  if (view.version_ != kFormatVersion) {
    return culinary::Status::FailedPrecondition(
        "snapshot " + path + " is format v" + std::to_string(view.version_) +
        " but this build reads v" + std::to_string(kFormatVersion));
  }
  const uint32_t section_count = read_u32(16);
  view.world_digest_ = read_u64(24);
  const uint64_t stored_checksum = read_u64(kHeaderChecksumOffset);
  const size_t table_bytes =
      static_cast<size_t>(section_count) * kSectionEntryBytes;
  if (section_count > 1024 ||
      table_bytes > size - kSectionTableOffset) {
    return Truncated(path, "section table extends past end of file");
  }
  uint64_t checksum = Fnv64(view.base_, kHeaderChecksumOffset);
  checksum = Fnv64Continue(checksum, view.base_ + kSectionTableOffset,
                           table_bytes);
  if (checksum != stored_checksum) {
    return culinary::Status::ParseError("snapshot " + path +
                                        " header checksum mismatch");
  }
  for (uint32_t s = 0; s < section_count; ++s) {
    const size_t entry = kSectionTableOffset + s * kSectionEntryBytes;
    Entry e;
    e.id = static_cast<SectionId>(read_u32(entry));
    e.offset = read_u64(entry + 8);
    e.size = read_u64(entry + 16);
    e.checksum = read_u64(entry + 24);
    if (e.offset > size || e.size > size - e.offset) {
      return Truncated(path, std::string(SectionName(e.id)) +
                                 " section extends past end of file");
    }
    if (e.offset % kSectionAlignment != 0) {
      return culinary::Status::ParseError(
          "snapshot " + path + " has a misaligned " +
          std::string(SectionName(e.id)) + " section");
    }
    view.entries_.push_back(e);
  }
  return view;
}

bool SnapshotView::HasSection(SectionId id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return true;
  }
  return false;
}

culinary::Result<std::string_view> SnapshotView::Section(SectionId id) {
  for (Entry& e : entries_) {
    if (e.id != id) continue;
    if (e.verdict == 0) {
      CULINARY_RETURN_IF_ERROR(
          robustness::FaultInjector::Global()
              .Check(robustness::kFaultSnapshotVerify)
              .WithContext("verifying snapshot section " +
                           std::string(SectionName(id))));
      CULINARY_OBS_SPAN(verify_span, "snapshot.verify", "snapshot");
      const uint64_t actual = Fnv64(base_ + e.offset, e.size);
      e.verdict = actual == e.checksum ? 1 : 2;
      if (e.verdict == 2) {
        CULINARY_OBS_COUNT("snapshot.corrupt_section", 1);
      }
    }
    if (e.verdict != 1) {
      return culinary::Status::ParseError(
          "snapshot " + path_ + " " + std::string(SectionName(id)) +
          " section checksum mismatch");
    }
    return std::string_view(base_ + e.offset, e.size);
  }
  return culinary::Status::NotFound("snapshot " + path_ + " has no " +
                                    std::string(SectionName(id)) +
                                    " section");
}

// --- Loader ----------------------------------------------------------------

culinary::Result<LoadedWorld> LoadWorldSnapshot(
    const std::string& path, const SnapshotLoadOptions& options) {
  CULINARY_OBS_SPAN(load_span, "snapshot.load", "snapshot");
  CULINARY_ASSIGN_OR_RETURN(SnapshotView view, SnapshotView::Open(path));
  if (options.expected_digest.has_value() &&
      view.world_digest() != *options.expected_digest) {
    return culinary::Status::FailedPrecondition(
        "snapshot " + path +
        " was built from different inputs (digest mismatch); it is stale");
  }
  LoadedWorld world;
  {
    CULINARY_ASSIGN_OR_RETURN(std::string_view payload,
                              view.Section(SectionId::kRegistry));
    CULINARY_ASSIGN_OR_RETURN(world.registry_ptr, DecodeRegistry(payload));
  }
  {
    CULINARY_ASSIGN_OR_RETURN(std::string_view payload,
                              view.Section(SectionId::kRecipes));
    CULINARY_ASSIGN_OR_RETURN(
        world.database, DecodeRecipes(payload, world.registry_ptr.get()));
  }
  if (options.load_pairing && view.HasSection(SectionId::kPairing)) {
    CULINARY_ASSIGN_OR_RETURN(std::string_view payload,
                              view.Section(SectionId::kPairing));
    CULINARY_ASSIGN_OR_RETURN(analysis::PairingCache cache,
                              DecodePairing(payload, *world.registry_ptr));
    world.world_cache.emplace(std::move(cache));
  }
  CULINARY_OBS_COUNT("snapshot.load_ok", 1);
  return world;
}

// --- Degradation -----------------------------------------------------------

culinary::Result<LoadedWorld> LoadWorldSnapshotOrRebuild(
    const std::string& path, uint64_t expected_digest,
    robustness::ErrorPolicy policy, const WorldRebuildFn& rebuild,
    bool rewrite_snapshot, SnapshotFallbackReport* report) {
  SnapshotFallbackReport local_report;
  SnapshotFallbackReport& out = report != nullptr ? *report : local_report;
  out = SnapshotFallbackReport{};

  SnapshotLoadOptions load_options;
  load_options.expected_digest = expected_digest;
  culinary::Result<LoadedWorld> loaded = LoadWorldSnapshot(path, load_options);
  if (loaded.ok()) {
    out.snapshot_used = true;
    return loaded;
  }
  const culinary::Status why = loaded.status();

  const auto rebuild_and_refresh =
      [&]() -> culinary::Result<LoadedWorld> {
    culinary::Result<LoadedWorld> world = rebuild();
    if (!world.ok()) {
      return world.status().WithContext("rebuilding world after snapshot "
                                        "miss");
    }
    if (rewrite_snapshot) {
      culinary::Status wrote =
          WriteSnapshotForWorld(world.value(), expected_digest, path);
      if (wrote.ok()) {
        out.rewrote = true;
      } else if (!out.note.empty()) {
        out.note += "; snapshot rewrite failed: " + wrote.message();
      } else {
        out.note = "snapshot rewrite failed: " + wrote.message();
      }
    }
    return world;
  };

  if (why.IsNotFound()) {
    // Cold start: no snapshot yet. Not a failure and not a fallback.
    out.snapshot_missing = true;
    out.note = why.message();
    return rebuild_and_refresh();
  }
  if (policy == robustness::ErrorPolicy::kStrict) {
    return why;
  }
  // Degraded: quarantine the corrupt/stale file so the evidence survives
  // (and so a retry loop cannot spin on the same bad bytes), then rebuild.
  CULINARY_OBS_COUNT("snapshot.fallback", 1);
  out.fell_back = true;
  out.note = why.message();
  if (IsCorruptionStatus(why)) {
    const std::string quarantine = path + ".quarantined";
    if (std::rename(path.c_str(), quarantine.c_str()) == 0) {
      out.quarantine_path = quarantine;
    }
  }
  return rebuild_and_refresh();
}

}  // namespace culinary::snapshot
