#include "snapshot/chaos.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/random.h"
#include "snapshot/format.h"

namespace culinary::snapshot {

namespace {

struct ParsedEntry {
  uint64_t offset = 0;
  uint64_t size = 0;
  size_t entry_offset = 0;  ///< byte offset of the table entry itself
};

uint32_t ReadU32(const std::string& bytes, size_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

uint64_t ReadU64(const std::string& bytes, size_t offset) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

void WriteU64(std::string& bytes, size_t offset, uint64_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

/// Re-derives the header checksum after a surgical edit, so modes that test
/// *section* verification don't trip the header check first.
void RecomputeHeaderChecksum(std::string& bytes, size_t table_bytes) {
  uint64_t checksum = Fnv64(bytes.data(), kHeaderChecksumOffset);
  checksum = Fnv64Continue(checksum, bytes.data() + kSectionTableOffset,
                           table_bytes);
  WriteU64(bytes, kHeaderChecksumOffset, checksum);
}

}  // namespace

culinary::Result<SnapshotCorruptionMode> ParseSnapshotCorruptionMode(
    const std::string& name) {
  if (name == "flip-magic") return SnapshotCorruptionMode::kFlipMagic;
  if (name == "zero-section-checksum") {
    return SnapshotCorruptionMode::kZeroSectionChecksum;
  }
  if (name == "truncate-mid-section") {
    return SnapshotCorruptionMode::kTruncateMidSection;
  }
  if (name == "bitflip-payload") {
    return SnapshotCorruptionMode::kBitFlipPayload;
  }
  if (name == "wrong-digest") return SnapshotCorruptionMode::kWrongDigest;
  return culinary::Status::InvalidArgument("unknown snapshot corruption mode: " +
                                           name);
}

culinary::Status CorruptSnapshotFile(const std::string& in_path,
                                     const std::string& out_path,
                                     SnapshotCorruptionMode mode,
                                     uint64_t seed) {
  CULINARY_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(in_path));
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kSnapshotMagic.data(),
                  kSnapshotMagic.size()) != 0) {
    return culinary::Status::ParseError(in_path +
                                        " is not a snapshot (bad magic)");
  }
  const uint32_t section_count = ReadU32(bytes, 16);
  const size_t table_bytes =
      static_cast<size_t>(section_count) * kSectionEntryBytes;
  if (section_count == 0 ||
      kSectionTableOffset + table_bytes > bytes.size()) {
    return culinary::Status::ParseError(in_path +
                                        " has no addressable sections");
  }
  std::vector<ParsedEntry> entries;
  for (uint32_t s = 0; s < section_count; ++s) {
    ParsedEntry e;
    e.entry_offset = kSectionTableOffset + s * kSectionEntryBytes;
    e.offset = ReadU64(bytes, e.entry_offset + 8);
    e.size = ReadU64(bytes, e.entry_offset + 16);
    if (e.offset > bytes.size() || e.size > bytes.size() - e.offset) {
      return culinary::Status::ParseError(in_path +
                                          " has out-of-bounds sections");
    }
    entries.push_back(e);
  }
  // Pick the seed-selected section among those with a non-empty payload.
  std::vector<size_t> non_empty;
  for (size_t s = 0; s < entries.size(); ++s) {
    if (entries[s].size > 0) non_empty.push_back(s);
  }
  if (non_empty.empty()) {
    return culinary::Status::ParseError(in_path +
                                        " has only empty sections");
  }
  const ParsedEntry& target =
      entries[non_empty[DeriveStreamSeed(seed, 0) % non_empty.size()]];

  switch (mode) {
    case SnapshotCorruptionMode::kFlipMagic:
      bytes[0] = static_cast<char>(bytes[0] ^ 0x5a);
      break;
    case SnapshotCorruptionMode::kZeroSectionChecksum:
      WriteU64(bytes, target.entry_offset + 24, 0);
      RecomputeHeaderChecksum(bytes, table_bytes);
      break;
    case SnapshotCorruptionMode::kTruncateMidSection:
      bytes.resize(target.offset + target.size / 2);
      break;
    case SnapshotCorruptionMode::kBitFlipPayload: {
      const uint64_t bit =
          DeriveStreamSeed(seed, 1) % (target.size * 8);
      bytes[target.offset + bit / 8] =
          static_cast<char>(bytes[target.offset + bit / 8] ^ (1u << (bit % 8)));
      break;
    }
    case SnapshotCorruptionMode::kWrongDigest:
      WriteU64(bytes, 24, ReadU64(bytes, 24) ^ 0xdecafbadDEADBEEFULL);
      RecomputeHeaderChecksum(bytes, table_bytes);
      break;
  }
  return WriteFileAtomic(out_path, bytes);
}

}  // namespace culinary::snapshot
