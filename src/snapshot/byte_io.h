#ifndef CULINARYLAB_SNAPSHOT_BYTE_IO_H_
#define CULINARYLAB_SNAPSHOT_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "snapshot/format.h"

namespace culinary::snapshot::internal {

/// Append-only native-endian serializer for section payloads. Fixed-width
/// scalars via memcpy; strings and arrays are length-prefixed.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }

  /// u32 length + bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// Zero-pads to the next multiple of `kSectionAlignment`.
  void AlignTo8() {
    while (buf_.size() % kSectionAlignment != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a section payload. Every getter fails softly:
/// once a read overruns, `ok()` turns false, subsequent reads return zeros,
/// and the decoder maps the condition to a typed truncation error. Callers
/// must still bound their loops via `FitsArray` before trusting a count
/// field — a corrupt count that passes the checksum is implausible, but a
/// fault-injected or hand-forged payload must not spin.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() { return TakeScalar<uint8_t>(); }
  uint16_t U16() { return TakeScalar<uint16_t>(); }
  uint32_t U32() { return TakeScalar<uint32_t>(); }
  uint64_t U64() { return TakeScalar<uint64_t>(); }
  int32_t I32() { return TakeScalar<int32_t>(); }

  std::string_view Str() {
    const uint32_t size = U32();
    return Bytes(size);
  }

  /// Borrows `size` raw bytes (empty view + failure when exhausted).
  std::string_view Bytes(size_t size) {
    if (!ok_ || size > data_.size() - pos_) {
      ok_ = false;
      return {};
    }
    std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  /// Skips to the next multiple of `kSectionAlignment` within the payload.
  void AlignTo8() {
    const size_t rem = pos_ % kSectionAlignment;
    if (rem != 0) Bytes(kSectionAlignment - rem);
  }

  /// True iff `count` elements of at least `min_element_bytes` each could
  /// still fit in the remaining bytes — the loop guard for count fields.
  bool FitsArray(uint64_t count, size_t min_element_bytes) const {
    if (!ok_) return false;
    const uint64_t remaining = data_.size() - pos_;
    return min_element_bytes == 0 ? count <= remaining
                                  : count <= remaining / min_element_bytes;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T TakeScalar() {
    if (!ok_ || sizeof(T) > data_.size() - pos_) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace culinary::snapshot::internal

#endif  // CULINARYLAB_SNAPSHOT_BYTE_IO_H_
