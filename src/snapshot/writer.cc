#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/random.h"
#include "obs/obs.h"
#include "robustness/fault_injector.h"
#include "snapshot/byte_io.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace culinary::snapshot {

namespace {

using internal::ByteWriter;

/// Serializes the registry: molecules first (ids are their indices), then
/// every ingredient slot in id order — tombstones included, so restored ids
/// are stable and recipes keep pointing at the right slots.
culinary::Result<std::string> SerializeRegistry(
    const flavor::FlavorRegistry& registry) {
  ByteWriter w;
  w.U64(registry.num_molecules());
  for (size_t m = 0; m < registry.num_molecules(); ++m) {
    CULINARY_ASSIGN_OR_RETURN(
        flavor::Molecule molecule,
        registry.GetMolecule(static_cast<flavor::MoleculeId>(m)));
    w.Str(molecule.name);
    w.U32(static_cast<uint32_t>(molecule.descriptors.size()));
    for (const std::string& d : molecule.descriptors) w.Str(d);
  }
  w.U64(registry.num_ingredient_slots());
  for (size_t i = 0; i < registry.num_ingredient_slots(); ++i) {
    CULINARY_ASSIGN_OR_RETURN(
        flavor::Ingredient ing,
        registry.GetIngredient(static_cast<flavor::IngredientId>(i),
                               /*include_removed=*/true));
    w.Str(ing.name);
    w.U8(static_cast<uint8_t>(ing.category));
    w.U8(static_cast<uint8_t>(ing.kind));
    w.U8(ing.removed ? 1 : 0);
    w.U8(0);  // pad / reserved
    w.U32(static_cast<uint32_t>(ing.synonyms.size()));
    for (const std::string& s : ing.synonyms) w.Str(s);
    w.U32(static_cast<uint32_t>(ing.profile.ids().size()));
    for (flavor::MoleculeId id : ing.profile.ids()) w.I32(id);
    w.U32(static_cast<uint32_t>(ing.constituents.size()));
    for (flavor::IngredientId id : ing.constituents) w.I32(id);
  }
  return w.Take();
}

std::string SerializeRecipes(const recipe::RecipeDatabase& database) {
  ByteWriter w;
  w.U64(database.num_recipes());
  for (const recipe::Recipe& r : database.recipes()) {
    w.Str(r.name);
    w.U8(static_cast<uint8_t>(r.region));
    w.U32(static_cast<uint32_t>(r.ingredients.size()));
    for (flavor::IngredientId id : r.ingredients) w.I32(id);
  }
  return w.Take();
}

std::string SerializePairing(const analysis::PairingCache& cache) {
  ByteWriter w;
  const size_t n = cache.num_ingredients();
  w.U64(n);
  for (size_t i = 0; i < n; ++i) w.I32(cache.IdAt(i));
  // Align so the uint16 triangle starts 8-byte aligned within the payload;
  // section payloads themselves start 8-byte aligned in the file, so the
  // mmap'd triangle is directly addressable.
  w.AlignTo8();
  const std::vector<uint16_t>& tri = cache.triangle();
  w.U64(tri.size());
  w.Raw(tri.data(), tri.size() * sizeof(uint16_t));
  return w.Take();
}

struct PendingSection {
  SectionId id;
  std::string payload;
};

std::string AssembleSnapshot(std::vector<PendingSection> sections,
                             uint64_t world_digest) {
  // Header + table first (with a checksum placeholder), payloads appended
  // 8-byte aligned, then the real checksums patched in.
  const size_t table_bytes = sections.size() * kSectionEntryBytes;
  std::string file;
  file.reserve(kHeaderBytes + table_bytes + 64);
  file.append(kSnapshotMagic);
  const auto append_u32 = [&file](uint32_t v) {
    file.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto append_u64 = [&file](uint64_t v) {
    file.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u32(kEndianTag);
  append_u32(kFormatVersion);
  append_u32(static_cast<uint32_t>(sections.size()));
  append_u32(0);  // reserved
  append_u64(world_digest);
  append_u64(0);  // header_checksum placeholder

  std::vector<size_t> entry_offsets;
  size_t payload_offset = kHeaderBytes + table_bytes;
  payload_offset += (kSectionAlignment - payload_offset % kSectionAlignment) %
                    kSectionAlignment;
  for (const PendingSection& section : sections) {
    entry_offsets.push_back(file.size());
    append_u32(static_cast<uint32_t>(section.id));
    append_u32(0);  // reserved
    append_u64(payload_offset);
    append_u64(section.payload.size());
    append_u64(Fnv64(section.payload.data(), section.payload.size()));
    payload_offset += section.payload.size();
    payload_offset +=
        (kSectionAlignment - payload_offset % kSectionAlignment) %
        kSectionAlignment;
  }
  for (const PendingSection& section : sections) {
    while (file.size() % kSectionAlignment != 0) file.push_back('\0');
    file.append(section.payload);
  }
  // Header checksum: bytes [0, 32) ++ the section table.
  uint64_t checksum = Fnv64(file.data(), kHeaderChecksumOffset);
  checksum = Fnv64Continue(checksum, file.data() + kSectionTableOffset,
                           table_bytes);
  std::memcpy(file.data() + kHeaderChecksumOffset, &checksum,
              sizeof(checksum));
  return file;
}

}  // namespace

uint64_t DigestGeneratedWorld(uint64_t seed, bool small_world) {
  // 'CULW' tag; any change to the generation pipeline that alters output
  // for a fixed seed should bump the tag so stale snapshots refresh.
  uint64_t digest = DeriveStreamSeed(0x43554c57ULL, seed);
  return DeriveStreamSeed(digest, small_world ? 1 : 2);
}

culinary::Result<uint64_t> DigestFiles(
    const std::vector<std::string>& paths) {
  uint64_t digest = kFnvOffsetBasis;
  for (const std::string& path : paths) {
    CULINARY_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
    const uint64_t file_hash = Fnv64(contents.data(), contents.size());
    digest = DeriveStreamSeed(digest ^ file_hash, contents.size());
  }
  return digest;
}

uint64_t CombineDigests(uint64_t a, uint64_t b) {
  return DeriveStreamSeed(a, b);
}

culinary::Status WriteWorldSnapshot(const flavor::FlavorRegistry& registry,
                                    const recipe::RecipeDatabase& database,
                                    const analysis::PairingCache* world_cache,
                                    uint64_t world_digest,
                                    const std::string& path,
                                    const SnapshotWriteOptions& options) {
  CULINARY_OBS_SPAN(write_span, "snapshot.write", "snapshot");
  std::vector<PendingSection> sections;
  CULINARY_ASSIGN_OR_RETURN(std::string registry_payload,
                            SerializeRegistry(registry));
  sections.push_back({SectionId::kRegistry, std::move(registry_payload)});
  sections.push_back({SectionId::kRecipes, SerializeRecipes(database)});
  if (world_cache != nullptr) {
    sections.push_back({SectionId::kPairing, SerializePairing(*world_cache)});
  }
  const std::string file =
      AssembleSnapshot(std::move(sections), world_digest);

  culinary::AtomicWriteOptions atomic;
  atomic.sync = options.sync;
  atomic.fault_hook = [&path](std::string_view step) -> culinary::Status {
    if (step == culinary::kAtomicStepWrite) {
      return robustness::FaultInjector::Global()
          .Check(robustness::kFaultSnapshotWrite)
          .WithContext("writing snapshot " + path);
    }
    if (step == culinary::kAtomicStepRename) {
      return robustness::FaultInjector::Global()
          .Check(robustness::kFaultSnapshotRename)
          .WithContext("publishing snapshot " + path);
    }
    return culinary::Status::OK();
  };
  CULINARY_RETURN_IF_ERROR(WriteFileAtomic(path, file, atomic));
  CULINARY_OBS_COUNT("snapshot.write_ok", 1);
  CULINARY_OBS_GAUGE_SET("snapshot.bytes", static_cast<int64_t>(file.size()));
  return culinary::Status::OK();
}

culinary::Status WriteSnapshotForWorld(LoadedWorld& world,
                                       uint64_t world_digest,
                                       const std::string& path,
                                       const SnapshotWriteOptions& options) {
  if (!world.world_cache.has_value()) {
    const recipe::Cuisine world_cuisine = world.db().WorldCuisine();
    world.world_cache.emplace(world.registry(),
                              world_cuisine.unique_ingredients());
  }
  return WriteWorldSnapshot(world.registry(), world.db(),
                            &world.world_cache.value(), world_digest, path,
                            options);
}

}  // namespace culinary::snapshot
