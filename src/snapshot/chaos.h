#ifndef CULINARYLAB_SNAPSHOT_CHAOS_H_
#define CULINARYLAB_SNAPSHOT_CHAOS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace culinary::snapshot {

/// Deterministic corruption of a binary snapshot file, one mode per call —
/// the snapshot-aware counterpart of `robustness::CorruptCsvFile`. Each
/// mode targets exactly one corruption class of the format's taxonomy (see
/// format.h), so a soak run can walk every loader branch.
enum class SnapshotCorruptionMode {
  /// Overwrites the 8-byte magic: loader reports kParseError (bad magic).
  kFlipMagic,
  /// Zeroes one section's stored checksum *and recomputes the header
  /// checksum*, so the header still verifies and the lazy per-section
  /// verification is the branch that trips: kParseError on first access to
  /// that section.
  kZeroSectionChecksum,
  /// Cuts the file mid-way through a section payload: kOutOfRange
  /// (truncated) at open, the crash-mid-write shape rename normally makes
  /// impossible.
  kTruncateMidSection,
  /// Flips one payload bit (position derived from `seed`): the header
  /// verifies, the damaged section's checksum does not — kParseError on
  /// access, counted in `snapshot.corrupt_section`.
  kBitFlipPayload,
  /// Rewrites the recorded world digest (header checksum fixed up): the
  /// snapshot looks intact but stale — kFailedPrecondition when the loader
  /// checks an expected digest.
  kWrongDigest,
};

/// Parses a mode slug ("flip-magic", "zero-section-checksum",
/// "truncate-mid-section", "bitflip-payload", "wrong-digest");
/// kInvalidArgument otherwise.
culinary::Result<SnapshotCorruptionMode> ParseSnapshotCorruptionMode(
    const std::string& name);

/// Reads the snapshot at `in_path`, applies `mode` (deterministically in
/// (input bytes, seed)), and writes the damaged file to `out_path`.
/// kParseError when the input is not a loadable-enough snapshot to target
/// (it must at least have a valid header and one section).
culinary::Status CorruptSnapshotFile(const std::string& in_path,
                                     const std::string& out_path,
                                     SnapshotCorruptionMode mode,
                                     uint64_t seed = 1234);

}  // namespace culinary::snapshot

#endif  // CULINARYLAB_SNAPSHOT_CHAOS_H_
