#ifndef CULINARYLAB_SNAPSHOT_SNAPSHOT_H_
#define CULINARYLAB_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pairing.h"
#include "common/result.h"
#include "common/status.h"
#include "flavor/registry.h"
#include "recipe/database.h"
#include "robustness/error_sink.h"
#include "snapshot/format.h"

namespace culinary::snapshot {

/// A fully materialized world as reconstructed from a snapshot (or rebuilt
/// from source data by a fallback). The database borrows the heap-allocated
/// registry, so the struct is movable with stable internal pointers —
/// mirroring `datagen::SyntheticWorld`.
struct LoadedWorld {
  std::unique_ptr<flavor::FlavorRegistry> registry_ptr;
  std::unique_ptr<recipe::RecipeDatabase> database;
  /// The world-cuisine PairingCache, when the snapshot carried one (or a
  /// caller built it). Loading it from a snapshot is a memcpy of the uint16
  /// triangle, not an O(n²) popcount rebuild.
  std::optional<analysis::PairingCache> world_cache;

  const flavor::FlavorRegistry& registry() const { return *registry_ptr; }
  const recipe::RecipeDatabase& db() const { return *database; }
};

// --- World-inputs digest ---------------------------------------------------
//
// Every snapshot records a digest of the inputs its world was built from, so
// a snapshot can never be silently applied to the wrong source data: loaders
// pass the digest of the inputs they *would* rebuild from, and a mismatch is
// a typed kFailedPrecondition that the fallback path treats as a stale
// snapshot (quarantine + rebuild + rewrite).

/// Digest for a generated world: a pure function of (seed, spec size).
uint64_t DigestGeneratedWorld(uint64_t seed, bool small_world);

/// Digest over raw file bytes (order-sensitive). Cheaper than parsing; any
/// byte change in any input invalidates dependent snapshots. kNotFound /
/// kIOError when a file is unreadable.
culinary::Result<uint64_t> DigestFiles(const std::vector<std::string>& paths);

/// Chains two digests (non-commutative).
uint64_t CombineDigests(uint64_t a, uint64_t b);

// --- Writing ---------------------------------------------------------------

struct SnapshotWriteOptions {
  /// fsync file + directory entry (see common/atomic_file.h). Disable only
  /// in benchmarks isolating serialization cost.
  bool sync = true;
};

/// Serializes the world and publishes it crash-safely (temp → fsync →
/// rename → directory fsync): a crash at any point leaves either the old
/// valid snapshot or none — never a torn file that loads. `world_cache` may
/// be null, omitting the pairing section. Fault sites: `snapshot.write`
/// (bytes staged), `snapshot.rename` (publish boundary).
culinary::Status WriteWorldSnapshot(const flavor::FlavorRegistry& registry,
                                    const recipe::RecipeDatabase& database,
                                    const analysis::PairingCache* world_cache,
                                    uint64_t world_digest,
                                    const std::string& path,
                                    const SnapshotWriteOptions& options = {});

/// Convenience: snapshots `world`, first building its world PairingCache if
/// absent (so the snapshot always carries the pairing section).
culinary::Status WriteSnapshotForWorld(LoadedWorld& world,
                                       uint64_t world_digest,
                                       const std::string& path,
                                       const SnapshotWriteOptions& options = {});

// --- Reading ---------------------------------------------------------------

/// Zero-copy view of a snapshot file: the file is mmap'd, the header and
/// section table are verified eagerly (cheap — tens of bytes), and each
/// section's checksum is verified lazily on first access. Move-only; the
/// mapping lives until destruction, and section views borrow it.
///
/// Fault sites: `snapshot.mmap` (open/map), `snapshot.verify` (per-section
/// checksum pass).
class SnapshotView {
 public:
  static culinary::Result<SnapshotView> Open(const std::string& path);

  SnapshotView(SnapshotView&& other) noexcept;
  SnapshotView& operator=(SnapshotView&& other) noexcept;
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;
  ~SnapshotView();

  uint32_t version() const { return version_; }
  uint64_t world_digest() const { return world_digest_; }
  size_t num_sections() const { return entries_.size(); }

  /// True iff the table lists `id`.
  bool HasSection(SectionId id) const;

  /// The section's raw payload bytes, checksum-verified on first call (the
  /// verdict is memoized). kNotFound when absent, kParseError on checksum
  /// mismatch. The view must outlive the returned bytes.
  culinary::Result<std::string_view> Section(SectionId id);

  const std::string& path() const { return path_; }

 private:
  struct Entry {
    SectionId id;
    uint64_t offset;
    uint64_t size;
    uint64_t checksum;
    /// 0 = unverified, 1 = verified OK, 2 = verified corrupt.
    uint8_t verdict = 0;
  };

  SnapshotView() = default;
  void Release();

  std::string path_;
  const char* base_ = nullptr;
  size_t size_ = 0;
  uint32_t version_ = 0;
  uint64_t world_digest_ = 0;
  std::vector<Entry> entries_;
};

struct SnapshotLoadOptions {
  /// When set, the snapshot's recorded digest must match or the load fails
  /// with kFailedPrecondition (stale snapshot).
  std::optional<uint64_t> expected_digest;
  /// Materialize the pairing section into `LoadedWorld::world_cache` when
  /// present. Disable for workloads that never score pairs.
  bool load_pairing = true;
};

/// Loads a full world from a snapshot. Every corruption class returns a
/// typed error (see format.h) and never partially applies: the world is
/// assembled into fresh objects and only returned on full success.
/// Increments `snapshot.load_ok` on success and `snapshot.corrupt_section`
/// per section that fails verification.
culinary::Result<LoadedWorld> LoadWorldSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {});

// --- Degradation -----------------------------------------------------------

/// What the fallback orchestrator did, for logs and tests.
struct SnapshotFallbackReport {
  /// The snapshot loaded and was used.
  bool snapshot_used = false;
  /// The snapshot was missing (cold start, not an error).
  bool snapshot_missing = false;
  /// A corrupt/stale snapshot was abandoned and the world rebuilt.
  bool fell_back = false;
  /// A fresh snapshot was written after the rebuild.
  bool rewrote = false;
  /// Where the corrupt snapshot was moved (empty when none / move failed).
  std::string quarantine_path;
  /// Human-readable cause of the miss or fallback.
  std::string note;
};

/// True for every status class the degradation policy treats as a corrupt
/// or stale snapshot (kParseError, kOutOfRange, kFailedPrecondition) — as
/// opposed to a missing file or an environment error, which are not
/// quarantine-worthy.
bool IsCorruptionStatus(const culinary::Status& status);

/// Rebuilds the world from source data (CSV parse or generation).
using WorldRebuildFn = std::function<culinary::Result<LoadedWorld>()>;

/// The degradation policy around `LoadWorldSnapshot`:
///
///   load OK ............ return it (`snapshot.load_ok`)
///   missing ............ rebuild; write a fresh snapshot when
///                        `rewrite_snapshot` (a cold start, not a failure)
///   corrupt or stale ... kStrict: fail fast with the typed error.
///                        kSkipAndReport / kBestEffort: quarantine the file
///                        (rename to `<path>.quarantined`), count
///                        `snapshot.fallback`, rebuild from source, and
///                        rewrite a fresh snapshot when `rewrite_snapshot`.
///
/// The rebuilt world is bit-identical to what the snapshot would have
/// produced (same inputs, same deterministic pipeline), so degradation is
/// invisible to analysis output — only slower.
culinary::Result<LoadedWorld> LoadWorldSnapshotOrRebuild(
    const std::string& path, uint64_t expected_digest,
    robustness::ErrorPolicy policy, const WorldRebuildFn& rebuild,
    bool rewrite_snapshot, SnapshotFallbackReport* report = nullptr);

}  // namespace culinary::snapshot

#endif  // CULINARYLAB_SNAPSHOT_SNAPSHOT_H_
