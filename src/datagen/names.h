#ifndef CULINARYLAB_DATAGEN_NAMES_H_
#define CULINARYLAB_DATAGEN_NAMES_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "flavor/category.h"

namespace culinary::datagen {

/// A curated real-world ingredient name with category and common synonyms.
/// A seed set of these makes the aliasing / parsing demos and tests operate
/// on realistic text ("whisky"/"whiskey", "curd"/"yogurt"), exactly the
/// cases §III.B of the paper curates by hand.
struct CuratedName {
  const char* name;
  flavor::Category category;
  /// Nullptr-terminated synonym list (may be empty).
  const char* const* synonyms;
};

/// The built-in curated list (~130 entries across all 21 categories).
const std::vector<CuratedName>& CuratedNames();

/// Deterministic generator of pronounceable synthetic ingredient names
/// ("karoma", "veluni seed"); guarantees uniqueness across one generator's
/// lifetime by appending a numeric disambiguator on collision.
class NameGenerator {
 public:
  explicit NameGenerator(uint64_t seed);

  /// A fresh unique name of 2–4 syllables.
  std::string Next();

  /// A fresh unique molecule-style name ("3-methylkarool").
  std::string NextMolecule();

 private:
  std::string Syllables(size_t count);

  culinary::Rng rng_;
  std::vector<std::string> used_;  // linear scan; sizes are ~1000
};

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_NAMES_H_
