#ifndef CULINARYLAB_DATAGEN_PHRASE_GEN_H_
#define CULINARYLAB_DATAGEN_PHRASE_GEN_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "flavor/registry.h"
#include "recipe/recipe.h"

namespace culinary::datagen {

/// Options for rendering ingredient ids back into messy, scraped-looking
/// ingredient phrases ("2 jalapeno peppers, roasted and slit") — the raw
/// input of the paper's aliasing protocol (§IV.A). Generating such phrases
/// from ground-truth ids lets the full parse pipeline be evaluated for
/// precision/recall at scale.
struct PhraseGenOptions {
  /// Probability of prefixing a quantity ("2", "1 1/2", "250").
  double quantity_prob = 0.9;
  /// Probability of a unit after the quantity ("cups", "tbsp", "g").
  double unit_prob = 0.6;
  /// Probability of a qualifier before the name ("fresh", "large").
  double pre_qualifier_prob = 0.5;
  /// Probability of a preparation clause after the name (", chopped").
  double post_clause_prob = 0.6;
  /// Probability of pluralizing the name's final token.
  double plural_prob = 0.35;
  /// Probability of using a registered synonym instead of the canonical
  /// name (when one exists).
  double synonym_prob = 0.25;
  /// Probability of injecting a single-character typo (adjacent
  /// transposition, duplication or deletion — Damerau distance 1) into a
  /// name token of length >= 6.
  double typo_prob = 0.0;
  /// Probability of uppercasing the first letter of name tokens.
  double capitalize_prob = 0.3;
};

/// Renders one ingredient as a raw phrase. Fails when `id` is unknown.
culinary::Result<std::string> RenderIngredientPhrase(
    const flavor::FlavorRegistry& registry, flavor::IngredientId id,
    const PhraseGenOptions& options, culinary::Rng& rng);

/// Renders a whole recipe as a list of raw phrases (one per ingredient,
/// order shuffled like scraped ingredient lists).
culinary::Result<std::vector<std::string>> RenderRecipePhrases(
    const flavor::FlavorRegistry& registry, const recipe::Recipe& recipe,
    const PhraseGenOptions& options, culinary::Rng& rng);

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_PHRASE_GEN_H_
