#include "datagen/registry_gen.h"

#include <algorithm>
#include <cmath>

#include "datagen/names.h"

namespace culinary::datagen {

namespace {

using flavor::Category;
using flavor::FlavorProfile;
using flavor::FlavorRegistry;
using flavor::IngredientId;
using flavor::MoleculeId;

/// Distribution of synthetic ingredients over categories, roughly matching
/// the breadth of FlavorDB (vegetables/fruits/spices/herbs dominate the
/// entity list even if usage differs).
Category SampleCategory(culinary::Rng& rng) {
  static constexpr struct {
    Category category;
    double weight;
  } kWeights[] = {
      {Category::kVegetable, 14}, {Category::kFruit, 13},
      {Category::kSpice, 9},      {Category::kHerb, 8},
      {Category::kPlant, 8},      {Category::kMeat, 7},
      {Category::kDairy, 6},      {Category::kCereal, 5},
      {Category::kFish, 5},       {Category::kSeafood, 4},
      {Category::kNutsAndSeeds, 4}, {Category::kLegume, 4},
      {Category::kBeverage, 3},   {Category::kBeverageAlcoholic, 3},
      {Category::kBakery, 2},     {Category::kFungus, 2},
      {Category::kFlower, 1.5},   {Category::kEssentialOil, 1.5},
      {Category::kMaize, 1},      {Category::kAdditive, 1},
      {Category::kDish, 1},
  };
  double total = 0;
  for (const auto& w : kWeights) total += w.weight;
  double x = rng.NextDouble() * total;
  for (const auto& w : kWeights) {
    x -= w.weight;
    if (x <= 0) return w.category;
  }
  return Category::kVegetable;
}

/// Samples a profile for an ingredient with home pool `home`: a mix of its
/// home pool, one secondary pool and the common molecule block.
FlavorProfile SampleProfile(const WorldSpec& spec,
                            const std::vector<std::vector<MoleculeId>>& pools,
                            const std::vector<MoleculeId>& common, int home,
                            size_t target_size, culinary::Rng& rng) {
  std::vector<MoleculeId> ids;
  ids.reserve(target_size);
  const size_t n_home = static_cast<size_t>(
      std::round(spec.profile_home_pool_fraction * target_size));
  const size_t n_secondary = static_cast<size_t>(
      std::round(spec.profile_secondary_pool_fraction * target_size));
  const size_t n_common =
      target_size > n_home + n_secondary ? target_size - n_home - n_secondary : 0;

  auto draw_from = [&](const std::vector<MoleculeId>& block, size_t count) {
    if (block.empty() || count == 0) return;
    size_t k = std::min(count, block.size());
    for (size_t idx : rng.SampleWithoutReplacement(block.size(), k)) {
      ids.push_back(block[idx]);
    }
  };

  draw_from(pools[static_cast<size_t>(home)], n_home);
  size_t secondary =
      (static_cast<size_t>(home) + 1 + rng.NextBounded(pools.size() - 1)) %
      pools.size();
  draw_from(pools[secondary], n_secondary);
  draw_from(common, n_common);
  return FlavorProfile(std::move(ids));
}

size_t SampleProfileSize(const WorldSpec& spec, culinary::Rng& rng) {
  double v = rng.NextLogNormal(spec.profile_size_log_mean,
                               spec.profile_size_log_sigma);
  auto size = static_cast<size_t>(std::llround(v));
  return std::clamp(size, spec.profile_size_min, spec.profile_size_max);
}

}  // namespace

const IngredientMeta* FlavorUniverse::MetaFor(IngredientId id) const {
  for (const IngredientMeta& m : meta) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

culinary::Result<FlavorUniverse> GenerateFlavorUniverse(const WorldSpec& spec) {
  if (spec.num_flavor_pools < 2) {
    return culinary::Status::InvalidArgument("need at least two flavor pools");
  }
  FlavorUniverse universe;
  universe.registry = std::make_unique<FlavorRegistry>();
  universe.num_pools = spec.num_flavor_pools;
  FlavorRegistry& reg = *universe.registry;

  culinary::Rng rng(spec.seed);
  NameGenerator names(rng.NextUint64());

  // --- Molecule universe: pool blocks + common block ----------------------
  std::vector<std::vector<MoleculeId>> pools(spec.num_flavor_pools);
  for (size_t p = 0; p < spec.num_flavor_pools; ++p) {
    pools[p].reserve(spec.molecules_per_pool);
    for (size_t m = 0; m < spec.molecules_per_pool; ++m) {
      CULINARY_ASSIGN_OR_RETURN(MoleculeId id,
                                reg.AddMolecule(names.NextMolecule()));
      pools[p].push_back(id);
    }
  }
  std::vector<MoleculeId> common;
  common.reserve(spec.num_common_molecules);
  for (size_t m = 0; m < spec.num_common_molecules; ++m) {
    CULINARY_ASSIGN_OR_RETURN(MoleculeId id,
                              reg.AddMolecule(names.NextMolecule()));
    common.push_back(id);
  }

  auto add_basic = [&](std::string_view name,
                       Category category) -> culinary::Result<IngredientId> {
    int home = static_cast<int>(rng.NextBounded(pools.size()));
    size_t size = SampleProfileSize(spec, rng);
    FlavorProfile profile =
        SampleProfile(spec, pools, common, home, size, rng);
    CULINARY_ASSIGN_OR_RETURN(IngredientId id,
                              reg.AddIngredient(name, category, profile));
    universe.meta.push_back({id, home, profile.size(), category});
    return id;
  };

  // --- Step 1: raw FlavorDB-like entity list ------------------------------
  // Curated real names first (with their synonyms), then synthetic fill.
  std::vector<IngredientId> raw;
  for (const CuratedName& c : CuratedNames()) {
    if (raw.size() >= spec.num_raw_flavordb_ingredients) break;
    CULINARY_ASSIGN_OR_RETURN(IngredientId id, add_basic(c.name, c.category));
    for (const char* const* syn = c.synonyms; *syn != nullptr; ++syn) {
      CULINARY_RETURN_IF_ERROR(reg.AddSynonym(id, *syn));
    }
    raw.push_back(id);
  }
  while (raw.size() < spec.num_raw_flavordb_ingredients) {
    CULINARY_ASSIGN_OR_RETURN(IngredientId id,
                              add_basic(names.Next(), SampleCategory(rng)));
    raw.push_back(id);
  }

  // --- Step 2: remove generic/noisy entities ------------------------------
  // Remove from the synthetic tail so the curated seed stays available.
  size_t curated_count = std::min(CuratedNames().size(), raw.size());
  size_t removable = raw.size() - curated_count;
  size_t to_remove = std::min(spec.num_noisy_removed, removable);
  {
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(removable, to_remove);
    for (size_t p : picks) {
      IngredientId victim = raw[curated_count + p];
      CULINARY_RETURN_IF_ERROR(reg.RemoveIngredient(victim));
      // Drop the tombstoned ingredient from generation metadata.
      universe.meta.erase(
          std::remove_if(universe.meta.begin(), universe.meta.end(),
                         [victim](const IngredientMeta& m) {
                           return m.id == victim;
                         }),
          universe.meta.end());
    }
  }

  // --- Step 3: post-curation additions ------------------------------------
  for (size_t i = 0; i < spec.num_specific_added; ++i) {
    CULINARY_RETURN_IF_ERROR(
        add_basic(names.Next() + " extract", SampleCategory(rng)).status());
  }
  for (size_t i = 0; i < spec.num_ahn_added; ++i) {
    CULINARY_RETURN_IF_ERROR(
        add_basic(names.Next(), SampleCategory(rng)).status());
  }
  for (size_t i = 0; i < spec.num_additives_added; ++i) {
    bool with_profile = i + spec.num_additives_without_profile <
                        spec.num_additives_added;
    if (with_profile) {
      CULINARY_RETURN_IF_ERROR(
          add_basic(names.Next() + " powder", Category::kAdditive).status());
    } else {
      // "For the last four additives, no flavor profile was added."
      CULINARY_ASSIGN_OR_RETURN(
          IngredientId id,
          reg.AddIngredient(names.Next() + " powder", Category::kAdditive,
                            FlavorProfile()));
      universe.meta.push_back({id, -1, 0, Category::kAdditive});
    }
  }

  // --- Step 4: compound ingredients ---------------------------------------
  std::vector<IngredientId> live = reg.LiveIngredients();
  for (size_t i = 0; i < spec.num_compound_ingredients; ++i) {
    size_t k = spec.compound_constituents_min +
               rng.NextBounded(spec.compound_constituents_max -
                               spec.compound_constituents_min + 1);
    k = std::min(k, live.size());
    std::vector<IngredientId> constituents;
    for (size_t idx : rng.SampleWithoutReplacement(live.size(), k)) {
      constituents.push_back(live[idx]);
    }
    CULINARY_ASSIGN_OR_RETURN(
        IngredientId id,
        reg.AddCompoundIngredient(names.Next() + " blend", Category::kDish,
                                  constituents));
    const flavor::Ingredient* ing = reg.Find(id);
    // Compounds inherit the home pool of their first constituent for
    // generation purposes.
    const IngredientMeta* first_meta = universe.MetaFor(constituents[0]);
    universe.meta.push_back({id, first_meta != nullptr ? first_meta->home_pool : -1,
                             ing->profile.size(), Category::kDish});
  }

  return universe;
}

}  // namespace culinary::datagen
