#ifndef CULINARYLAB_DATAGEN_SPEC_H_
#define CULINARYLAB_DATAGEN_SPEC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "flavor/category.h"
#include "recipe/region.h"

namespace culinary::datagen {

/// Per-region generation parameters, calibrated to the paper.
struct RegionSpec {
  recipe::Region region = recipe::Region::kWorld;
  /// Number of recipes (Table 1).
  size_t num_recipes = 0;
  /// Target number of distinct ingredients (Table 1).
  size_t num_ingredients = 0;
  /// Pairing bias β used during recipe assembly: β > 0 assembles recipes
  /// from similar-flavored ingredients (uniform pairing, Fig 4 positive
  /// bars); β < 0 from contrasting ones. Magnitude scales the effect.
  double pairing_bias = 0.0;
  /// Fraction of the region's ingredient slots drawn from its anchor
  /// flavor pools (positive-pairing regions concentrate popular
  /// ingredients in few pools; negative-pairing ones spread them).
  double anchor_fraction = 0.45;
  /// Multiplicative preference per ingredient category applied when
  /// assigning popularity ranks (drives the Fig 2 heatmap patterns, e.g.
  /// dairy-heavy France, spice-heavy Indian Subcontinent).
  std::array<double, flavor::kNumCategories> category_preference{};
};

/// Parameters of the synthetic world.
struct WorldSpec {
  uint64_t seed = 20180416;  ///< default world seed (ICDE'18 vintage)

  // --- Flavor universe ----------------------------------------------------
  size_t num_flavor_pools = 24;        ///< disjoint molecule pools
  size_t molecules_per_pool = 70;      ///< pool block size
  size_t num_common_molecules = 320;   ///< molecules shared by everyone
  /// Basic-ingredient profile sizes (lognormal, clipped).
  double profile_size_log_mean = 3.4;  ///< exp(3.4) ≈ 30 molecules
  double profile_size_log_sigma = 0.6;
  size_t profile_size_min = 3;
  size_t profile_size_max = 180;
  /// Composition of a basic ingredient's profile.
  double profile_home_pool_fraction = 0.65;
  double profile_secondary_pool_fraction = 0.10;
  // remainder comes from the common molecule set

  // --- Ingredient universe (paper §III.B counts) ---------------------------
  size_t num_raw_flavordb_ingredients = 845;  ///< before curation
  size_t num_noisy_removed = 29;
  size_t num_specific_added = 13;   ///< anise oil, coconut milk, ...
  size_t num_ahn_added = 4;         ///< cayenne, yeast, tequila, sauerkraut
  size_t num_additives_added = 7;   ///< baking powder, MSG, ...
  size_t num_additives_without_profile = 4;
  size_t num_compound_ingredients = 103;
  size_t compound_constituents_min = 2;
  size_t compound_constituents_max = 5;

  // --- Recipe generation ---------------------------------------------------
  /// Recipe-size distribution: lognormal rounded, clipped to [min, max];
  /// defaults give a bounded thin-tailed distribution with mean ≈ 9
  /// (paper Fig 3a).
  double recipe_size_log_mean = 2.14;  ///< exp(2.14 + σ²/2) ≈ 9.0
  double recipe_size_log_sigma = 0.42;
  size_t recipe_size_min = 2;
  size_t recipe_size_max = 28;
  /// Zipf–Mandelbrot popularity over each region's ingredient ranks
  /// (Fig 3b): P(rank r) ∝ 1/(r+q)^s.
  double popularity_exponent = 1.05;
  double popularity_shift = 8.0;
  /// Candidate pool size per ingredient slot during biased assembly.
  size_t assembly_candidates = 10;

  /// Per-region parameters, Table 1 order.
  std::vector<RegionSpec> regions;

  /// The calibrated default world reproducing the paper's statistics.
  static WorldSpec Default();

  /// A miniature world (hundreds of recipes) for fast tests and examples.
  static WorldSpec Small();
};

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_SPEC_H_
