#include "datagen/phrase_gen.h"

#include <cctype>

#include "common/string_util.h"
#include "text/inflect.h"

namespace culinary::datagen {

namespace {

const char* const kQuantities[] = {"1",   "2",    "3",     "4",   "1/2",
                                   "1/4", "3/4",  "1 1/2", "250", "500",
                                   "100", "2 1/2"};

const char* const kUnits[] = {"cup",    "cups",       "tablespoon",
                              "tablespoons", "tbsp",  "teaspoon",
                              "teaspoons",   "tsp",   "ounces",
                              "g",      "kg",         "ml",
                              "pound",  "pounds",     "pinch",
                              "cloves", "slices",     "can"};

const char* const kPreQualifiers[] = {"fresh",  "large", "small",
                                      "medium", "ripe",  "dried",
                                      "frozen", "whole", "finely chopped",
                                      "freshly ground"};

const char* const kPostClauses[] = {
    ", chopped",       ", diced",          ", minced",
    ", thinly sliced", ", roasted",        ", peeled and seeded",
    ", to taste",      " (optional)",      ", divided",
    ", at room temperature",               ", drained and rinsed"};

/// Injects one Damerau-distance-1 typo into `word` (length >= 6).
std::string InjectTypo(const std::string& word, culinary::Rng& rng) {
  std::string out = word;
  size_t kind = rng.NextBounded(3);
  // Operate away from the first character to keep fuzzy prefix hints.
  size_t pos = 1 + rng.NextBounded(out.size() - 2);
  switch (kind) {
    case 0:  // adjacent transposition
      std::swap(out[pos], out[pos - 1]);
      break;
    case 1:  // duplication
      out.insert(out.begin() + static_cast<long>(pos), out[pos]);
      break;
    default:  // deletion
      out.erase(out.begin() + static_cast<long>(pos));
      break;
  }
  return out;
}

template <size_t N>
const char* Pick(const char* const (&list)[N], culinary::Rng& rng) {
  return list[rng.NextBounded(N)];
}

}  // namespace

culinary::Result<std::string> RenderIngredientPhrase(
    const flavor::FlavorRegistry& registry, flavor::IngredientId id,
    const PhraseGenOptions& options, culinary::Rng& rng) {
  const flavor::Ingredient* ing = registry.Find(id);
  if (ing == nullptr) {
    return culinary::Status::NotFound("ingredient id " + std::to_string(id) +
                                      " unknown");
  }

  // Choose the surface name: canonical or synonym.
  std::string name = ing->name;
  if (!ing->synonyms.empty() && rng.NextBernoulli(options.synonym_prob)) {
    name = ing->synonyms[rng.NextBounded(ing->synonyms.size())];
  }

  // Token-level mutations: plural, typo, capitalization.
  std::vector<std::string> tokens = culinary::SplitWhitespace(name);
  if (!tokens.empty() && rng.NextBernoulli(options.plural_prob)) {
    tokens.back() = text::Pluralize(tokens.back());
  }
  if (options.typo_prob > 0.0 && rng.NextBernoulli(options.typo_prob)) {
    // Typo the longest token (most likely to stay fuzzy-recoverable).
    size_t longest = 0;
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].size() > tokens[longest].size()) longest = i;
    }
    if (tokens[longest].size() >= 6) {
      tokens[longest] = InjectTypo(tokens[longest], rng);
    }
  }
  if (rng.NextBernoulli(options.capitalize_prob)) {
    for (std::string& t : tokens) {
      t[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(t[0])));
    }
  }
  name = culinary::Join(tokens, " ");

  std::string phrase;
  if (rng.NextBernoulli(options.quantity_prob)) {
    phrase += Pick(kQuantities, rng);
    phrase += ' ';
    if (rng.NextBernoulli(options.unit_prob)) {
      phrase += Pick(kUnits, rng);
      phrase += ' ';
    }
  }
  if (rng.NextBernoulli(options.pre_qualifier_prob)) {
    phrase += Pick(kPreQualifiers, rng);
    phrase += ' ';
  }
  phrase += name;
  if (rng.NextBernoulli(options.post_clause_prob)) {
    phrase += Pick(kPostClauses, rng);
  }
  return phrase;
}

culinary::Result<std::vector<std::string>> RenderRecipePhrases(
    const flavor::FlavorRegistry& registry, const recipe::Recipe& recipe,
    const PhraseGenOptions& options, culinary::Rng& rng) {
  std::vector<flavor::IngredientId> order = recipe.ingredients;
  rng.Shuffle(order);
  std::vector<std::string> out;
  out.reserve(order.size());
  for (flavor::IngredientId id : order) {
    CULINARY_ASSIGN_OR_RETURN(std::string phrase,
                              RenderIngredientPhrase(registry, id, options,
                                                     rng));
    out.push_back(std::move(phrase));
  }
  return out;
}

}  // namespace culinary::datagen
