#include "datagen/names.h"

#include <algorithm>

namespace culinary::datagen {

namespace {

using flavor::Category;

const char* const kNoSynonyms[] = {nullptr};
const char* const kYogurtSyn[] = {"curd", nullptr};
const char* const kBreadSyn[] = {"bun", nullptr};
const char* const kBeerSyn[] = {"lager", nullptr};
const char* const kWhiskeySyn[] = {"whisky", nullptr};
const char* const kAsafoetidaSyn[] = {"hing", nullptr};
const char* const kChiliSyn[] = {"chile", "chilli", nullptr};
const char* const kScallionSyn[] = {"green onion", "spring onion", nullptr};
const char* const kCilantroSyn[] = {"coriander leaf", nullptr};
const char* const kGarbanzoSyn[] = {"chickpea", nullptr};
const char* const kEggplantSyn[] = {"aubergine", "brinjal", nullptr};
const char* const kZucchiniSyn[] = {"courgette", nullptr};
const char* const kShrimpSyn[] = {"prawn", nullptr};
const char* const kCornSyn[] = {"maize", nullptr};
const char* const kPowderedSugarSyn[] = {"confectioner sugar", "icing sugar",
                                         nullptr};

const CuratedName kCurated[] = {
    // Vegetable
    {"tomato", Category::kVegetable, kNoSynonyms},
    {"onion", Category::kVegetable, kNoSynonyms},
    {"garlic", Category::kVegetable, kNoSynonyms},
    {"potato", Category::kVegetable, kNoSynonyms},
    {"carrot", Category::kVegetable, kNoSynonyms},
    {"celery", Category::kVegetable, kNoSynonyms},
    {"bell pepper", Category::kVegetable, kNoSynonyms},
    {"jalapeno pepper", Category::kVegetable, kNoSynonyms},
    {"spinach", Category::kVegetable, kNoSynonyms},
    {"cabbage", Category::kVegetable, kNoSynonyms},
    {"cauliflower", Category::kVegetable, kNoSynonyms},
    {"broccoli", Category::kVegetable, kNoSynonyms},
    {"cucumber", Category::kVegetable, kNoSynonyms},
    {"eggplant", Category::kVegetable, kEggplantSyn},
    {"zucchini", Category::kVegetable, kZucchiniSyn},
    {"scallion", Category::kVegetable, kScallionSyn},
    {"pumpkin", Category::kVegetable, kNoSynonyms},
    {"beet", Category::kVegetable, kNoSynonyms},
    {"radish", Category::kVegetable, kNoSynonyms},
    {"lettuce", Category::kVegetable, kNoSynonyms},
    // Dairy
    {"milk", Category::kDairy, kNoSynonyms},
    {"butter", Category::kDairy, kNoSynonyms},
    {"cream", Category::kDairy, kNoSynonyms},
    {"yogurt", Category::kDairy, kYogurtSyn},
    {"cheddar cheese", Category::kDairy, kNoSynonyms},
    {"parmesan cheese", Category::kDairy, kNoSynonyms},
    {"mozzarella cheese", Category::kDairy, kNoSynonyms},
    {"cream cheese", Category::kDairy, kNoSynonyms},
    {"sour cream", Category::kDairy, kNoSynonyms},
    {"ghee", Category::kDairy, kNoSynonyms},
    {"buttermilk", Category::kDairy, kNoSynonyms},
    // Legume
    {"lentil", Category::kLegume, kNoSynonyms},
    {"garbanzo bean", Category::kLegume, kGarbanzoSyn},
    {"black bean", Category::kLegume, kNoSynonyms},
    {"kidney bean", Category::kLegume, kNoSynonyms},
    {"pea", Category::kLegume, kNoSynonyms},
    {"soybean", Category::kLegume, kNoSynonyms},
    {"peanut", Category::kLegume, kNoSynonyms},
    // Maize
    {"corn", Category::kMaize, kCornSyn},
    {"cornmeal", Category::kMaize, kNoSynonyms},
    {"corn tortilla", Category::kMaize, kNoSynonyms},
    {"popcorn", Category::kMaize, kNoSynonyms},
    // Cereal
    {"rice", Category::kCereal, kNoSynonyms},
    {"wheat flour", Category::kCereal, kNoSynonyms},
    {"oat", Category::kCereal, kNoSynonyms},
    {"barley", Category::kCereal, kNoSynonyms},
    {"quinoa", Category::kCereal, kNoSynonyms},
    {"pasta", Category::kCereal, kNoSynonyms},
    {"noodle", Category::kCereal, kNoSynonyms},
    // Meat
    {"chicken", Category::kMeat, kNoSynonyms},
    {"beef", Category::kMeat, kNoSynonyms},
    {"pork", Category::kMeat, kNoSynonyms},
    {"lamb", Category::kMeat, kNoSynonyms},
    {"bacon", Category::kMeat, kNoSynonyms},
    {"ham", Category::kMeat, kNoSynonyms},
    {"sausage", Category::kMeat, kNoSynonyms},
    {"turkey", Category::kMeat, kNoSynonyms},
    {"duck", Category::kMeat, kNoSynonyms},
    // Nuts and Seeds
    {"almond", Category::kNutsAndSeeds, kNoSynonyms},
    {"walnut", Category::kNutsAndSeeds, kNoSynonyms},
    {"cashew", Category::kNutsAndSeeds, kNoSynonyms},
    {"sesame seed", Category::kNutsAndSeeds, kNoSynonyms},
    {"pistachio", Category::kNutsAndSeeds, kNoSynonyms},
    {"pine nut", Category::kNutsAndSeeds, kNoSynonyms},
    {"sunflower seed", Category::kNutsAndSeeds, kNoSynonyms},
    // Plant
    {"olive", Category::kPlant, kNoSynonyms},
    {"olive oil", Category::kPlant, kNoSynonyms},
    {"coconut", Category::kPlant, kNoSynonyms},
    {"cocoa", Category::kPlant, kNoSynonyms},
    {"coffee", Category::kPlant, kNoSynonyms},
    {"tea", Category::kPlant, kNoSynonyms},
    {"sugar", Category::kPlant, kNoSynonyms},
    {"powdered sugar", Category::kPlant, kPowderedSugarSyn},
    {"maple syrup", Category::kPlant, kNoSynonyms},
    {"tofu", Category::kPlant, kNoSynonyms},
    // Fish
    {"salmon", Category::kFish, kNoSynonyms},
    {"tuna", Category::kFish, kNoSynonyms},
    {"cod", Category::kFish, kNoSynonyms},
    {"anchovy", Category::kFish, kNoSynonyms},
    {"herring", Category::kFish, kNoSynonyms},
    {"sardine", Category::kFish, kNoSynonyms},
    // Seafood
    {"shrimp", Category::kSeafood, kShrimpSyn},
    {"crab", Category::kSeafood, kNoSynonyms},
    {"lobster", Category::kSeafood, kNoSynonyms},
    {"squid", Category::kSeafood, kNoSynonyms},
    {"oyster", Category::kSeafood, kNoSynonyms},
    {"mussel", Category::kSeafood, kNoSynonyms},
    // Spice
    {"black pepper", Category::kSpice, kNoSynonyms},
    {"cumin", Category::kSpice, kNoSynonyms},
    {"turmeric", Category::kSpice, kNoSynonyms},
    {"cinnamon", Category::kSpice, kNoSynonyms},
    {"clove", Category::kSpice, kNoSynonyms},
    {"cardamom", Category::kSpice, kNoSynonyms},
    {"nutmeg", Category::kSpice, kNoSynonyms},
    {"paprika", Category::kSpice, kNoSynonyms},
    {"chili", Category::kSpice, kChiliSyn},
    {"asafoetida", Category::kSpice, kAsafoetidaSyn},
    {"ginger", Category::kSpice, kNoSynonyms},
    {"saffron", Category::kSpice, kNoSynonyms},
    {"mustard seed", Category::kSpice, kNoSynonyms},
    {"fenugreek", Category::kSpice, kNoSynonyms},
    {"star anise", Category::kSpice, kNoSynonyms},
    // Bakery
    {"bread", Category::kBakery, kBreadSyn},
    {"tortilla", Category::kBakery, kNoSynonyms},
    {"pita", Category::kBakery, kNoSynonyms},
    {"cracker", Category::kBakery, kNoSynonyms},
    {"breadcrumb", Category::kBakery, kNoSynonyms},
    // Beverage Alcoholic
    {"beer", Category::kBeverageAlcoholic, kBeerSyn},
    {"whiskey", Category::kBeverageAlcoholic, kWhiskeySyn},
    {"red wine", Category::kBeverageAlcoholic, kNoSynonyms},
    {"white wine", Category::kBeverageAlcoholic, kNoSynonyms},
    {"rum", Category::kBeverageAlcoholic, kNoSynonyms},
    {"vodka", Category::kBeverageAlcoholic, kNoSynonyms},
    {"sake", Category::kBeverageAlcoholic, kNoSynonyms},
    // Beverage
    {"orange juice", Category::kBeverage, kNoSynonyms},
    {"apple cider", Category::kBeverage, kNoSynonyms},
    {"soda water", Category::kBeverage, kNoSynonyms},
    // Essential Oil
    {"peppermint oil", Category::kEssentialOil, kNoSynonyms},
    {"rose oil", Category::kEssentialOil, kNoSynonyms},
    // Flower
    {"rose", Category::kFlower, kNoSynonyms},
    {"lavender", Category::kFlower, kNoSynonyms},
    {"hibiscus", Category::kFlower, kNoSynonyms},
    // Fruit
    {"lemon", Category::kFruit, kNoSynonyms},
    {"lime", Category::kFruit, kNoSynonyms},
    {"orange", Category::kFruit, kNoSynonyms},
    {"apple", Category::kFruit, kNoSynonyms},
    {"banana", Category::kFruit, kNoSynonyms},
    {"mango", Category::kFruit, kNoSynonyms},
    {"pineapple", Category::kFruit, kNoSynonyms},
    {"strawberry", Category::kFruit, kNoSynonyms},
    {"raspberry", Category::kFruit, kNoSynonyms},
    {"blueberry", Category::kFruit, kNoSynonyms},
    {"grape", Category::kFruit, kNoSynonyms},
    {"raisin", Category::kFruit, kNoSynonyms},
    {"date", Category::kFruit, kNoSynonyms},
    {"avocado", Category::kFruit, kNoSynonyms},
    {"tamarind", Category::kFruit, kNoSynonyms},
    // Fungus
    {"button mushroom", Category::kFungus, kNoSynonyms},
    {"shiitake mushroom", Category::kFungus, kNoSynonyms},
    {"truffle", Category::kFungus, kNoSynonyms},
    // Herb
    {"basil", Category::kHerb, kNoSynonyms},
    {"oregano", Category::kHerb, kNoSynonyms},
    {"thyme", Category::kHerb, kNoSynonyms},
    {"rosemary", Category::kHerb, kNoSynonyms},
    {"cilantro", Category::kHerb, kCilantroSyn},
    {"parsley", Category::kHerb, kNoSynonyms},
    {"mint", Category::kHerb, kNoSynonyms},
    {"dill", Category::kHerb, kNoSynonyms},
    {"sage", Category::kHerb, kNoSynonyms},
    {"bay leaf", Category::kHerb, kNoSynonyms},
    {"lemongrass", Category::kHerb, kNoSynonyms},
    // Additive
    {"salt", Category::kAdditive, kNoSynonyms},
    {"vinegar", Category::kAdditive, kNoSynonyms},
    {"soy sauce", Category::kAdditive, kNoSynonyms},
    {"fish sauce", Category::kAdditive, kNoSynonyms},
    {"vanilla extract", Category::kAdditive, kNoSynonyms},
    // Dish
    {"salsa", Category::kDish, kNoSynonyms},
    {"pesto", Category::kDish, kNoSynonyms},
    {"hummus", Category::kDish, kNoSynonyms},
    {"kimchi", Category::kDish, kNoSynonyms},
};

}  // namespace

const std::vector<CuratedName>& CuratedNames() {
  static const auto& list = *new std::vector<CuratedName>(
      kCurated, kCurated + sizeof(kCurated) / sizeof(kCurated[0]));
  return list;
}

NameGenerator::NameGenerator(uint64_t seed) : rng_(seed) {}

std::string NameGenerator::Syllables(size_t count) {
  static const char* const kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "k",
                                        "l",  "m",  "n",  "p",  "r",  "s",
                                        "t",  "v",  "z",  "ch", "sh", "th",
                                        "br", "cr", "gr", "pl", "tr", ""};
  static const char* const kNuclei[] = {"a",  "e",  "i",  "o",  "u",
                                        "ai", "ei", "oo", "ou", "ia"};
  static const char* const kCodas[] = {"",  "",  "",  "n", "r", "l",
                                       "s", "m", "k", "t"};
  std::string out;
  for (size_t s = 0; s < count; ++s) {
    out += kOnsets[rng_.NextBounded(sizeof(kOnsets) / sizeof(kOnsets[0]))];
    out += kNuclei[rng_.NextBounded(sizeof(kNuclei) / sizeof(kNuclei[0]))];
    if (s + 1 == count) {
      out += kCodas[rng_.NextBounded(sizeof(kCodas) / sizeof(kCodas[0]))];
    }
  }
  return out;
}

std::string NameGenerator::Next() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string candidate = Syllables(2 + rng_.NextBounded(3));
    if (candidate.size() < 4) continue;
    if (std::find(used_.begin(), used_.end(), candidate) == used_.end()) {
      used_.push_back(candidate);
      return candidate;
    }
  }
  std::string candidate = Syllables(3) + std::to_string(used_.size());
  used_.push_back(candidate);
  return candidate;
}

std::string NameGenerator::NextMolecule() {
  static const char* const kPrefixes[] = {"methyl", "ethyl",  "propyl",
                                          "butyl",  "acetyl", "benzyl",
                                          "iso",    "neo",    "cis"};
  static const char* const kSuffixes[] = {"ol",   "al",  "one", "ene",
                                          "ate",  "ine", "ide", "oxide"};
  std::string base = Syllables(2);
  std::string candidate =
      std::to_string(1 + rng_.NextBounded(9)) + "-" +
      kPrefixes[rng_.NextBounded(sizeof(kPrefixes) / sizeof(kPrefixes[0]))] +
      base +
      kSuffixes[rng_.NextBounded(sizeof(kSuffixes) / sizeof(kSuffixes[0]))];
  if (std::find(used_.begin(), used_.end(), candidate) != used_.end()) {
    candidate += std::to_string(used_.size());
  }
  used_.push_back(candidate);
  return candidate;
}

}  // namespace culinary::datagen
