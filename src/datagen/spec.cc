#include "datagen/spec.h"

#include <algorithm>

namespace culinary::datagen {

namespace {

using flavor::Category;
using recipe::Region;

/// Table 1 of the paper: recipes and unique mapped ingredients per region.
struct Table1Row {
  Region region;
  size_t recipes;
  size_t ingredients;
};

constexpr Table1Row kTable1[] = {
    {Region::kAfrica, 651, 303},
    {Region::kAustraliaNz, 494, 294},
    {Region::kBritishIsles, 1075, 340},
    {Region::kCanada, 1112, 368},
    {Region::kCaribbean, 1103, 340},
    {Region::kChina, 941, 302},
    {Region::kDach, 487, 260},
    {Region::kEasternEurope, 565, 255},
    {Region::kFrance, 2703, 424},
    {Region::kGreece, 934, 280},
    {Region::kIndianSubcontinent, 4058, 378},
    {Region::kItaly, 7504, 452},
    {Region::kJapan, 580, 283},
    {Region::kKorea, 301, 198},
    {Region::kMexico, 3138, 376},
    {Region::kMiddleEast, 993, 313},
    {Region::kScandinavia, 404, 245},
    {Region::kSouthAmerica, 310, 221},
    {Region::kSouthEastAsia, 611, 266},
    {Region::kSpain, 816, 312},
    {Region::kThailand, 667, 265},
    {Region::kUsa, 16118, 612},
};

/// Fig 4 calibration: sign and relative strength of the pairing bias.
/// Positive list is the paper's order of uniform-pairing regions; negative
/// list is the contrasting-pairing order (strongest deviation first).
double PairingBiasFor(Region region) {
  switch (region) {
    case Region::kItaly:
      return 1.00;
    case Region::kAfrica:
      return 0.95;
    case Region::kCaribbean:
      return 0.90;
    case Region::kGreece:
      return 0.85;
    case Region::kSpain:
      return 0.80;
    case Region::kUsa:
      return 0.75;
    case Region::kIndianSubcontinent:
      return 0.70;
    case Region::kMiddleEast:
      return 0.65;
    case Region::kMexico:
      return 0.60;
    case Region::kAustraliaNz:
      return 0.55;
    case Region::kSouthAmerica:
      return 0.50;
    case Region::kFrance:
      return 0.45;
    case Region::kThailand:
      return 0.42;
    case Region::kChina:
      return 0.38;
    case Region::kSouthEastAsia:
      return 0.34;
    case Region::kCanada:
      return 0.30;
    case Region::kScandinavia:
      return -1.00;
    case Region::kJapan:
      return -0.90;
    case Region::kDach:
      return -0.80;
    case Region::kBritishIsles:
      return -0.70;
    case Region::kKorea:
      return -0.60;
    case Region::kEasternEurope:
      return -0.50;
    case Region::kWorld:
      return 0.0;
  }
  return 0.0;
}

/// Fig 2 calibration: baseline category preference (WORLD row ordering:
/// Vegetable, Spice, Dairy, Herb, Plant, Meat, Fruit dominate; Additive is
/// heavily used but excluded from the figure).
std::array<double, flavor::kNumCategories> BaseCategoryPreference() {
  std::array<double, flavor::kNumCategories> p{};
  p.fill(0.45);
  p[static_cast<size_t>(Category::kVegetable)] = 1.70;
  p[static_cast<size_t>(Category::kSpice)] = 1.45;
  p[static_cast<size_t>(Category::kDairy)] = 1.30;
  p[static_cast<size_t>(Category::kHerb)] = 1.15;
  p[static_cast<size_t>(Category::kPlant)] = 1.05;
  p[static_cast<size_t>(Category::kMeat)] = 1.15;
  p[static_cast<size_t>(Category::kDish)] = 0.26;
  p[static_cast<size_t>(Category::kFruit)] = 0.90;
  p[static_cast<size_t>(Category::kCereal)] = 0.70;
  p[static_cast<size_t>(Category::kAdditive)] = 1.90;
  p[static_cast<size_t>(Category::kFish)] = 0.45;
  p[static_cast<size_t>(Category::kSeafood)] = 0.40;
  p[static_cast<size_t>(Category::kEssentialOil)] = 0.10;
  p[static_cast<size_t>(Category::kFlower)] = 0.12;
  p[static_cast<size_t>(Category::kFungus)] = 0.30;
  return p;
}

/// Region-specific deviations from the base preference (paper §II.A:
/// "France, British Isles, and Scandinavia regions use dairy products more
/// prominently than vegetables. Among regions with predominant use of spice
/// were Indian Subcontinent, Africa, Middle East, and Caribbean").
void ApplyRegionalPreference(Region region,
                             std::array<double, flavor::kNumCategories>& p) {
  auto boost = [&p](Category c, double factor) {
    p[static_cast<size_t>(c)] *= factor;
  };
  switch (region) {
    case Region::kFrance:
    case Region::kBritishIsles:
    case Region::kScandinavia:
      // Dairy above vegetables. Dairy entities are ~2.5x rarer than
      // vegetable entities in the universe, so the per-ingredient boost
      // must overcome the headcount gap.
      boost(Category::kDairy, 2.4);
      boost(Category::kVegetable, 0.80);
      break;
    case Region::kIndianSubcontinent:
    case Region::kAfrica:
    case Region::kMiddleEast:
    case Region::kCaribbean:
      boost(Category::kSpice, 2.2);  // spice-dominant cuisines
      boost(Category::kVegetable, 0.85);
      break;
    case Region::kJapan:
    case Region::kKorea:
      boost(Category::kFish, 2.2);
      boost(Category::kSeafood, 2.0);
      break;
    case Region::kChina:
    case Region::kSouthEastAsia:
    case Region::kThailand:
      boost(Category::kSeafood, 1.6);
      boost(Category::kHerb, 1.3);
      break;
    case Region::kItaly:
    case Region::kGreece:
    case Region::kSpain:
      boost(Category::kHerb, 1.4);
      boost(Category::kPlant, 1.3);  // olive oil country
      break;
    case Region::kMexico:
    case Region::kSouthAmerica:
      boost(Category::kMaize, 2.5);
      break;
    default:
      break;
  }
}

}  // namespace

WorldSpec WorldSpec::Default() {
  WorldSpec spec;
  spec.regions.reserve(recipe::kNumRegions);
  for (const Table1Row& row : kTable1) {
    RegionSpec rs;
    rs.region = row.region;
    rs.num_recipes = row.recipes;
    rs.num_ingredients = row.ingredients;
    rs.pairing_bias = PairingBiasFor(row.region);
    rs.anchor_fraction = rs.pairing_bias > 0 ? 0.50 : 0.25;
    rs.category_preference = BaseCategoryPreference();
    ApplyRegionalPreference(row.region, rs.category_preference);
    spec.regions.push_back(rs);
  }
  return spec;
}

WorldSpec WorldSpec::Small() {
  WorldSpec spec = Default();
  // Shrink the universe and every region by roughly an order of magnitude;
  // keep the structure (pools, curation counts) intact.
  spec.num_flavor_pools = 12;
  spec.molecules_per_pool = 40;
  spec.num_common_molecules = 120;
  spec.num_raw_flavordb_ingredients = 240;
  spec.num_noisy_removed = 8;
  spec.num_specific_added = 5;
  spec.num_ahn_added = 2;
  spec.num_additives_added = 3;
  spec.num_additives_without_profile = 1;
  spec.num_compound_ingredients = 24;
  for (RegionSpec& rs : spec.regions) {
    rs.num_recipes = std::max<size_t>(40, rs.num_recipes / 25);
    rs.num_ingredients = std::max<size_t>(30, rs.num_ingredients / 5);
  }
  return spec;
}

}  // namespace culinary::datagen
