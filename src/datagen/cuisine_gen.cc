#include "datagen/cuisine_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "analysis/pairing.h"

namespace culinary::datagen {

namespace {

using flavor::IngredientId;

/// Number of anchor pools a region concentrates on.
constexpr size_t kAnchorPools = 3;

/// Scale turning the [-1, 1] pairing_bias into a softmax inverse
/// temperature over shared-compound counts.
constexpr double kBiasScale = 0.35;

/// Weighted sampling without replacement (Efraimidis–Spirakis): keeps the
/// `k` items with the largest u^(1/w) keys.
std::vector<const IngredientMeta*> WeightedSample(
    const std::vector<const IngredientMeta*>& items,
    const RegionSpec& region_spec, size_t k, culinary::Rng& rng) {
  struct Keyed {
    const IngredientMeta* meta;
    double key;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(items.size());
  for (const IngredientMeta* m : items) {
    // sqrt tempers the preference: it is applied again (in full) during
    // popularity-rank assignment, and heatmap shares would otherwise
    // overshoot the paper's contrasts.
    double w = std::sqrt(std::max(
        1e-6,
        region_spec.category_preference[static_cast<size_t>(m->category)]));
    double u = std::max(rng.NextDouble(), 1e-300);
    keyed.push_back({m, std::pow(u, 1.0 / w)});
  }
  k = std::min(k, keyed.size());
  std::partial_sort(keyed.begin(), keyed.begin() + static_cast<long>(k),
                    keyed.end(),
                    [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
  std::vector<const IngredientMeta*> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(keyed[i].meta);
  return out;
}

/// Selects the region's ingredient subset: `anchor_fraction` of the slots
/// from the anchor pools, the rest from everything else; both draws are
/// weighted by the region's category preferences so dairy-heavy regions
/// actually *stock* more dairy entities (Fig 2).
std::vector<const IngredientMeta*> SelectRegionIngredients(
    const RegionSpec& region_spec, const FlavorUniverse& universe,
    const std::vector<size_t>& anchor_pools, culinary::Rng& rng) {
  std::vector<const IngredientMeta*> anchor, rest;
  for (const IngredientMeta& m : universe.meta) {
    bool in_anchor =
        m.home_pool >= 0 &&
        std::find(anchor_pools.begin(), anchor_pools.end(),
                  static_cast<size_t>(m.home_pool)) != anchor_pools.end();
    (in_anchor ? anchor : rest).push_back(&m);
  }
  size_t want = std::min(region_spec.num_ingredients, universe.meta.size());
  size_t want_anchor = std::min(
      anchor.size(),
      static_cast<size_t>(std::round(region_spec.anchor_fraction *
                                     static_cast<double>(want))));
  size_t want_rest = std::min(rest.size(), want - want_anchor);

  std::vector<const IngredientMeta*> selected =
      WeightedSample(anchor, region_spec, want_anchor, rng);
  std::vector<const IngredientMeta*> others =
      WeightedSample(rest, region_spec, want_rest, rng);
  selected.insert(selected.end(), others.begin(), others.end());
  return selected;
}

/// Orders the selected ingredients by popularity: the returned vector's
/// index is the 0-based rank.
std::vector<const IngredientMeta*> AssignPopularityRanks(
    const RegionSpec& region_spec, std::vector<const IngredientMeta*> selected,
    const std::vector<size_t>& anchor_pools, culinary::Rng& rng) {
  struct Scored {
    const IngredientMeta* meta;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(selected.size());
  const bool positive = region_spec.pairing_bias >= 0.0;
  for (const IngredientMeta* m : selected) {
    double score =
        region_spec.category_preference[static_cast<size_t>(m->category)];
    bool in_anchor =
        m->home_pool >= 0 &&
        std::find(anchor_pools.begin(), anchor_pools.end(),
                  static_cast<size_t>(m->home_pool)) != anchor_pools.end();
    double size_norm =
        static_cast<double>(std::max<size_t>(m->profile_size, 1)) / 30.0;
    if (positive) {
      // Popular ingredients: anchor-pool members with large profiles →
      // frequency-weighted sampling already yields high flavor overlap.
      if (in_anchor) score *= 2.2;
      score *= std::sqrt(size_norm);
    } else {
      // Popular ingredients: spread across pools with small profiles →
      // frequency-weighted sampling yields low overlap.
      if (in_anchor) score *= 1.1;
      score *= std::sqrt(1.0 / size_norm);
    }
    score *= std::exp(0.45 * rng.NextGaussian());  // idiosyncratic noise
    scored.push_back({m, score});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<const IngredientMeta*> ranked;
  ranked.reserve(scored.size());
  for (const Scored& s : scored) ranked.push_back(s.meta);
  return ranked;
}

size_t SampleRecipeSize(const WorldSpec& spec, culinary::Rng& rng) {
  double v =
      rng.NextLogNormal(spec.recipe_size_log_mean, spec.recipe_size_log_sigma);
  auto size = static_cast<size_t>(std::llround(v));
  return std::clamp(size, spec.recipe_size_min, spec.recipe_size_max);
}

}  // namespace

culinary::Result<std::vector<recipe::Recipe>> GenerateRegionRecipes(
    const WorldSpec& spec, const RegionSpec& region_spec,
    const FlavorUniverse& universe, culinary::Rng& rng) {
  if (universe.registry == nullptr) {
    return culinary::Status::InvalidArgument("universe has no registry");
  }
  if (universe.meta.size() < spec.recipe_size_max) {
    return culinary::Status::FailedPrecondition(
        "flavor universe too small for recipe generation");
  }

  // Anchor pools for this region.
  std::vector<size_t> anchor_pools =
      rng.SampleWithoutReplacement(universe.num_pools,
                                   std::min(kAnchorPools, universe.num_pools));

  std::vector<const IngredientMeta*> selected =
      SelectRegionIngredients(region_spec, universe, anchor_pools, rng);
  if (selected.size() < spec.recipe_size_max) {
    return culinary::Status::FailedPrecondition(
        "region ingredient subset smaller than the maximum recipe size");
  }
  std::vector<const IngredientMeta*> ranked =
      AssignPopularityRanks(region_spec, std::move(selected), anchor_pools, rng);

  // Popularity sampler over ranks (Fig 3b shape).
  culinary::ZipfSampler popularity(ranked.size(), spec.popularity_exponent,
                                   spec.popularity_shift);
  if (!popularity.valid()) {
    return culinary::Status::Internal("popularity sampler failed");
  }

  // O(1) overlap lookups during assembly.
  std::vector<IngredientId> subset_ids;
  subset_ids.reserve(ranked.size());
  for (const IngredientMeta* m : ranked) subset_ids.push_back(m->id);
  analysis::PairingCache cache(*universe.registry, subset_ids);

  const double beta = kBiasScale * region_spec.pairing_bias;
  std::vector<recipe::Recipe> recipes;
  recipes.reserve(region_spec.num_recipes);

  for (size_t r = 0; r < region_spec.num_recipes; ++r) {
    const size_t size = std::min(SampleRecipeSize(spec, rng), ranked.size());
    std::vector<int> chosen;  // dense indices == ranks
    chosen.reserve(size);
    chosen.push_back(static_cast<int>(popularity.Sample(rng)) - 1);

    while (chosen.size() < size) {
      // Draw distinct candidates by popularity.
      std::vector<int> candidates;
      size_t attempts = 0;
      while (candidates.size() < spec.assembly_candidates &&
             attempts < spec.assembly_candidates * 20) {
        ++attempts;
        int c = static_cast<int>(popularity.Sample(rng)) - 1;
        if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) continue;
        if (std::find(candidates.begin(), candidates.end(), c) !=
            candidates.end()) {
          continue;
        }
        candidates.push_back(c);
      }
      if (candidates.empty()) break;

      // Mean shared-compound count of each candidate with the partial
      // recipe; softmax with inverse temperature beta.
      std::vector<double> weights(candidates.size(), 0.0);
      double max_logit = -1e300;
      for (size_t i = 0; i < candidates.size(); ++i) {
        double overlap = 0.0;
        for (int x : chosen) {
          overlap += cache.SharedByDense(static_cast<size_t>(candidates[i]),
                                         static_cast<size_t>(x));
        }
        overlap /= static_cast<double>(chosen.size());
        // Saturating transform keeps one huge profile from dominating.
        double logit = beta * (overlap / (1.0 + 0.05 * overlap));
        weights[i] = logit;
        max_logit = std::max(max_logit, logit);
      }
      double total = 0.0;
      for (double& w : weights) {
        w = std::exp(w - max_logit);
        total += w;
      }
      double x = rng.NextDouble() * total;
      size_t pick = 0;
      for (size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x <= 0) {
          pick = i;
          break;
        }
      }
      chosen.push_back(candidates[pick]);
    }

    recipe::Recipe out;
    out.region = region_spec.region;
    out.name = std::string(recipe::RegionCode(region_spec.region)) + "-" +
               std::to_string(r);
    out.ingredients.reserve(chosen.size());
    for (int rank : chosen) {
      out.ingredients.push_back(ranked[static_cast<size_t>(rank)]->id);
    }
    recipe::CanonicalizeIngredients(out.ingredients);
    recipes.push_back(std::move(out));
  }
  return recipes;
}

}  // namespace culinary::datagen
