#ifndef CULINARYLAB_DATAGEN_WORLD_H_
#define CULINARYLAB_DATAGEN_WORLD_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "datagen/cuisine_gen.h"
#include "datagen/registry_gen.h"
#include "datagen/spec.h"
#include "recipe/database.h"

namespace culinary::datagen {

/// A complete synthetic world: the flavor universe (registry + generation
/// metadata) and the recipe database built over it. Movable; the database
/// keeps a stable pointer into the heap-allocated registry.
struct SyntheticWorld {
  FlavorUniverse universe;
  std::unique_ptr<recipe::RecipeDatabase> database;

  const flavor::FlavorRegistry& registry() const { return *universe.registry; }
  const recipe::RecipeDatabase& db() const { return *database; }
};

/// Generates the full synthetic world for `spec`: the flavor universe, then
/// every region's recipes (regions are generated from independent forked
/// RNG streams so changing one region's count does not reshuffle others).
culinary::Result<SyntheticWorld> GenerateWorld(const WorldSpec& spec);

/// Convenience: the calibrated paper-scale world (45,565 recipes over 22
/// regions) with the default seed.
culinary::Result<SyntheticWorld> GenerateDefaultWorld();

/// Convenience: the miniature test world.
culinary::Result<SyntheticWorld> GenerateSmallWorld();

/// Exports the world's recipe CSV (see RecipeDatabase::SaveCsv) and an
/// ingredient CSV (name, category, kind, profile_size) next to it:
/// `<prefix>_recipes.csv` and `<prefix>_ingredients.csv`.
culinary::Status ExportWorldCsv(const SyntheticWorld& world,
                                const std::string& prefix);

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_WORLD_H_
