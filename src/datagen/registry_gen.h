#ifndef CULINARYLAB_DATAGEN_REGISTRY_GEN_H_
#define CULINARYLAB_DATAGEN_REGISTRY_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "datagen/spec.h"
#include "flavor/registry.h"

namespace culinary::datagen {

/// Generation-time metadata about one ingredient — what the generator knew
/// when it built the profile. Consumed by the cuisine generator to realize
/// per-region pairing biases; not part of the public analysis surface.
struct IngredientMeta {
  flavor::IngredientId id = flavor::kInvalidIngredient;
  /// Index of the ingredient's home flavor pool, or -1 (profile-less
  /// additives).
  int home_pool = -1;
  /// Profile size (0 for profile-less additives).
  size_t profile_size = 0;
  flavor::Category category = flavor::Category::kVegetable;
};

/// A generated flavor universe: the registry plus generation metadata.
///
/// The registry is held by unique_ptr so the universe can be moved while
/// `RecipeDatabase` and `PairingCache` hold stable pointers into it.
struct FlavorUniverse {
  std::unique_ptr<flavor::FlavorRegistry> registry;
  std::vector<IngredientMeta> meta;  ///< live ingredients only
  size_t num_pools = 0;

  /// Metadata for `id`, or nullptr.
  const IngredientMeta* MetaFor(flavor::IngredientId id) const;
};

/// Builds the synthetic FlavorDB-equivalent universe following the paper's
/// curation story (§III.B):
///
///   1. generate `num_raw_flavordb_ingredients` basic ingredients over
///      pool-structured molecule blocks (plus a curated seed of ~130 real
///      names with synonyms);
///   2. remove `num_noisy_removed` "generic and noisy" entities;
///   3. add the specific ingredients, the Ahn-et-al. extras, and the
///      additives (the last `num_additives_without_profile` of which get
///      empty flavor profiles);
///   4. create `num_compound_ingredients` compound ingredients pooling
///      their constituents' molecules.
///
/// Deterministic in `spec.seed`.
culinary::Result<FlavorUniverse> GenerateFlavorUniverse(const WorldSpec& spec);

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_REGISTRY_GEN_H_
