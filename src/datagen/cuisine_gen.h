#ifndef CULINARYLAB_DATAGEN_CUISINE_GEN_H_
#define CULINARYLAB_DATAGEN_CUISINE_GEN_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "datagen/registry_gen.h"
#include "datagen/spec.h"
#include "recipe/recipe.h"

namespace culinary::datagen {

/// Generates the recipes of one region.
///
/// The generator realizes the paper's observed regularities:
///
///  * **ingredient subset** — `num_ingredients` entities, a fraction of
///    which come from the region's anchor flavor pools;
///  * **popularity** — Zipf–Mandelbrot ranks (Fig 3b); rank assignment is
///    biased by the region's category preferences (Fig 2) and, for
///    positive-pairing regions, toward large-profile anchor-pool
///    ingredients (this is what lets the Ingredient Frequency null model
///    reproduce the pairing pattern, Fig 4);
///  * **recipe sizes** — rounded lognormal clipped to [min,max], mean ≈ 9
///    (Fig 3a);
///  * **pairing bias** — recipes are assembled ingredient-by-ingredient
///    from popularity-sampled candidates, picking the candidate whose
///    flavor overlap with the partial recipe is softmax-favoured with
///    inverse temperature ∝ `pairing_bias` (positive → uniform blends,
///    negative → contrasting blends).
///
/// Deterministic in `rng`'s state at entry.
culinary::Result<std::vector<recipe::Recipe>> GenerateRegionRecipes(
    const WorldSpec& spec, const RegionSpec& region_spec,
    const FlavorUniverse& universe, culinary::Rng& rng);

}  // namespace culinary::datagen

#endif  // CULINARYLAB_DATAGEN_CUISINE_GEN_H_
