#include "datagen/world.h"

#include "dataframe/csv.h"
#include "dataframe/table.h"
#include "obs/obs.h"

namespace culinary::datagen {

culinary::Result<SyntheticWorld> GenerateWorld(const WorldSpec& spec) {
  CULINARY_OBS_SPAN(gen_span, "datagen.generate_world", "datagen");
  SyntheticWorld world;
  CULINARY_ASSIGN_OR_RETURN(world.universe, GenerateFlavorUniverse(spec));
  world.database =
      std::make_unique<recipe::RecipeDatabase>(world.universe.registry.get());

  culinary::Rng master(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  for (const RegionSpec& region_spec : spec.regions) {
    // Independent stream per region keyed by region id, not by draw order.
    culinary::Rng region_rng(master.NextUint64() ^
                             static_cast<uint64_t>(region_spec.region));
    CULINARY_ASSIGN_OR_RETURN(
        std::vector<recipe::Recipe> recipes,
        GenerateRegionRecipes(spec, region_spec, world.universe, region_rng));
    CULINARY_OBS_COUNT("datagen.recipes_generated", recipes.size());
    CULINARY_OBS_COUNT("datagen.regions_generated", 1);
    for (recipe::Recipe& r : recipes) {
      CULINARY_RETURN_IF_ERROR(
          world.database
              ->AddRecipe(std::move(r.name), r.region, std::move(r.ingredients))
              .status());
    }
  }
  return world;
}

culinary::Result<SyntheticWorld> GenerateDefaultWorld() {
  return GenerateWorld(WorldSpec::Default());
}

culinary::Result<SyntheticWorld> GenerateSmallWorld() {
  return GenerateWorld(WorldSpec::Small());
}

culinary::Status ExportWorldCsv(const SyntheticWorld& world,
                                const std::string& prefix) {
  CULINARY_RETURN_IF_ERROR(world.db().SaveCsv(prefix + "_recipes.csv"));

  df::Schema schema({{"name", df::DataType::kString},
                     {"category", df::DataType::kString},
                     {"kind", df::DataType::kString},
                     {"profile_size", df::DataType::kInt64}});
  CULINARY_ASSIGN_OR_RETURN(df::Table table, df::Table::Make(schema));
  for (flavor::IngredientId id : world.registry().LiveIngredients()) {
    const flavor::Ingredient* ing = world.registry().Find(id);
    std::string kind;
    switch (ing->kind) {
      case flavor::IngredientKind::kBasic:
        kind = "basic";
        break;
      case flavor::IngredientKind::kCompound:
        kind = "compound";
        break;
      case flavor::IngredientKind::kBundle:
        kind = "bundle";
        break;
    }
    CULINARY_RETURN_IF_ERROR(table.AppendRow(
        {df::Value::Str(ing->name),
         df::Value::Str(std::string(flavor::CategoryToString(ing->category))),
         df::Value::Str(kind),
         df::Value::Int(static_cast<int64_t>(ing->profile.size()))}));
  }
  return df::WriteCsvFile(table, prefix + "_ingredients.csv");
}

}  // namespace culinary::datagen
