#include "evolution/copy_mutate.h"

#include <algorithm>
#include <cmath>

#include "analysis/pairing.h"

namespace culinary::evolution {

namespace {

/// Mean shared-compound count between `candidate` and the other members of
/// `recipe` (dense indices into `cache`), skipping `skip_slot`.
double MeanOverlap(const analysis::PairingCache& cache,
                   const std::vector<int>& recipe, int candidate,
                   size_t skip_slot) {
  double total = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < recipe.size(); ++i) {
    if (i == skip_slot) continue;
    total += cache.SharedByDense(static_cast<size_t>(candidate),
                                 static_cast<size_t>(recipe[i]));
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace

culinary::Result<EvolutionResult> Evolve(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& pool,
    const EvolutionConfig& config, recipe::Region region) {
  if (config.recipe_size < 2) {
    return culinary::Status::InvalidArgument("recipe_size must be >= 2");
  }
  if (pool.size() <= config.recipe_size) {
    return culinary::Status::InvalidArgument(
        "ingredient pool must exceed the recipe size");
  }
  if (config.initial_recipes == 0 ||
      config.target_recipes < config.initial_recipes) {
    return culinary::Status::InvalidArgument(
        "need initial_recipes >= 1 and target_recipes >= initial_recipes");
  }
  for (flavor::IngredientId id : pool) {
    if (registry.Find(id) == nullptr) {
      return culinary::Status::NotFound("pool ingredient id " +
                                        std::to_string(id) + " unknown");
    }
  }

  culinary::Rng rng(config.seed);
  analysis::PairingCache cache(registry, pool);

  EvolutionResult result;
  // Intrinsic fitness ~ Uniform(0,1), fixed for the whole trajectory.
  result.fitness.resize(pool.size());
  for (double& f : result.fitness) f = rng.NextDouble();

  // Recipes stored as dense pool indices during evolution.
  std::vector<std::vector<int>> genomes;
  genomes.reserve(config.target_recipes);
  for (size_t r = 0; r < config.initial_recipes; ++r) {
    std::vector<int> genome;
    for (size_t idx :
         rng.SampleWithoutReplacement(pool.size(), config.recipe_size)) {
      genome.push_back(static_cast<int>(idx));
    }
    genomes.push_back(std::move(genome));
  }

  auto contains = [](const std::vector<int>& genome, int x) {
    return std::find(genome.begin(), genome.end(), x) != genome.end();
  };

  while (genomes.size() < config.target_recipes) {
    // Copy a random existing recipe.
    std::vector<int> child =
        genomes[static_cast<size_t>(rng.NextBounded(genomes.size()))];
    ++result.copies;

    for (size_t m = 0; m < config.mutations_per_copy; ++m) {
      // Mutate the weakest slot (Kinouchi-style selective pressure). The
      // slot score uses the same combined objective as acceptance so a
      // flavor-biased model actively purges flavor-incompatible members.
      auto slot_score = [&](size_t slot) {
        double s = result.fitness[static_cast<size_t>(child[slot])];
        if (config.flavor_bias != 0.0) {
          double overlap = MeanOverlap(cache, child, child[slot], slot);
          s += config.flavor_bias * 0.1 * (overlap / (1.0 + 0.05 * overlap));
        }
        return s;
      };
      size_t victim = 0;
      double victim_score = slot_score(0);
      for (size_t i = 1; i < child.size(); ++i) {
        double s = slot_score(i);
        if (s < victim_score) {
          victim = i;
          victim_score = s;
        }
      }

      // Candidate: innovation (uniform from pool) or imitation (from a
      // random recipe of the current cuisine).
      int candidate;
      if (rng.NextBernoulli(config.innovation_rate) || genomes.empty()) {
        candidate = static_cast<int>(rng.NextBounded(pool.size()));
      } else {
        const std::vector<int>& donor =
            genomes[static_cast<size_t>(rng.NextBounded(genomes.size()))];
        candidate = donor[static_cast<size_t>(rng.NextBounded(donor.size()))];
      }
      if (contains(child, candidate)) continue;

      // Acceptance: candidate must beat the victim on intrinsic fitness
      // plus the flavor-affinity term (victim_score already includes it).
      double candidate_score =
          result.fitness[static_cast<size_t>(candidate)];
      if (config.flavor_bias != 0.0) {
        double candidate_overlap = MeanOverlap(cache, child, candidate, victim);
        candidate_score += config.flavor_bias * 0.1 *
                           (candidate_overlap / (1.0 + 0.05 * candidate_overlap));
      }
      if (candidate_score > victim_score) {
        child[victim] = candidate;
        ++result.accepted_mutations;
      }
    }
    genomes.push_back(std::move(child));
  }

  // Materialize as recipes.
  result.recipes.reserve(genomes.size());
  for (size_t g = 0; g < genomes.size(); ++g) {
    recipe::Recipe r;
    r.id = static_cast<recipe::RecipeId>(g);
    r.region = region;
    r.name = "evolved-" + std::to_string(g);
    for (int idx : genomes[g]) {
      r.ingredients.push_back(pool[static_cast<size_t>(idx)]);
    }
    recipe::CanonicalizeIngredients(r.ingredients);
    result.recipes.push_back(std::move(r));
  }
  return result;
}

culinary::Result<recipe::Cuisine> EvolveCuisine(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& pool,
    const EvolutionConfig& config, recipe::Region region) {
  CULINARY_ASSIGN_OR_RETURN(EvolutionResult result,
                            Evolve(registry, pool, config, region));
  return recipe::Cuisine(region, std::move(result.recipes));
}

}  // namespace culinary::evolution
