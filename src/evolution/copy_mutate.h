#ifndef CULINARYLAB_EVOLUTION_COPY_MUTATE_H_
#define CULINARYLAB_EVOLUTION_COPY_MUTATE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"
#include "recipe/recipe.h"

namespace culinary::evolution {

/// The copy–mutate model of culinary evolution (Jain & Bagler, Physica A
/// 2018 — reference [10] of the reproduced paper; lineage: Kinouchi et
/// al.'s non-equilibrium culinary evolution model).
///
/// The paper's conclusions invoke this model: "a simple copy-mutate model
/// has been shown to explain such patterns". A cuisine evolves by
/// repeatedly *copying* an existing recipe and *mutating* some of its
/// ingredients. Each ingredient carries an intrinsic fitness; mutations
/// replace a low-fitness ingredient with a candidate drawn from the pool,
/// accepted when fitter. An optional flavor-affinity term biases accepted
/// candidates toward (or away from) the flavor profile of the rest of the
/// recipe, which is what lets the model reproduce *both* uniform and
/// contrasting food-pairing regimes.
struct EvolutionConfig {
  /// Number of founder recipes, assembled uniformly from the pool.
  size_t initial_recipes = 8;
  /// Target cuisine size; evolution stops when reached.
  size_t target_recipes = 500;
  /// Ingredients per recipe (fixed, as in the Kinouchi-family models).
  size_t recipe_size = 8;
  /// Number of ingredient slots mutated per copied recipe.
  size_t mutations_per_copy = 2;
  /// Probability that a mutation draws a brand-new random candidate
  /// ("innovation") rather than an ingredient copied from another recipe
  /// in the current cuisine ("imitation").
  double innovation_rate = 0.4;
  /// Flavor-affinity inverse temperature: > 0 favours candidates sharing
  /// compounds with the recipe (uniform pairing), < 0 favours contrasting
  /// candidates, 0 reduces to the pure fitness model.
  double flavor_bias = 0.0;
  /// PRNG seed.
  uint64_t seed = 0xFEA57;  // "feast"
};

/// One evolved cuisine plus the model's internal state, for inspection.
struct EvolutionResult {
  std::vector<recipe::Recipe> recipes;
  /// Intrinsic fitness assigned to each pool ingredient (parallel to the
  /// `pool` argument of Evolve).
  std::vector<double> fitness;
  /// Number of copy events performed.
  size_t copies = 0;
  /// Number of accepted mutations.
  size_t accepted_mutations = 0;
};

/// Evolves a cuisine over `pool` (ingredient ids resolvable through
/// `registry`). Fails when the pool is smaller than `recipe_size`, the
/// config is degenerate (zero sizes), or ids are unknown.
///
/// Determinism: the full trajectory is a function of `config.seed`.
culinary::Result<EvolutionResult> Evolve(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& pool,
    const EvolutionConfig& config, recipe::Region region);

/// Convenience: wraps the evolved recipes in a `Cuisine`.
culinary::Result<recipe::Cuisine> EvolveCuisine(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& pool,
    const EvolutionConfig& config, recipe::Region region);

}  // namespace culinary::evolution

#endif  // CULINARYLAB_EVOLUTION_COPY_MUTATE_H_
