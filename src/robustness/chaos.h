#ifndef CULINARYLAB_ROBUSTNESS_CHAOS_H_
#define CULINARYLAB_ROBUSTNESS_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace culinary::robustness {

/// Deterministic corruption schedule for serialized corpora.
///
/// `CorruptCsvText` damages a fraction of data lines with the mutation mix
/// real scraped corpora exhibit — truncation, unterminated quotes, bit
/// flips, duplicated records, oversized fields, ragged rows. The schedule
/// is a pure function of (input, options.seed), so a soak failure replays
/// exactly.
struct ChaosOptions {
  /// Fraction of data lines corrupted (Bernoulli per line).
  double corruption_rate = 0.05;
  uint64_t seed = 20180416;
  /// Keep the header line intact (a destroyed header is unrecoverable and
  /// belongs to strict-mode tests only).
  bool preserve_header = true;

  // Mutation mix; disabled kinds are skipped when drawing.
  bool enable_truncation = true;
  bool enable_unterminated_quote = true;
  bool enable_bit_flips = true;
  bool enable_duplicate_lines = true;
  bool enable_oversized_fields = true;
  bool enable_ragged_rows = true;

  /// Payload size of an oversized-field mutation.
  size_t oversized_field_bytes = 4096;
};

/// Per-kind tallies of applied mutations.
struct ChaosStats {
  size_t lines_total = 0;
  size_t lines_corrupted = 0;
  size_t truncations = 0;
  size_t unterminated_quotes = 0;
  size_t bit_flips = 0;
  size_t duplicated_lines = 0;
  size_t oversized_fields = 0;
  size_t ragged_rows = 0;

  /// One-line roll-up for logs.
  std::string Summary() const;
};

/// Returns a corrupted copy of `text` (line-oriented CSV). Deterministic in
/// (text, options.seed). `stats` (optional) receives the applied tallies.
std::string CorruptCsvText(std::string_view text, const ChaosOptions& options,
                           ChaosStats* stats = nullptr);

/// Reads `in_path`, corrupts it, writes `out_path`. IOError on filesystem
/// failure.
culinary::Status CorruptCsvFile(const std::string& in_path,
                                const std::string& out_path,
                                const ChaosOptions& options,
                                ChaosStats* stats = nullptr);

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_CHAOS_H_
