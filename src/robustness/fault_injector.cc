#include "robustness/fault_injector.h"

#include <chrono>
#include <thread>
#include <utility>

namespace culinary::robustness {

FaultInjector::Plan FaultInjector::Plan::Always(StatusCode code) {
  Plan plan;
  plan.probability = 1.0;
  plan.code = code;
  return plan;
}

FaultInjector::Plan FaultInjector::Plan::Nth(int n, StatusCode code) {
  Plan plan;
  plan.fail_nth = n;
  plan.code = code;
  return plan;
}

FaultInjector::Plan FaultInjector::Plan::WithProbability(double p,
                                                         uint64_t seed,
                                                         StatusCode code) {
  Plan plan;
  plan.probability = p;
  plan.seed = seed;
  plan.code = code;
  return plan;
}

FaultInjector::Plan FaultInjector::Plan::DelayMs(double ms) {
  Plan plan;
  plan.probability = 1.0;
  plan.delay_ms = ms;
  plan.code = StatusCode::kOk;
  plan.message = "injected delay";
  return plan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::string_view site, Plan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  ArmedSite armed;
  armed.rng = culinary::Rng(plan.seed);
  armed.plan = std::move(plan);
  sites_.insert_or_assign(std::string(site), std::move(armed));
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) sites_.erase(it);
  if (sites_.empty()) any_armed_.store(false, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  any_armed_.store(false, std::memory_order_release);
}

culinary::Status FaultInjector::Check(std::string_view site) {
  if (!any_armed_.load(std::memory_order_acquire)) {
    return culinary::Status::OK();
  }
  double delay_ms = 0.0;
  culinary::Status verdict;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return culinary::Status::OK();
    ArmedSite& armed = it->second;
    ++armed.calls;
    const Plan& plan = armed.plan;
    if (plan.max_failures >= 0 &&
        armed.failures >= static_cast<size_t>(plan.max_failures)) {
      return culinary::Status::OK();
    }
    bool fire = false;
    if (plan.fail_nth > 0 &&
        armed.calls == static_cast<size_t>(plan.fail_nth)) {
      fire = true;
    }
    if (!fire && plan.probability > 0.0 &&
        armed.rng.NextBernoulli(plan.probability)) {
      fire = true;
    }
    if (!fire) return culinary::Status::OK();
    ++armed.failures;
    delay_ms = plan.delay_ms;
    if (plan.code != StatusCode::kOk) {
      verdict = culinary::Status(
          plan.code, plan.message + " (site: " + std::string(site) + ")");
    }
  }
  // Latency injection happens after the lock is released: a hung site must
  // not stall unrelated sites (or Arm/Disarm from the test harness).
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return verdict;
}

size_t FaultInjector::CallCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

size_t FaultInjector::FailureCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.failures;
}

}  // namespace culinary::robustness
