#ifndef CULINARYLAB_ROBUSTNESS_FAULT_INJECTOR_H_
#define CULINARYLAB_ROBUSTNESS_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace culinary::robustness {

/// Well-known injection-point names. Production code passes these to
/// `FaultInjector::Check` at the top of every fallible IO step; tests arm
/// faults against the same constants.
inline constexpr std::string_view kFaultCsvOpen = "csv.open";
inline constexpr std::string_view kFaultCsvRead = "csv.read";
inline constexpr std::string_view kFaultCsvOpenWrite = "csv.open_write";
inline constexpr std::string_view kFaultCsvWrite = "csv.write";
inline constexpr std::string_view kFaultCsvRename = "csv.rename";
inline constexpr std::string_view kFaultThreadPoolTask = "thread_pool.task";
/// Checked at the top of every analysis-ensemble block (null models); arm a
/// delay here to simulate a slow/hung sweep, or an error to kill it
/// mid-ensemble and exercise checkpoint/resume.
inline constexpr std::string_view kFaultAnalysisBlock = "analysis.block";
inline constexpr std::string_view kFaultCheckpointOpen = "checkpoint.open";
inline constexpr std::string_view kFaultCheckpointAppend = "checkpoint.append";
inline constexpr std::string_view kFaultCheckpointRead = "checkpoint.read";
inline constexpr std::string_view kFaultCheckpointPublish =
    "checkpoint.publish";
inline constexpr std::string_view kFaultSnapshotWrite = "snapshot.write";
inline constexpr std::string_view kFaultSnapshotRename = "snapshot.rename";
inline constexpr std::string_view kFaultSnapshotMmap = "snapshot.mmap";
inline constexpr std::string_view kFaultSnapshotVerify = "snapshot.verify";
/// Checked at the top of `ReloadManager::Reload`, before the breaker and the
/// retry loop — an error here simulates a reload whose world source is
/// unreachable (as opposed to `snapshot.*` faults, which fail the load
/// itself mid-flight).
inline constexpr std::string_view kFaultServingReload = "serving.reload";
/// Checked inside `QueryEngine::Submit` before any admission decision; arm a
/// delay to slow the admission path or an error to bounce requests at the
/// door regardless of queue state.
inline constexpr std::string_view kFaultServingAdmit = "serving.admit";
/// Checked at the top of `QueryEngine::Execute`; a `DelayMs` plan here makes
/// workers look stalled to the watchdog without touching query code.
inline constexpr std::string_view kFaultServingExecute = "serving.execute";

/// A deterministic, seedable fault-injection registry.
///
/// Every fallible IO / parse step in the ingestion layer is bracketed by a
/// named *injection point* (`Check("csv.read")`). By default nothing is
/// armed and `Check` is a single relaxed atomic load. Tests (and the chaos
/// tooling) arm a `Plan` against a site to make that step fail on demand:
///
/// ```cpp
/// FaultInjector::Plan plan;
/// plan.fail_nth = 2;                 // the 2nd read fails...
/// ScopedFault fault(kFaultCsvRead, plan);  // ...until end of scope
/// ```
///
/// Firing is fully deterministic: fail-nth counts calls per site, and
/// fail-with-probability draws from a per-plan `Rng` stream seeded by
/// `Plan::seed`, so a failing schedule replays exactly. Thread-safe.
class FaultInjector {
 public:
  /// When and how a site fails. A plan fires when either trigger matches:
  ///   * `fail_nth`: the nth call (1-based) to the site fails;
  ///   * `probability`: each call fails independently with probability p
  ///     (drawn from the plan's own deterministic stream).
  /// `max_failures` bounds total firings (-1 = unbounded).
  ///
  /// A firing first sleeps `delay_ms` (latency / hang injection — the sleep
  /// happens outside the injector lock, so concurrent sites keep working),
  /// then returns the plan's status. With `code == kOk` the firing is pure
  /// latency: the call is delayed but succeeds, which is how a watchdog
  /// test makes a sweep slow enough to cancel or deadline-kill mid-flight.
  struct Plan {
    int fail_nth = -1;
    double probability = 0.0;
    int max_failures = -1;
    double delay_ms = 0.0;
    StatusCode code = StatusCode::kIOError;
    std::string message = "injected fault";
    uint64_t seed = 0x5eed5eedULL;

    /// A plan that fails every call.
    static Plan Always(StatusCode code = StatusCode::kIOError);
    /// A plan that fails exactly the nth call (1-based).
    static Plan Nth(int n, StatusCode code = StatusCode::kIOError);
    /// A plan that fails each call with probability `p` (stream `seed`).
    static Plan WithProbability(double p, uint64_t seed = 0x5eed5eedULL,
                                StatusCode code = StatusCode::kIOError);
    /// A plan that delays every call by `ms` milliseconds and then lets it
    /// succeed (latency injection; a large `ms` simulates a hang).
    static Plan DelayMs(double ms);
  };

  /// The process-wide injector used by library code.
  static FaultInjector& Global();

  /// Arms (or replaces) the plan for `site`; call counters restart at zero.
  void Arm(std::string_view site, Plan plan);

  /// Disarms `site`; its counters are forgotten.
  void Disarm(std::string_view site);

  /// Disarms every site.
  void Reset();

  /// OK unless an armed plan for `site` fires, in which case the plan's
  /// error status (message suffixed with the site name) is returned. A
  /// single relaxed atomic load when nothing is armed anywhere.
  culinary::Status Check(std::string_view site);

  /// Calls `Check(site)` seen since the site was armed (0 if not armed).
  size_t CallCount(std::string_view site) const;

  /// Firings at `site` since it was armed (errors and pure delays alike).
  size_t FailureCount(std::string_view site) const;

 private:
  struct ArmedSite {
    Plan plan;
    culinary::Rng rng{0};
    size_t calls = 0;
    size_t failures = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, ArmedSite, std::less<>> sites_;
  std::atomic<bool> any_armed_{false};
};

/// RAII guard: arms `site` on the global injector for the enclosing scope
/// and disarms it on destruction. The standard way tests inject faults.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, FaultInjector::Plan plan)
      : site_(site) {
    FaultInjector::Global().Arm(site_, std::move(plan));
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_FAULT_INJECTOR_H_
