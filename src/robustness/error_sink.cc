#include "robustness/error_sink.h"

#include <sstream>

namespace culinary::robustness {

std::string_view ErrorPolicyToString(ErrorPolicy policy) {
  switch (policy) {
    case ErrorPolicy::kStrict:
      return "strict";
    case ErrorPolicy::kSkipAndReport:
      return "skip-and-report";
    case ErrorPolicy::kBestEffort:
      return "best-effort";
  }
  return "strict";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  if (line > 0) {
    os << "line " << line;
    if (column > 0) os << ", col " << column;
    os << ": ";
  }
  os << StatusCodeToString(code) << ": " << message;
  if (!snippet.empty()) os << " [" << snippet << "]";
  return os.str();
}

void ErrorSink::Report(Diagnostic diagnostic) {
  if (diagnostic.snippet.size() > kMaxSnippetBytes) {
    diagnostic.snippet.resize(kMaxSnippetBytes);
    diagnostic.snippet += "...";
  }
  ++total_;
  ++counts_by_code_[diagnostic.code];
  if (diagnostics_.size() < capacity_) {
    diagnostics_.push_back(std::move(diagnostic));
  }
}

void ErrorSink::Report(size_t line, size_t column, StatusCode code,
                       std::string message, std::string snippet) {
  Diagnostic d;
  d.line = line;
  d.column = column;
  d.code = code;
  d.message = std::move(message);
  d.snippet = std::move(snippet);
  Report(std::move(d));
}

void ErrorSink::Clear() {
  total_ = 0;
  diagnostics_.clear();
  counts_by_code_.clear();
}

std::string ErrorSink::Summary() const {
  if (total_ == 0) return "no errors";
  std::ostringstream os;
  os << total_ << (total_ == 1 ? " error (" : " errors (");
  bool first = true;
  for (const auto& [code, count] : counts_by_code_) {
    if (!first) os << ", ";
    first = false;
    os << StatusCodeToString(code) << ": " << count;
  }
  os << ")";
  if (dropped() > 0) os << ", " << dropped() << " not stored";
  return os.str();
}

}  // namespace culinary::robustness
