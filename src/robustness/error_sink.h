#ifndef CULINARYLAB_ROBUSTNESS_ERROR_SINK_H_
#define CULINARYLAB_ROBUSTNESS_ERROR_SINK_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace culinary::robustness {

/// How an ingestion stage reacts to malformed input.
///
/// The paper's corpus is scraped web data; production ingestion must keep
/// going through localized damage while preserving a fail-fast mode for
/// curated data. Every CSV / registry / recipe loader accepts one of:
enum class ErrorPolicy : int {
  /// Abort on the first malformed record (seed behaviour; curated inputs).
  kStrict = 0,
  /// Quarantine malformed records, report them through an `ErrorSink`, and
  /// continue with the remaining data.
  kSkipAndReport = 1,
  /// Like `kSkipAndReport`, but additionally salvage partially-damaged
  /// records (pad/truncate ragged rows, drop dangling ids) before giving up
  /// on them.
  kBestEffort = 2,
};

/// Stable display name ("strict", "skip-and-report", "best-effort").
std::string_view ErrorPolicyToString(ErrorPolicy policy);

/// One malformed-input observation: where it was, what was wrong, and a
/// short excerpt of the offending text.
struct Diagnostic {
  /// 1-based source line; 0 when unknown / not line-oriented.
  size_t line = 0;
  /// 1-based column; 0 when the whole record is implicated.
  size_t column = 0;
  StatusCode code = StatusCode::kParseError;
  std::string message;
  /// Offending text, truncated to `kMaxSnippetBytes`.
  std::string snippet;

  /// "line L, col C: <CodeName>: message [snippet]".
  std::string ToString() const;
};

/// Bounded accumulator of per-record diagnostics.
///
/// Degraded-mode parsers report every malformed record here instead of
/// returning the first error. Storage is capped (`capacity`): beyond it only
/// counters advance, so a pathological corpus cannot balloon memory while
/// the total damage stays measurable. Not thread-safe; use one sink per
/// ingestion call.
class ErrorSink {
 public:
  static constexpr size_t kDefaultCapacity = 64;
  static constexpr size_t kMaxSnippetBytes = 48;

  explicit ErrorSink(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Records one diagnostic (stored only while under capacity; always
  /// counted). The snippet is truncated to `kMaxSnippetBytes`.
  void Report(Diagnostic diagnostic);

  /// Convenience: build and report a diagnostic in one call.
  void Report(size_t line, size_t column, StatusCode code, std::string message,
              std::string snippet = {});

  /// Total diagnostics reported, including dropped ones.
  size_t total() const { return total_; }

  /// Diagnostics counted but not stored (capacity overflow).
  size_t dropped() const { return total_ - diagnostics_.size(); }

  /// True iff nothing has been reported.
  bool empty() const { return total_ == 0; }

  /// The stored diagnostics, in report order.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// Count of diagnostics per status code (includes dropped ones).
  const std::map<StatusCode, size_t>& counts_by_code() const {
    return counts_by_code_;
  }

  /// Forgets everything; capacity is retained.
  void Clear();

  /// One-line roll-up, e.g. "7 errors (ParseError: 6, IOError: 1), 2 not
  /// stored"; "no errors" when empty.
  std::string Summary() const;

 private:
  size_t capacity_;
  size_t total_ = 0;
  std::vector<Diagnostic> diagnostics_;
  std::map<StatusCode, size_t> counts_by_code_;
};

/// Record-level accounting for one ingestion pass, surfaced to reports so
/// analyses ran on degraded data always carry their data-coverage fraction.
struct IngestStats {
  /// Data records seen (excluding the header).
  size_t records_total = 0;
  /// Records that made it into the output table / database.
  size_t records_ok = 0;
  /// Records quarantined by a non-strict policy.
  size_t records_quarantined = 0;

  /// Fraction of records kept; 1.0 for an empty input.
  double coverage() const {
    return records_total == 0
               ? 1.0
               : static_cast<double>(records_ok) /
                     static_cast<double>(records_total);
  }

  /// Merges another stage's accounting into this one.
  void Merge(const IngestStats& other) {
    records_total += other.records_total;
    records_ok += other.records_ok;
    records_quarantined += other.records_quarantined;
  }
};

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_ERROR_SINK_H_
