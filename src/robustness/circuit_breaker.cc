#include "robustness/circuit_breaker.h"

#include "obs/obs.h"

namespace culinary::robustness {

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {}

bool CircuitBreaker::AllowRequest(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms - opened_at_ms_ >=
          static_cast<int64_t>(options_.open_cooldown_ms)) {
        state_ = State::kHalfOpen;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe is already in flight; hold the line until it reports.
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    opened_at_ms_ = now_ms;
    ++trips_;
    CULINARY_OBS_COUNT("breaker.trips", 1);
  } else if (state_ == State::kOpen) {
    // A failure reported while open (e.g. a racing attempt admitted before
    // the trip) restarts the cooldown so the probe waits out a full window.
    opened_at_ms_ = now_ms;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

std::string_view CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace culinary::robustness
