#ifndef CULINARYLAB_ROBUSTNESS_CHECKPOINT_H_
#define CULINARYLAB_ROBUSTNESS_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "common/status.h"

namespace culinary::robustness {

/// Crash-safe, append-only checkpointing for block-structured sweeps.
///
/// A long sweep (the 100k-recipe null-model ensembles) is partitioned into
/// fixed blocks, each reducing to one `RunningStats` partial. As blocks
/// complete, their partials are appended — one checksummed text record per
/// block, flushed immediately — to a checkpoint file. After a crash, a
/// kill, or a deadline abort, a resumed run loads the file, keeps every
/// intact record, and recomputes only the missing blocks.
///
/// Crash-safety model (the inverse of registry IO's write-temp-then-rename:
/// that pattern makes a whole file atomic, this one makes each *record*
/// atomic): the file is only ever appended to, every record carries an
/// FNV-1a checksum of its payload, and the loader stops at the first record
/// that fails to parse or verify. A record torn by a crash mid-append is
/// therefore dropped — never half-applied — and everything before it is
/// kept. Exact resume falls out of serializing doubles as raw IEEE-754 bit
/// patterns: the restored partials are bit-identical to the saved ones.
///
/// File format (one record per line, all integers lower-case hex):
///
///   culinary-ckpt 1 <signature> <num_blocks>
///   B <block> <count> <mean_bits> <m2_bits> <min_bits> <max_bits> <crc>
///
/// `signature` pins everything that determines a block's value (seed,
/// ensemble size, block granularity, model, region, and a content digest
/// of the input data the blocks are computed from); a resumed run whose
/// signature differs must discard the file and restart clean.

/// One restored block partial.
struct CheckpointBlock {
  uint64_t block = 0;
  culinary::RunningStats stats;
};

/// Everything recovered from a checkpoint file.
struct CheckpointContents {
  uint64_t signature = 0;
  uint64_t num_blocks = 0;
  /// Intact records in file order. Duplicated block indices are possible
  /// across crash/resume generations; records are bit-exact re-derivations
  /// of the same value, so consumers may keep either.
  std::vector<CheckpointBlock> blocks;
  /// Records dropped because they were torn, corrupt, or out of range.
  size_t records_dropped = 0;
};

/// Reads and verifies `path`. `kNotFound` when the file does not exist;
/// `kParseError` when even the header is unusable (the caller should
/// restart clean); OK — possibly with `records_dropped > 0` — otherwise.
culinary::Result<CheckpointContents> LoadBlockCheckpoint(
    const std::string& path);

/// Appends verified block records to a checkpoint file. Thread-safe: block
/// partials complete on pool workers concurrently, and each append is one
/// locked write+flush.
class BlockCheckpointWriter {
 public:
  /// Starts a fresh checkpoint at `path` (truncating any previous file) and
  /// writes the header.
  static culinary::Result<BlockCheckpointWriter> Create(
      const std::string& path, uint64_t signature, uint64_t num_blocks);

  /// Opens an existing checkpoint for appending. The caller is expected to
  /// have validated the file via `LoadBlockCheckpoint` (matching signature
  /// and block count) first — and, when that load reported
  /// `records_dropped > 0`, to rewrite a fresh file (`Create` plus
  /// re-appending the restored records) instead of appending here:
  /// anything appended after a torn tail is unloadable on the next resume.
  /// As a last line of defense against an intact final record that lost
  /// only its trailing newline, opening writes a '\n' terminator when the
  /// file does not already end with one.
  static culinary::Result<BlockCheckpointWriter> OpenForAppend(
      const std::string& path, uint64_t signature, uint64_t num_blocks);

  BlockCheckpointWriter(BlockCheckpointWriter&&) noexcept = default;
  BlockCheckpointWriter& operator=(BlockCheckpointWriter&&) noexcept = default;
  BlockCheckpointWriter(const BlockCheckpointWriter&) = delete;
  BlockCheckpointWriter& operator=(const BlockCheckpointWriter&) = delete;

  /// Appends one completed block and flushes it to the OS, so the record
  /// survives a process crash immediately after the call returns.
  culinary::Status AppendBlock(uint64_t block,
                               const culinary::RunningStats& stats);

  const std::string& path() const { return path_; }

 private:
  BlockCheckpointWriter(std::string path, FILE* file);

  struct FileCloser {
    void operator()(FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::string path_;
  std::unique_ptr<FILE, FileCloser> file_;
  /// unique_ptr keeps the writer movable (Result<T> requires it).
  std::unique_ptr<std::mutex> mutex_;
};

/// Atomically publishes a complete checkpoint file: header plus one record
/// per entry of `blocks`, written via the shared `WriteFileAtomic` helper
/// (temp + fsync + rename + directory fsync). Unlike
/// `BlockCheckpointWriter::Create` — which truncates `path` in place and so
/// loses the previous generation if the process dies mid-rewrite — a crash
/// anywhere inside this call leaves the previous file intact. Use it to
/// rewrite a checkpoint whose tail was torn before reopening for append.
/// Fault sites: `checkpoint.open`, `checkpoint.append` (bytes staged),
/// `checkpoint.publish` (rename boundary).
culinary::Status WriteCheckpointFile(const std::string& path,
                                     uint64_t signature, uint64_t num_blocks,
                                     const std::vector<CheckpointBlock>& blocks);

namespace internal {
/// FNV-1a 64-bit over `payload`, the per-record checksum. Exposed so tests
/// can forge records with valid / broken checksums.
uint64_t CheckpointChecksum(std::string_view payload);
/// Renders the payload part of a block record (everything before the crc).
std::string CheckpointRecordPayload(uint64_t block,
                                    const culinary::RunningStats& stats);
}  // namespace internal

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_CHECKPOINT_H_
