#include "robustness/chaos.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/random.h"

namespace culinary::robustness {

namespace {

enum class MutationKind : int {
  kTruncate = 0,
  kUnterminatedQuote,
  kBitFlip,
  kDuplicate,
  kOversizedField,
  kRaggedRow,
};

/// Draws one enabled mutation kind; falls back to truncation when the
/// options disable everything.
MutationKind DrawKind(const ChaosOptions& options, culinary::Rng& rng) {
  std::vector<MutationKind> enabled;
  if (options.enable_truncation) enabled.push_back(MutationKind::kTruncate);
  if (options.enable_unterminated_quote) {
    enabled.push_back(MutationKind::kUnterminatedQuote);
  }
  if (options.enable_bit_flips) enabled.push_back(MutationKind::kBitFlip);
  if (options.enable_duplicate_lines) {
    enabled.push_back(MutationKind::kDuplicate);
  }
  if (options.enable_oversized_fields) {
    enabled.push_back(MutationKind::kOversizedField);
  }
  if (options.enable_ragged_rows) enabled.push_back(MutationKind::kRaggedRow);
  if (enabled.empty()) return MutationKind::kTruncate;
  return enabled[static_cast<size_t>(rng.NextBounded(enabled.size()))];
}

/// Applies one mutation to `line` (no trailing newline) in place; may
/// append a duplicate via `extra_line`.
void Mutate(MutationKind kind, std::string& line, std::string* extra_line,
            const ChaosOptions& options, culinary::Rng& rng,
            ChaosStats& stats) {
  switch (kind) {
    case MutationKind::kTruncate: {
      if (!line.empty()) {
        line.resize(static_cast<size_t>(rng.NextBounded(line.size())));
      }
      ++stats.truncations;
      break;
    }
    case MutationKind::kUnterminatedQuote: {
      size_t pos =
          line.empty() ? 0 : static_cast<size_t>(rng.NextBounded(line.size()));
      line.insert(pos, 1, '"');
      ++stats.unterminated_quotes;
      break;
    }
    case MutationKind::kBitFlip: {
      if (!line.empty()) {
        size_t pos = static_cast<size_t>(rng.NextBounded(line.size()));
        int bit = static_cast<int>(rng.NextBounded(8));
        char flipped = static_cast<char>(line[pos] ^ (1 << bit));
        // Keep the mutation inside the line: a flip that fabricates a
        // record separator would silently change line accounting.
        if (flipped != '\n' && flipped != '\r') line[pos] = flipped;
      }
      ++stats.bit_flips;
      break;
    }
    case MutationKind::kDuplicate: {
      if (extra_line != nullptr) *extra_line = line;
      ++stats.duplicated_lines;
      break;
    }
    case MutationKind::kOversizedField: {
      line.append(",");
      line.append(options.oversized_field_bytes, 'X');
      ++stats.oversized_fields;
      break;
    }
    case MutationKind::kRaggedRow: {
      if (rng.NextBernoulli(0.5)) {
        line.append(",chaos_extra_field");
      } else {
        size_t comma = line.rfind(',');
        if (comma != std::string::npos) {
          line.resize(comma);
        } else {
          line.append(",chaos_extra_field");
        }
      }
      ++stats.ragged_rows;
      break;
    }
  }
}

}  // namespace

std::string ChaosStats::Summary() const {
  std::ostringstream os;
  os << lines_corrupted << "/" << lines_total << " lines corrupted"
     << " (truncate: " << truncations
     << ", quote: " << unterminated_quotes << ", bitflip: " << bit_flips
     << ", dup: " << duplicated_lines << ", oversize: " << oversized_fields
     << ", ragged: " << ragged_rows << ")";
  return os.str();
}

std::string CorruptCsvText(std::string_view text, const ChaosOptions& options,
                           ChaosStats* stats) {
  ChaosStats local;
  culinary::Rng rng(options.seed);
  std::string out;
  out.reserve(text.size() + text.size() / 16);

  size_t pos = 0;
  size_t line_index = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    bool had_newline = nl != std::string_view::npos;
    std::string line(text.substr(pos, had_newline ? nl - pos : std::string_view::npos));
    pos = had_newline ? nl + 1 : text.size();

    bool is_header = options.preserve_header && line_index == 0;
    ++line_index;
    if (!is_header) ++local.lines_total;

    std::string duplicate;
    if (!is_header && !line.empty() &&
        rng.NextBernoulli(options.corruption_rate)) {
      ++local.lines_corrupted;
      Mutate(DrawKind(options, rng), line, &duplicate, options, rng, local);
    }
    out.append(line);
    if (had_newline) out.push_back('\n');
    if (!duplicate.empty()) {
      out.append(duplicate);
      out.push_back('\n');
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

culinary::Status CorruptCsvFile(const std::string& in_path,
                                const std::string& out_path,
                                const ChaosOptions& options,
                                ChaosStats* stats) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    return culinary::Status::IOError("cannot open file: " + in_path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return culinary::Status::IOError("error reading file: " + in_path);
  }
  std::string corrupted = CorruptCsvText(buf.str(), options, stats);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    return culinary::Status::IOError("cannot open file for write: " +
                                     out_path);
  }
  out << corrupted;
  out.flush();
  if (!out) {
    return culinary::Status::IOError("error writing file: " + out_path);
  }
  return culinary::Status::OK();
}

}  // namespace culinary::robustness
