#ifndef CULINARYLAB_ROBUSTNESS_CIRCUIT_BREAKER_H_
#define CULINARYLAB_ROBUSTNESS_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string_view>

namespace culinary::robustness {

/// A consecutive-failure circuit breaker with a timed half-open probe.
///
/// Guards an operation that can fail repeatedly for the same underlying
/// reason (a reload against a corrupt snapshot source): after
/// `failure_threshold` consecutive failures the breaker *opens* and
/// `AllowRequest` rejects immediately — the caller stops hammering a source
/// that is known-bad and keeps serving whatever it already has. Once
/// `open_cooldown_ms` has elapsed the breaker moves to *half-open* and lets
/// exactly one probe through: if the probe succeeds the breaker closes and
/// the failure count resets; if it fails the breaker re-opens for another
/// full cooldown.
///
/// Time is passed in by the caller (`now_ms`, any monotonic millisecond
/// clock) rather than read internally, so tests drive the open → half-open
/// transition deterministically with an injected clock. Thread-safe; all
/// transitions happen under one mutex.
class CircuitBreaker {
 public:
  enum class State {
    kClosed = 0,    // normal operation, requests pass
    kOpen = 1,      // tripped: requests rejected until the cooldown elapses
    kHalfOpen = 2,  // cooldown elapsed: one probe in flight
  };

  struct Options {
    /// Consecutive failures that trip the breaker open.
    int failure_threshold = 3;
    /// How long the breaker stays open before admitting a half-open probe.
    double open_cooldown_ms = 1000.0;
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options);

  /// True if the caller may attempt the guarded operation now. While open,
  /// returns false until `now_ms` is at least cooldown past the trip time;
  /// the first allowed call after the cooldown transitions to half-open
  /// (subsequent calls are rejected until that probe reports back via
  /// `RecordSuccess`/`RecordFailure`).
  bool AllowRequest(int64_t now_ms);

  /// Reports a successful attempt: closes the breaker (from any state) and
  /// zeroes the consecutive-failure count.
  void RecordSuccess();

  /// Reports a failed attempt at `now_ms`. In half-open, re-opens
  /// immediately; in closed, opens once the consecutive count reaches the
  /// threshold.
  void RecordFailure(int64_t now_ms);

  State state() const;
  int consecutive_failures() const;
  /// Total times the breaker has tripped open (for stats/metrics).
  uint64_t trips() const;

 private:
  const Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  uint64_t trips_ = 0;
  int64_t opened_at_ms_ = 0;
};

/// Stable lowercase name for `state` ("closed" / "open" / "half_open").
std::string_view CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_CIRCUIT_BREAKER_H_
