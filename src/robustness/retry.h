#ifndef CULINARYLAB_ROBUSTNESS_RETRY_H_
#define CULINARYLAB_ROBUSTNESS_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/cancellation.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace culinary::robustness {

/// How the backoff before each retry is randomized.
enum class JitterMode {
  /// `base * 2^(k-1)` clamped, scaled by a uniform factor in
  /// `[1 - jitter_fraction, 1 + jitter_fraction]` (the historical default).
  kUniform = 0,
  /// AWS-style decorrelated jitter: `sleep_k = min(max_backoff_ms,
  /// uniform(base_backoff_ms, 3 * sleep_{k-1}))` with `sleep_0 =
  /// base_backoff_ms`. Each retry's window depends on the previous *drawn*
  /// sleep rather than the attempt index, so a thundering herd of clients
  /// retrying the same failed reload spreads out instead of re-synchronizing
  /// on the shared exponential schedule. Still fully deterministic per
  /// `seed`.
  kDecorrelated = 1,
};

/// Budgeted exponential backoff with deterministic jitter for transient
/// failures (`Status::IsTransient()`).
///
/// In `kUniform` mode attempt k (1-based) sleeps `base_backoff_ms * 2^(k-1)`
/// before retrying, clamped to `max_backoff_ms`, then scaled by a uniform
/// jitter factor in `[1 - jitter_fraction, 1 + jitter_fraction]` drawn from a
/// deterministic stream (`seed`), so two replicas retrying the same failing
/// resource de-synchronize yet every run replays exactly. `kDecorrelated`
/// replaces the fixed exponential ladder with the previous drawn sleep (see
/// `JitterMode`).
struct RetryPolicy {
  /// Total tries, including the first (1 = no retry).
  int max_attempts = 1;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 100.0;
  /// Fractional jitter half-width in [0, 1] (kUniform mode only).
  double jitter_fraction = 0.5;
  JitterMode jitter_mode = JitterMode::kUniform;
  uint64_t seed = 0x7e747279ULL;  // "retry"

  /// Overall backoff budget in milliseconds (< 0 = unbounded). When the
  /// next backoff would push the accumulated sleep past this budget, the
  /// loop stops *before* sleeping and returns the last error annotated with
  /// the exhaustion context — a retry must never sleep past the budget its
  /// caller has left. Deterministic: measured over the jittered backoffs
  /// the policy itself computes, not the wall clock, so a failing schedule
  /// replays exactly.
  double total_budget_ms = -1.0;

  /// Optional wall-clock deadline (default infinite): once expired, no
  /// further attempt or sleep is started and the last error is returned
  /// with context. Unlike `total_budget_ms` this reads the real clock, so
  /// use it when the caller's deadline also governs the work between
  /// retries (e.g. a sweep with `--deadline-ms`).
  culinary::Deadline deadline;

  /// No retrying at all (the default for curated local data).
  static RetryPolicy None() { return RetryPolicy{}; }

  /// Three attempts with millisecond-scale backoff, suitable for tests and
  /// local filesystem flakes.
  static RetryPolicy Default() {
    RetryPolicy p;
    p.max_attempts = 3;
    return p;
  }
};

/// Accounting for one `Retry*` call, for logs and tests.
struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
};

/// Replaceable sleeper: receives the jittered backoff in milliseconds.
/// The default (`nullptr`) really sleeps; tests pass a collector instead.
using SleepFn = std::function<void(double ms)>;

/// True for status codes worth retrying (`Status::IsTransient()`: IO flakes
/// and shed/unavailable admissions). Parse errors and argument errors are
/// deterministic and never retried.
bool IsRetryable(const culinary::Status& status);

namespace internal {
/// The kUniform jittered backoff before retry number `attempt` (1-based =
/// before the second try). Exposed for tests.
double BackoffMs(const RetryPolicy& policy, int attempt, culinary::Rng& rng);
/// One step of the decorrelated-jitter sequence: draws uniformly in
/// `[base_backoff_ms, 3 * prev_ms]` and clamps to `max_backoff_ms`. Exposed
/// for tests pinning the per-seed sequence.
double DecorrelatedBackoffMs(const RetryPolicy& policy, double prev_ms,
                             culinary::Rng& rng);
/// Mode dispatcher used by the retry loops: computes the backoff before
/// retry `attempt` and threads the previous drawn sleep through `prev_ms`
/// (decorrelated mode reads and updates it; uniform mode ignores it).
double NextBackoffMs(const RetryPolicy& policy, int attempt, culinary::Rng& rng,
                     double& prev_ms);
/// Sleeps the calling thread for `ms` milliseconds.
void SleepForMs(double ms);
/// Observability hook: records one retried attempt and its backoff. Out of
/// line so this header stays independent of the obs layer.
void NoteRetry(double backoff_ms);
/// Observability hook: records one retry loop that stopped on an exhausted
/// budget/deadline rather than on attempts.
void NoteRetryBudgetExhausted();

/// True when sleeping `next_backoff_ms` more is off the table: it would
/// push `slept_so_far_ms` past the policy budget, or the policy deadline
/// has already passed.
inline bool RetryBudgetExhausted(const RetryPolicy& policy,
                                 double slept_so_far_ms,
                                 double next_backoff_ms) {
  if (policy.total_budget_ms >= 0.0 &&
      slept_so_far_ms + next_backoff_ms > policy.total_budget_ms) {
    return true;
  }
  return policy.deadline.expired();
}

/// The context prefix attached to the last error when the loop stops early.
std::string RetryBudgetContext(int attempts);
}  // namespace internal

/// Runs `fn` (returning `Status`) under `policy`: retries retryable errors
/// with backoff until success, the attempt budget, or the time budget /
/// deadline is exhausted (in which case the last error is returned with
/// exhaustion context instead of sleeping past the budget); returns the
/// last status. Non-retryable errors return immediately.
template <typename Fn>
culinary::Status RetryStatus(const RetryPolicy& policy, Fn&& fn,
                             RetryStats* stats = nullptr,
                             const SleepFn& sleep = nullptr) {
  culinary::Rng rng(policy.seed);
  int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double slept_ms = 0.0;
  double prev_ms = policy.base_backoff_ms;
  culinary::Status last;
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (stats != nullptr) stats->attempts = attempt;
    last = fn();
    if (last.ok() || !IsRetryable(last)) return last;
    if (attempt == budget) break;
    double ms = internal::NextBackoffMs(policy, attempt, rng, prev_ms);
    if (internal::RetryBudgetExhausted(policy, slept_ms, ms)) {
      internal::NoteRetryBudgetExhausted();
      return last.WithContext(internal::RetryBudgetContext(attempt));
    }
    slept_ms += ms;
    if (stats != nullptr) stats->total_backoff_ms += ms;
    internal::NoteRetry(ms);
    if (sleep) {
      sleep(ms);
    } else {
      internal::SleepForMs(ms);
    }
  }
  return last;
}

/// `RetryStatus` for `Result<T>`-returning callables.
template <typename Fn>
auto RetryResult(const RetryPolicy& policy, Fn&& fn,
                 RetryStats* stats = nullptr, const SleepFn& sleep = nullptr)
    -> decltype(fn()) {
  using ResultT = decltype(fn());
  culinary::Rng rng(policy.seed);
  int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double slept_ms = 0.0;
  double prev_ms = policy.base_backoff_ms;
  ResultT last = fn();
  if (stats != nullptr) stats->attempts = 1;
  for (int attempt = 2;
       attempt <= budget && !last.ok() && IsRetryable(last.status());
       ++attempt) {
    double ms = internal::NextBackoffMs(policy, attempt - 1, rng, prev_ms);
    if (internal::RetryBudgetExhausted(policy, slept_ms, ms)) {
      internal::NoteRetryBudgetExhausted();
      return ResultT(last.status().WithContext(
          internal::RetryBudgetContext(attempt - 1)));
    }
    slept_ms += ms;
    if (stats != nullptr) {
      stats->total_backoff_ms += ms;
      stats->attempts = attempt;
    }
    internal::NoteRetry(ms);
    if (sleep) {
      sleep(ms);
    } else {
      internal::SleepForMs(ms);
    }
    last = fn();
  }
  return last;
}

}  // namespace culinary::robustness

#endif  // CULINARYLAB_ROBUSTNESS_RETRY_H_
