#include "robustness/checkpoint.h"

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/atomic_file.h"
#include "obs/obs.h"
#include "robustness/fault_injector.h"

namespace culinary::robustness {

namespace {

constexpr std::string_view kMagic = "culinary-ckpt";
constexpr int kVersion = 1;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Parses one lower-case hex field, advancing `*text` past it and one
/// trailing space (if any). Returns false on anything but [0-9a-f]+.
bool TakeHex(std::string_view* text, uint64_t* out) {
  size_t i = 0;
  uint64_t value = 0;
  while (i < text->size()) {
    char c = (*text)[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      break;
    }
    if (i >= 16) return false;  // field wider than 64 bits
    value = (value << 4) | static_cast<uint64_t>(digit);
    ++i;
  }
  if (i == 0) return false;
  text->remove_prefix(i);
  if (!text->empty() && text->front() == ' ') text->remove_prefix(1);
  *out = value;
  return true;
}

std::string HexField(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, v);
  return buf;
}

}  // namespace

namespace internal {

uint64_t CheckpointChecksum(std::string_view payload) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (char c : payload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::string CheckpointRecordPayload(uint64_t block,
                                    const culinary::RunningStats& stats) {
  std::string payload = "B ";
  payload += HexField(block);
  payload += ' ';
  payload += HexField(static_cast<uint64_t>(stats.count()));
  payload += ' ';
  payload += HexField(DoubleBits(stats.mean()));
  payload += ' ';
  payload += HexField(DoubleBits(stats.m2()));
  payload += ' ';
  payload += HexField(DoubleBits(stats.min()));
  payload += ' ';
  payload += HexField(DoubleBits(stats.max()));
  return payload;
}

}  // namespace internal

culinary::Result<CheckpointContents> LoadBlockCheckpoint(
    const std::string& path) {
  CULINARY_OBS_SPAN(load_span, "checkpoint.load", "checkpoint");
  CULINARY_RETURN_IF_ERROR(
      FaultInjector::Global().Check(kFaultCheckpointRead));
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return culinary::Status::NotFound("no checkpoint at " + path);
    }
    return culinary::Status::IOError("cannot open checkpoint " + path + ": " +
                                     std::strerror(errno));
  }
  std::unique_ptr<FILE, int (*)(FILE*)> closer(file, &std::fclose);

  // Read whole lines; records are short, so a fixed buffer is plenty and an
  // over-long line simply fails its parse (treated as corruption).
  char buf[512];
  auto read_line = [&](std::string* line) -> bool {
    if (std::fgets(buf, sizeof(buf), file) == nullptr) return false;
    *line = buf;
    while (!line->empty() &&
           (line->back() == '\n' || line->back() == '\r')) {
      line->pop_back();
    }
    return true;
  };

  CheckpointContents contents;
  std::string line;
  if (!read_line(&line)) {
    return culinary::Status::ParseError("checkpoint " + path +
                                        " is empty or unreadable");
  }
  {
    std::string_view header = line;
    uint64_t version = 0;
    if (header.substr(0, kMagic.size()) != kMagic) {
      return culinary::Status::ParseError("checkpoint " + path +
                                          " has no recognizable header");
    }
    header.remove_prefix(kMagic.size());
    if (!header.empty() && header.front() == ' ') header.remove_prefix(1);
    if (!TakeHex(&header, &version) ||
        version != static_cast<uint64_t>(kVersion) ||
        !TakeHex(&header, &contents.signature) ||
        !TakeHex(&header, &contents.num_blocks) || !header.empty()) {
      return culinary::Status::ParseError("checkpoint " + path +
                                          " header is corrupt");
    }
  }

  // Records: keep every line that parses and verifies; stop at the first
  // that does not (append-only file — nothing after a torn record can be
  // trusted to be aligned) and count the remainder as dropped.
  bool corrupt_tail = false;
  while (read_line(&line)) {
    if (corrupt_tail) {
      ++contents.records_dropped;
      continue;
    }
    std::string_view rest = line;
    uint64_t block = 0, count = 0, mean = 0, m2 = 0, min = 0, max = 0,
             crc = 0;
    bool parsed = rest.substr(0, 2) == "B ";
    if (parsed) rest.remove_prefix(2);
    parsed = parsed && TakeHex(&rest, &block) && TakeHex(&rest, &count) &&
             TakeHex(&rest, &mean) && TakeHex(&rest, &m2) &&
             TakeHex(&rest, &min) && TakeHex(&rest, &max) &&
             TakeHex(&rest, &crc) && rest.empty();
    if (parsed) {
      // The checksummed payload is everything before the final " <crc>".
      const size_t last_space = line.find_last_of(' ');
      std::string_view payload(line.data(), last_space);
      parsed = internal::CheckpointChecksum(payload) == crc &&
               block < contents.num_blocks;
    }
    if (!parsed) {
      corrupt_tail = true;
      ++contents.records_dropped;
      continue;
    }
    CheckpointBlock record;
    record.block = block;
    record.stats = culinary::RunningStats::FromMoments(
        static_cast<int64_t>(count), BitsToDouble(mean), BitsToDouble(m2),
        BitsToDouble(min), BitsToDouble(max));
    contents.blocks.push_back(std::move(record));
  }
  CULINARY_OBS_COUNT("checkpoint.blocks_loaded", contents.blocks.size());
  if (contents.records_dropped > 0) {
    CULINARY_OBS_COUNT("checkpoint.records_dropped",
                       contents.records_dropped);
  }
  return contents;
}

culinary::Status WriteCheckpointFile(
    const std::string& path, uint64_t signature, uint64_t num_blocks,
    const std::vector<CheckpointBlock>& blocks) {
  CULINARY_OBS_SPAN(publish_span, "checkpoint.publish", "checkpoint");
  std::string contents(kMagic);
  contents += ' ';
  contents += HexField(static_cast<uint64_t>(kVersion));
  contents += ' ';
  contents += HexField(signature);
  contents += ' ';
  contents += HexField(num_blocks);
  contents += '\n';
  for (const CheckpointBlock& block : blocks) {
    std::string payload =
        internal::CheckpointRecordPayload(block.block, block.stats);
    contents += payload;
    contents += ' ';
    contents += HexField(internal::CheckpointChecksum(payload));
    contents += '\n';
  }
  culinary::AtomicWriteOptions atomic;
  atomic.fault_hook = [&path](std::string_view step) -> culinary::Status {
    if (step == culinary::kAtomicStepOpen) {
      return FaultInjector::Global()
          .Check(kFaultCheckpointOpen)
          .WithContext("publishing checkpoint " + path);
    }
    if (step == culinary::kAtomicStepWrite) {
      return FaultInjector::Global()
          .Check(kFaultCheckpointAppend)
          .WithContext("staging checkpoint " + path);
    }
    if (step == culinary::kAtomicStepRename) {
      return FaultInjector::Global()
          .Check(kFaultCheckpointPublish)
          .WithContext("renaming checkpoint " + path);
    }
    return culinary::Status::OK();
  };
  CULINARY_RETURN_IF_ERROR(WriteFileAtomic(path, contents, atomic));
  CULINARY_OBS_COUNT("checkpoint.published", 1);
  return culinary::Status::OK();
}

BlockCheckpointWriter::BlockCheckpointWriter(std::string path, FILE* file)
    : path_(std::move(path)),
      file_(file),
      mutex_(std::make_unique<std::mutex>()) {}

culinary::Result<BlockCheckpointWriter> BlockCheckpointWriter::Create(
    const std::string& path, uint64_t signature, uint64_t num_blocks) {
  CULINARY_OBS_SPAN(create_span, "checkpoint.create", "checkpoint");
  CULINARY_RETURN_IF_ERROR(
      FaultInjector::Global().Check(kFaultCheckpointOpen));
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return culinary::Status::IOError("cannot create checkpoint " + path +
                                     ": " + std::strerror(errno));
  }
  BlockCheckpointWriter writer(path, file);
  std::string header(kMagic);
  header += ' ';
  header += HexField(static_cast<uint64_t>(kVersion));
  header += ' ';
  header += HexField(signature);
  header += ' ';
  header += HexField(num_blocks);
  header += '\n';
  if (std::fputs(header.c_str(), file) == EOF || std::fflush(file) != 0) {
    return culinary::Status::IOError("cannot write checkpoint header to " +
                                     path);
  }
  return writer;
}

culinary::Result<BlockCheckpointWriter> BlockCheckpointWriter::OpenForAppend(
    const std::string& path, uint64_t /*signature*/,
    uint64_t /*num_blocks*/) {
  CULINARY_RETURN_IF_ERROR(
      FaultInjector::Global().Check(kFaultCheckpointOpen));
  // "a+" so the existing tail can be inspected; writes still always append.
  FILE* file = std::fopen(path.c_str(), "a+b");
  if (file == nullptr) {
    return culinary::Status::IOError("cannot reopen checkpoint " + path +
                                     ": " + std::strerror(errno));
  }
  // A crash can leave an intact final record with no trailing newline (the
  // '\n' is the last byte of each append). Terminate it, or the first
  // record this writer appends would concatenate onto the old line and
  // neither would load.
  if (std::fseek(file, -1, SEEK_END) == 0) {
    int last = std::fgetc(file);
    if (last != '\n' && last != EOF &&
        (std::fputc('\n', file) == EOF || std::fflush(file) != 0)) {
      std::fclose(file);
      return culinary::Status::IOError(
          "cannot terminate checkpoint tail in " + path);
    }
  }
  return BlockCheckpointWriter(path, file);
}

culinary::Status BlockCheckpointWriter::AppendBlock(
    uint64_t block, const culinary::RunningStats& stats) {
  CULINARY_RETURN_IF_ERROR(
      FaultInjector::Global().Check(kFaultCheckpointAppend));
  std::string payload = internal::CheckpointRecordPayload(block, stats);
  std::string record = payload;
  record += ' ';
  record += HexField(internal::CheckpointChecksum(payload));
  record += '\n';
  std::lock_guard<std::mutex> lock(*mutex_);
  if (std::fputs(record.c_str(), file_.get()) == EOF ||
      std::fflush(file_.get()) != 0) {
    return culinary::Status::IOError("cannot append block " +
                                     std::to_string(block) +
                                     " to checkpoint " + path_);
  }
  CULINARY_OBS_COUNT("checkpoint.blocks_appended", 1);
  return culinary::Status::OK();
}

}  // namespace culinary::robustness
