#include "robustness/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.h"

namespace culinary::robustness {

bool IsRetryable(const culinary::Status& status) {
  return status.IsTransient();
}

namespace internal {

double BackoffMs(const RetryPolicy& policy, int attempt, culinary::Rng& rng) {
  double base = policy.base_backoff_ms;
  for (int i = 1; i < attempt && base < policy.max_backoff_ms; ++i) {
    base *= 2.0;
  }
  base = std::min(base, policy.max_backoff_ms);
  double jitter = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  double factor = rng.NextDouble(1.0 - jitter, 1.0 + jitter);
  return std::max(0.0, base * factor);
}

double DecorrelatedBackoffMs(const RetryPolicy& policy, double prev_ms,
                             culinary::Rng& rng) {
  double lo = std::max(0.0, policy.base_backoff_ms);
  double hi = std::max(lo, prev_ms * 3.0);
  double drawn = rng.NextDouble(lo, hi);
  return std::min(drawn, policy.max_backoff_ms);
}

double NextBackoffMs(const RetryPolicy& policy, int attempt, culinary::Rng& rng,
                     double& prev_ms) {
  if (policy.jitter_mode == JitterMode::kDecorrelated) {
    prev_ms = DecorrelatedBackoffMs(policy, prev_ms, rng);
    return prev_ms;
  }
  return BackoffMs(policy, attempt, rng);
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void NoteRetry(double backoff_ms) {
  CULINARY_OBS_COUNT("retry.attempts_retried", 1);
  CULINARY_OBS_OBSERVE("retry.backoff_ms", backoff_ms);
}

void NoteRetryBudgetExhausted() {
  CULINARY_OBS_COUNT("retry.budget_exhausted", 1);
}

std::string RetryBudgetContext(int attempts) {
  return "retry budget exhausted after " + std::to_string(attempts) +
         " attempt(s)";
}

}  // namespace internal

}  // namespace culinary::robustness
