#ifndef CULINARYLAB_SERVING_SNAPSHOT_H_
#define CULINARYLAB_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/fingerprint.h"
#include "analysis/null_models.h"
#include "analysis/options.h"
#include "analysis/pairing.h"
#include "analysis/similarity.h"
#include "common/result.h"
#include "common/statistics.h"
#include "datagen/world.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"
#include "recipe/database.h"
#include "snapshot/snapshot.h"

namespace culinary::serving {

/// Knobs for materializing a `ServingSnapshot` from a loaded world.
struct ServingSnapshotOptions {
  /// Worker threads for the build-time sweeps (pairing cache, per-region
  /// stats, similarity matrix). 0 = hardware concurrency. Build parallelism
  /// never changes the materialized values (the analysis determinism
  /// contract), so snapshots built at different thread counts are
  /// bit-identical.
  size_t num_threads = 0;
  /// Randomized recipes per null model for the per-region baselines; 0
  /// skips baseline precomputation entirely (fast startup — fingerprint
  /// responses then simply omit z-scores).
  size_t null_recipes = 0;
  /// Seed for the null-model ensembles (matches NullModelOptions's default).
  uint64_t null_seed = 0xC0FFEE;
  /// Metric precomputed into the cuisine-similarity matrix.
  analysis::CuisineSimilarity similarity_metric =
      analysis::CuisineSimilarity::kIngredientJaccard;
};

/// Everything a resident query engine needs to answer point queries, built
/// once and then strictly immutable: the registry + recipe database
/// triangle, the world-cuisine `PairingCache` (rehydrated from the binary
/// snapshot format when available instead of recomputed), per-cuisine
/// pairing statistics, the naive-Bayes cuisine classifier, the
/// cuisine-similarity matrix, and (optionally) precomputed null-model
/// baselines.
///
/// Instances are published to the engine as `shared_ptr<const
/// ServingSnapshot>` and swapped RCU-style on reload: queries grab one
/// shared_ptr for their whole evaluation, so an in-flight query keeps its
/// world alive and consistent while a reload publishes the next one.
///
/// Every value is produced by the exact batch-path function over the same
/// inputs (`CuisinePairingStats`, `CuisineSimilarityMatrix`, ...), so a
/// serving answer is bit-identical to running the analysis layer directly —
/// the property the serving equivalence tests pin down.
class ServingSnapshot {
 public:
  /// Builds from an owned registry + database. When `world_cache` is
  /// provided (the snapshot rehydration path), it is validated against the
  /// registry and the world cuisine before use — a cache whose ingredient
  /// set does not exactly match the world cuisine's, or whose triangle size
  /// disagrees with its ingredient count, is kFailedPrecondition, never
  /// undefined behavior. Without one, the cache is built from scratch.
  static culinary::Result<std::shared_ptr<const ServingSnapshot>> Build(
      std::unique_ptr<flavor::FlavorRegistry> registry,
      std::unique_ptr<recipe::RecipeDatabase> database,
      std::optional<analysis::PairingCache> world_cache,
      const ServingSnapshotOptions& options = {});

  /// Builds from a binary-snapshot load (takes ownership; reuses the
  /// rehydrated pairing triangle when the snapshot carried one).
  static culinary::Result<std::shared_ptr<const ServingSnapshot>>
  FromLoadedWorld(snapshot::LoadedWorld world,
                  const ServingSnapshotOptions& options = {});

  /// Builds from a generated synthetic world (takes ownership).
  static culinary::Result<std::shared_ptr<const ServingSnapshot>>
  FromSyntheticWorld(datagen::SyntheticWorld world,
                     const ServingSnapshotOptions& options = {});

  const flavor::FlavorRegistry& registry() const { return *registry_; }
  const recipe::RecipeDatabase& db() const { return *database_; }
  const analysis::PairingCache& world_cache() const { return *world_cache_; }
  const recipe::Cuisine& world_cuisine() const { return *world_cuisine_; }

  /// The 22 regional cuisines in `AllRegions()` order.
  const std::vector<recipe::Cuisine>& cuisines() const { return cuisines_; }

  /// Cuisine for a proper region; nullptr for kWorld / out of range (use
  /// `world_cuisine()` for the aggregate).
  const recipe::Cuisine* CuisineForRegion(recipe::Region region) const;

  /// Precomputed `CuisinePairingStats` of `cuisines()[i]` over the world
  /// cache (index-aligned with `cuisines()`).
  const culinary::RunningStats& PairingStatsAt(size_t i) const {
    return pairing_stats_[i];
  }

  const analysis::CuisineClassifier& classifier() const { return *classifier_; }

  /// Symmetric cuisine-similarity matrix over `cuisines()`, for
  /// `options.similarity_metric`.
  const std::vector<std::vector<double>>& similarity() const {
    return similarity_;
  }
  analysis::CuisineSimilarity similarity_metric() const {
    return similarity_metric_;
  }

  /// Precomputed four-model null baselines for `cuisines()[i]`; empty when
  /// baselines were disabled (`options.null_recipes == 0`) or the cuisine
  /// is degenerate (no pairable recipes).
  const std::vector<analysis::FoodPairingResult>& BaselinesAt(size_t i) const {
    return baselines_[i];
  }
  bool has_baselines() const { return null_recipes_ > 0; }

 private:
  ServingSnapshot() = default;

  std::unique_ptr<flavor::FlavorRegistry> registry_;
  std::unique_ptr<recipe::RecipeDatabase> database_;
  std::unique_ptr<recipe::Cuisine> world_cuisine_;
  std::unique_ptr<analysis::PairingCache> world_cache_;
  std::vector<recipe::Cuisine> cuisines_;
  std::vector<culinary::RunningStats> pairing_stats_;
  std::unique_ptr<analysis::CuisineClassifier> classifier_;
  std::vector<std::vector<double>> similarity_;
  analysis::CuisineSimilarity similarity_metric_ =
      analysis::CuisineSimilarity::kIngredientJaccard;
  std::vector<std::vector<analysis::FoodPairingResult>> baselines_;
  size_t null_recipes_ = 0;
};

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_SNAPSHOT_H_
