#ifndef CULINARYLAB_SERVING_HEALTH_H_
#define CULINARYLAB_SERVING_HEALTH_H_

namespace culinary::serving {

/// Lifecycle health of a `QueryEngine`, reported by the `health` protocol op
/// and consulted by admission.
///
///     kStarting ──► kServing ◄──► kDegraded
///                      │              │
///                      ▼              ▼
///                  kDraining ──► kStopped
///
/// * `kStarting` — constructed, workers spawning; queries already answer.
/// * `kServing`  — steady state: the published snapshot is current.
/// * `kDegraded` — a reload failed; the engine keeps answering from the last
///   good snapshot until a clean reload returns it to `kServing`.
/// * `kDraining` — shutdown requested: admission is closed (`Submit` sheds
///   with `kUnavailable`), in-flight and queued requests still complete.
/// * `kStopped`  — workers joined; terminal.
enum class HealthState {
  kStarting = 0,
  kServing = 1,
  kDegraded = 2,
  kDraining = 3,
  kStopped = 4,
};

/// Stable lowercase wire name ("starting", "serving", "degraded",
/// "draining", "stopped").
inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kServing:
      return "serving";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kStopped:
      return "stopped";
  }
  return "unknown";
}

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_HEALTH_H_
