#include "serving/queries.h"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/pairing.h"
#include "analysis/similarity.h"
#include "common/status.h"
#include "flavor/bitset.h"
#include "recipe/recipe.h"

namespace culinary::serving {

namespace {

/// Candidate-scan loops re-check the request lifecycle every this many
/// candidates, bounding stop latency without paying a clock read per row.
constexpr size_t kStopCheckStride = 1024;

/// Canonical display name for an id ("#<id>" for ids the registry cannot
/// name — tombstones surfaced through an old cache).
std::string NameFor(const flavor::FlavorRegistry& registry,
                    flavor::IngredientId id) {
  const flavor::Ingredient* ing = registry.Find(id);
  return ing != nullptr ? ing->name : "#" + std::to_string(id);
}

/// Index of `region` within `snapshot.cuisines()`; nullopt for kWorld or a
/// region the snapshot does not carry.
std::optional<size_t> CuisineIndexFor(const ServingSnapshot& snapshot,
                                      recipe::Region region) {
  const std::vector<recipe::Cuisine>& cuisines = snapshot.cuisines();
  for (size_t i = 0; i < cuisines.size(); ++i) {
    if (cuisines[i].region() == region) return i;
  }
  return std::nullopt;
}

culinary::Result<ScoreResult> ScoreResolved(
    const ServingSnapshot& snapshot, std::vector<flavor::IngredientId> ids,
    std::vector<std::string> unresolved, const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient resolved against the registry");
  }
  recipe::CanonicalizeIngredients(ids);  // sorted unique, like a Recipe
  ScoreResult result;
  result.score = analysis::RecipePairingScore(snapshot.world_cache(), ids);
  result.classified = snapshot.classifier().Classify(ids);
  result.resolved = std::move(ids);
  result.unresolved = std::move(unresolved);
  return result;
}

/// Resolved, canonicalized request set mapped into the cache's dense index
/// space — the shared preamble of the single and batched suggest paths, so
/// both reject the same inputs with the same statuses. Ingredients the
/// corpus never used contribute no pairing information, mirroring how
/// scoring excludes them from the normalization.
culinary::Result<std::vector<int>> SuggestSetFor(
    const analysis::PairingCache& cache, std::vector<flavor::IngredientId> ids,
    const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient resolved against the registry");
  }
  recipe::CanonicalizeIngredients(ids);
  std::vector<int> set_dense;
  set_dense.reserve(ids.size());
  for (flavor::IngredientId id : ids) {
    const int d = cache.DenseIndex(id);
    if (d >= 0) set_dense.push_back(d);
  }
  if (set_dense.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient appears in the serving corpus");
  }
  return set_dense;
}

/// Deterministic ranking under ties: descending gain, then ascending
/// ingredient id. A strict total order over unique ids, so the top-K is a
/// pure function of the snapshot — bit-identical across any number of
/// serving threads, and identical whether selected by nth_element (single
/// path) or a bounded heap (batched path).
bool BetterSuggestion(const std::pair<double, flavor::IngredientId>& a,
                      const std::pair<double, flavor::IngredientId>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

/// Final (gain, id) → Suggestion materialization, shared by both paths.
std::vector<Suggestion> MakeSuggestions(
    const flavor::FlavorRegistry& registry,
    const std::vector<std::pair<double, flavor::IngredientId>>& scored) {
  std::vector<Suggestion> suggestions;
  suggestions.reserve(scored.size());
  for (const auto& [gain, id] : scored) {
    Suggestion s;
    s.id = id;
    s.name = NameFor(registry, id);
    s.gain = gain;
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

culinary::Result<std::vector<Suggestion>> SuggestResolved(
    const ServingSnapshot& snapshot, std::vector<flavor::IngredientId> ids,
    size_t k, const QueryContext& context) {
  const analysis::PairingCache& cache = snapshot.world_cache();
  auto set = SuggestSetFor(cache, std::move(ids), context);
  if (!set.ok()) return set.status();
  const std::vector<int>& set_dense = set.value();
  const size_t n = cache.num_ingredients();
  std::vector<char> in_set(n, 0);
  for (int d : set_dense) in_set[static_cast<size_t>(d)] = 1;

  const std::vector<uint16_t>& full = cache.shared_matrix();
  const double m = static_cast<double>(set_dense.size());
  std::vector<std::pair<double, flavor::IngredientId>> scored;
  scored.reserve(n);
  const bool stoppable =
      context.cancel.cancellable() || context.deadline.has_deadline();
  for (size_t c = 0; c < n; ++c) {
    if (stoppable && c % kStopCheckStride == 0) {
      CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
    }
    if (in_set[c]) continue;
    const uint16_t* row = full.data() + c * n;
    uint64_t total = 0;
    for (int s : set_dense) total += row[s];
    scored.emplace_back(static_cast<double>(total) / m, cache.IdAt(c));
  }

  if (scored.size() > k) {
    std::nth_element(scored.begin(), scored.begin() + static_cast<long>(k),
                     scored.end(), BetterSuggestion);
    scored.resize(k);
  }
  std::sort(scored.begin(), scored.end(), BetterSuggestion);
  return MakeSuggestions(snapshot.registry(), scored);
}

/// Splits names into (resolved ids, unresolved names).
void ResolveNames(const flavor::FlavorRegistry& registry,
                  const std::vector<std::string>& names,
                  std::vector<flavor::IngredientId>* ids,
                  std::vector<std::string>* unresolved) {
  for (const std::string& name : names) {
    const flavor::IngredientId id = registry.FindByName(name);
    if (id == flavor::kInvalidIngredient) {
      unresolved->push_back(name);
    } else {
      ids->push_back(id);
    }
  }
}

/// Splits raw ids into (known ids, unresolved stringified ids).
void ResolveIds(const flavor::FlavorRegistry& registry,
                const std::vector<flavor::IngredientId>& raw,
                std::vector<flavor::IngredientId>* ids,
                std::vector<std::string>* unresolved) {
  for (flavor::IngredientId id : raw) {
    if (registry.Find(id) == nullptr) {
      unresolved->push_back("#" + std::to_string(id));
    } else {
      ids->push_back(id);
    }
  }
}

}  // namespace

culinary::Result<ScoreResult> ScoreRecipe(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> ids;
  std::vector<std::string> unresolved;
  ResolveNames(snapshot.registry(), ingredient_names, &ids, &unresolved);
  return ScoreResolved(snapshot, std::move(ids), std::move(unresolved),
                       context);
}

culinary::Result<ScoreResult> ScoreRecipeIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> known;
  std::vector<std::string> unresolved;
  ResolveIds(snapshot.registry(), ids, &known, &unresolved);
  return ScoreResolved(snapshot, std::move(known), std::move(unresolved),
                       context);
}

culinary::Result<std::vector<Suggestion>> SuggestPairings(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names, size_t k,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> ids;
  std::vector<std::string> unresolved;
  ResolveNames(snapshot.registry(), ingredient_names, &ids, &unresolved);
  return SuggestResolved(snapshot, std::move(ids), k, context);
}

culinary::Result<std::vector<Suggestion>> SuggestPairingsIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids, size_t k,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> known;
  std::vector<std::string> unresolved;
  ResolveIds(snapshot.registry(), ids, &known, &unresolved);
  return SuggestResolved(snapshot, std::move(known), k, context);
}

culinary::Result<FingerprintResult> Fingerprint(const ServingSnapshot& snapshot,
                                                recipe::Region region,
                                                size_t top,
                                                const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  const std::optional<size_t> index = CuisineIndexFor(snapshot, region);
  if (!index.has_value()) {
    return culinary::Status::NotFound(
        "no cuisine for region " + std::string(recipe::RegionCode(region)));
  }
  const recipe::Cuisine& cuisine = snapshot.cuisines()[*index];
  FingerprintResult result;
  result.region = region;
  result.num_recipes = cuisine.num_recipes();
  result.num_unique_ingredients = cuisine.unique_ingredients().size();
  result.mean_recipe_size = cuisine.MeanRecipeSize();
  result.mean_pairing = snapshot.PairingStatsAt(*index).mean();
  auto by_popularity = cuisine.ByPopularity();
  if (by_popularity.size() > top) by_popularity.resize(top);
  result.top_ingredients.reserve(by_popularity.size());
  for (const auto& [id, frequency] : by_popularity) {
    result.top_ingredients.emplace_back(NameFor(snapshot.registry(), id),
                                        frequency);
  }
  result.baselines = snapshot.BaselinesAt(*index);
  return result;
}

culinary::Result<SimilarResult> SimilarCuisines(const ServingSnapshot& snapshot,
                                                recipe::Region region, size_t k,
                                                const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  const std::optional<size_t> index = CuisineIndexFor(snapshot, region);
  if (!index.has_value()) {
    return culinary::Status::NotFound(
        "no cuisine for region " + std::string(recipe::RegionCode(region)));
  }
  // Read the precomputed matrix row instead of recomputing the 21 pairwise
  // similarities, replicating `analysis::NearestCuisines` exactly: same
  // candidate order, same comparator, same truncation — the matrix entries
  // themselves come from the same pure metric, so the answer is
  // bit-identical to the batch call.
  const std::vector<std::vector<double>>& matrix = snapshot.similarity();
  const std::vector<recipe::Cuisine>& cuisines = snapshot.cuisines();
  SimilarResult result;
  result.region = region;
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (c == *index) continue;
    result.neighbors.emplace_back(cuisines[c].region(), matrix[*index][c]);
  }
  std::sort(result.neighbors.begin(), result.neighbors.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (result.neighbors.size() > k) result.neighbors.resize(k);
  return result;
}

// --- dispatch: single and batched -------------------------------------------

const char* EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kPing:
      return "ping";
    case Endpoint::kScore:
      return "score";
    case Endpoint::kSuggest:
      return "suggest";
    case Endpoint::kFingerprint:
      return "fingerprint";
    case Endpoint::kSimilar:
      return "similar";
  }
  return "unknown";
}

QueryContext MakeContext(const Request& request) {
  QueryContext context;
  context.cancel = request.cancel;
  if (request.deadline_ms >= 0) {
    context.deadline = culinary::Deadline::After(request.deadline_ms);
  }
  return context;
}

Response EvaluateQuery(const ServingSnapshot& snapshot, const Request& request,
                       const QueryContext& context) {
  Response response;
  response.endpoint = request.endpoint;
  const bool by_name = !request.ingredient_names.empty();
  switch (request.endpoint) {
    case Endpoint::kPing:
      response.status = culinary::Status::OK();
      break;
    case Endpoint::kScore: {
      auto result =
          by_name ? ScoreRecipe(snapshot, request.ingredient_names, context)
                  : ScoreRecipeIds(snapshot, request.ingredient_ids, context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kSuggest: {
      auto result =
          by_name
              ? SuggestPairings(snapshot, request.ingredient_names, request.k,
                                context)
              : SuggestPairingsIds(snapshot, request.ingredient_ids, request.k,
                                   context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kFingerprint: {
      auto result = Fingerprint(snapshot, request.region, request.k, context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kSimilar: {
      auto result = SimilarCuisines(snapshot, request.region, request.k,
                                    context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
  }
  return response;
}

namespace {

/// Batch accumulators are uint32 and matrix entries uint16, so a request
/// set of up to 2^15 members provably cannot overflow (2^15 · (2^16−1) <
/// 2^31). A larger set — only reachable through pathological wire input —
/// falls back to the single-request sweep, which accumulates in uint64.
constexpr size_t kMaxSoaSetSize = size_t{1} << 15;

/// One suggest request gathered for the SoA sweep.
struct SuggestJob {
  size_t index = 0;          ///< position in the batch (responses slot)
  std::vector<int> set;      ///< dense request-set indices
  flavor::CompoundBitset members;  ///< membership mask over dense space
  size_t k = 0;
  QueryContext context;
  bool stoppable = false;
  bool failed = false;
  std::vector<uint32_t> acc;  ///< per-candidate gain numerator
};

/// The structure-of-arrays suggest kernel: one pass over the PairingCache
/// for every gathered job.
///
/// Phase 1 exploits symmetry of the shared-compound matrix — the gain
/// numerator of candidate c for set S is Σ_{s∈S} M[c][s] = Σ_{s∈S} M[s][c] —
/// to turn the single path's strided column gathers into sequential row
/// streams: each *distinct* set-member row across the whole batch is walked
/// once (jobs sorted per row, so a row shared by several requests stays
/// cache-hot), added into each requesting job's accumulator. Integer
/// addition is order-insensitive, so the numerators match the single path
/// exactly. Phase 2 ranks candidates per job through a bounded top-K heap
/// under the same comparator the single path sorts with.
void SuggestSweep(const ServingSnapshot& snapshot,
                  std::vector<SuggestJob>& jobs,
                  std::vector<Response>& responses) {
  const analysis::PairingCache& cache = snapshot.world_cache();
  const size_t n = cache.num_ingredients();
  const std::vector<uint16_t>& full = cache.shared_matrix();

  // Phase 1: accumulate, grouped by matrix row.
  std::vector<std::pair<int, size_t>> row_users;  // (dense row, job index)
  for (size_t j = 0; j < jobs.size(); ++j) {
    for (int s : jobs[j].set) row_users.emplace_back(s, j);
  }
  std::sort(row_users.begin(), row_users.end());
  for (const auto& [s, j] : row_users) {
    SuggestJob& job = jobs[j];
    if (job.failed) continue;
    if (job.stoppable) {
      const culinary::Status stop =
          CheckStop(job.context.cancel, job.context.deadline);
      if (!stop.ok()) {
        responses[job.index].status = stop;
        job.failed = true;
        continue;
      }
    }
    const uint16_t* row = full.data() + static_cast<size_t>(s) * n;
    uint32_t* acc = job.acc.data();
    for (size_t c = 0; c < n; ++c) acc[c] += row[c];
  }

  // Phase 2: bounded top-K selection per job.
  std::vector<std::pair<double, flavor::IngredientId>> kept;
  for (SuggestJob& job : jobs) {
    if (job.failed) continue;
    const double m = static_cast<double>(job.set.size());
    const size_t k = job.k;
    kept.clear();
    // k is wire-controlled; the heap can never hold more than the n
    // candidates, so clamp before reserving or an absurd k would throw
    // length_error in the worker thread.
    kept.reserve(std::min(k, n) + 1);
    bool stopped = false;
    for (size_t c = 0; c < n; ++c) {
      if (job.stoppable && c % kStopCheckStride == 0) {
        const culinary::Status stop =
            CheckStop(job.context.cancel, job.context.deadline);
        if (!stop.ok()) {
          responses[job.index].status = stop;
          stopped = true;
          break;
        }
      }
      if (job.members.Test(static_cast<flavor::MoleculeId>(c))) continue;
      const std::pair<double, flavor::IngredientId> candidate(
          static_cast<double>(job.acc[c]) / m, cache.IdAt(c));
      // The heap is ordered by BetterSuggestion, so its front is the worst
      // element kept; a candidate beating it displaces it. Over a strict
      // total order this keeps exactly the k best — the same k elements
      // nth_element selects in the single path.
      if (kept.size() < k) {
        kept.push_back(candidate);
        std::push_heap(kept.begin(), kept.end(), BetterSuggestion);
      } else if (k > 0 && BetterSuggestion(candidate, kept.front())) {
        std::pop_heap(kept.begin(), kept.end(), BetterSuggestion);
        kept.back() = candidate;
        std::push_heap(kept.begin(), kept.end(), BetterSuggestion);
      }
    }
    if (stopped) continue;
    std::sort(kept.begin(), kept.end(), BetterSuggestion);
    responses[job.index].payload = MakeSuggestions(snapshot.registry(), kept);
  }
}

}  // namespace

std::vector<Response> EvaluateBatch(const ServingSnapshot& snapshot,
                                    const std::vector<Request>& requests) {
  std::vector<Response> responses(requests.size());
  const analysis::PairingCache& cache = snapshot.world_cache();
  const size_t n = cache.num_ingredients();

  // Gather suggest requests into SoA jobs; everything else is a cheap point
  // read dispatched per element.
  std::vector<SuggestJob> jobs;
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    const QueryContext context = MakeContext(request);
    if (request.endpoint != Endpoint::kSuggest) {
      responses[i] = EvaluateQuery(snapshot, request, context);
      continue;
    }
    responses[i].endpoint = Endpoint::kSuggest;
    std::vector<flavor::IngredientId> ids;
    std::vector<std::string> unresolved;
    if (!request.ingredient_names.empty()) {
      ResolveNames(snapshot.registry(), request.ingredient_names, &ids,
                   &unresolved);
    } else {
      ResolveIds(snapshot.registry(), request.ingredient_ids, &ids,
                 &unresolved);
    }
    auto set = SuggestSetFor(cache, std::move(ids), context);
    if (!set.ok()) {
      responses[i].status = set.status();
      continue;
    }
    if (set.value().size() > kMaxSoaSetSize) {
      responses[i] = EvaluateQuery(snapshot, request, context);
      continue;
    }
    SuggestJob job;
    job.index = i;
    job.set = std::move(set).value();
    job.members = flavor::CompoundBitset(n);
    for (int d : job.set) job.members.Set(static_cast<flavor::MoleculeId>(d));
    job.k = request.k;
    job.context = context;
    job.stoppable =
        context.cancel.cancellable() || context.deadline.has_deadline();
    job.acc.assign(n, 0);
    jobs.push_back(std::move(job));
  }
  if (!jobs.empty()) SuggestSweep(snapshot, jobs, responses);
  return responses;
}

}  // namespace culinary::serving
