#include "serving/queries.h"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/pairing.h"
#include "analysis/similarity.h"
#include "common/status.h"
#include "recipe/recipe.h"

namespace culinary::serving {

namespace {

/// Candidate-scan loops re-check the request lifecycle every this many
/// candidates, bounding stop latency without paying a clock read per row.
constexpr size_t kStopCheckStride = 1024;

/// Canonical display name for an id ("#<id>" for ids the registry cannot
/// name — tombstones surfaced through an old cache).
std::string NameFor(const flavor::FlavorRegistry& registry,
                    flavor::IngredientId id) {
  const flavor::Ingredient* ing = registry.Find(id);
  return ing != nullptr ? ing->name : "#" + std::to_string(id);
}

/// Index of `region` within `snapshot.cuisines()`; nullopt for kWorld or a
/// region the snapshot does not carry.
std::optional<size_t> CuisineIndexFor(const ServingSnapshot& snapshot,
                                      recipe::Region region) {
  const std::vector<recipe::Cuisine>& cuisines = snapshot.cuisines();
  for (size_t i = 0; i < cuisines.size(); ++i) {
    if (cuisines[i].region() == region) return i;
  }
  return std::nullopt;
}

culinary::Result<ScoreResult> ScoreResolved(
    const ServingSnapshot& snapshot, std::vector<flavor::IngredientId> ids,
    std::vector<std::string> unresolved, const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient resolved against the registry");
  }
  recipe::CanonicalizeIngredients(ids);  // sorted unique, like a Recipe
  ScoreResult result;
  result.score = analysis::RecipePairingScore(snapshot.world_cache(), ids);
  result.classified = snapshot.classifier().Classify(ids);
  result.resolved = std::move(ids);
  result.unresolved = std::move(unresolved);
  return result;
}

culinary::Result<std::vector<Suggestion>> SuggestResolved(
    const ServingSnapshot& snapshot, std::vector<flavor::IngredientId> ids,
    size_t k, const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient resolved against the registry");
  }
  recipe::CanonicalizeIngredients(ids);
  const analysis::PairingCache& cache = snapshot.world_cache();
  const size_t n = cache.num_ingredients();

  // Members of the request set that the world cache covers; ingredients the
  // corpus never used contribute no pairing information, mirroring how
  // scoring excludes them from the normalization.
  std::vector<int> set_dense;
  std::vector<char> in_set(n, 0);
  set_dense.reserve(ids.size());
  for (flavor::IngredientId id : ids) {
    const int d = cache.DenseIndex(id);
    if (d >= 0) {
      set_dense.push_back(d);
      in_set[static_cast<size_t>(d)] = 1;
    }
  }
  if (set_dense.empty()) {
    return culinary::Status::InvalidArgument(
        "no request ingredient appears in the serving corpus");
  }

  const std::vector<uint16_t>& full = cache.shared_matrix();
  const double m = static_cast<double>(set_dense.size());
  std::vector<std::pair<double, flavor::IngredientId>> scored;
  scored.reserve(n);
  const bool stoppable =
      context.cancel.cancellable() || context.deadline.has_deadline();
  for (size_t c = 0; c < n; ++c) {
    if (stoppable && c % kStopCheckStride == 0) {
      CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
    }
    if (in_set[c]) continue;
    const uint16_t* row = full.data() + c * n;
    uint64_t total = 0;
    for (int s : set_dense) total += row[s];
    scored.emplace_back(static_cast<double>(total) / m, cache.IdAt(c));
  }

  // Deterministic under ties: descending gain, then ascending ingredient
  // id. The comparator is a strict weak ordering over unique ids, so the
  // top-K is a pure function of the snapshot — bit-identical across any
  // number of serving threads.
  auto better = [](const std::pair<double, flavor::IngredientId>& a,
                   const std::pair<double, flavor::IngredientId>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  if (scored.size() > k) {
    std::nth_element(scored.begin(), scored.begin() + static_cast<long>(k),
                     scored.end(), better);
    scored.resize(k);
  }
  std::sort(scored.begin(), scored.end(), better);

  std::vector<Suggestion> suggestions;
  suggestions.reserve(scored.size());
  for (const auto& [gain, id] : scored) {
    Suggestion s;
    s.id = id;
    s.name = NameFor(snapshot.registry(), id);
    s.gain = gain;
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

/// Splits names into (resolved ids, unresolved names).
void ResolveNames(const flavor::FlavorRegistry& registry,
                  const std::vector<std::string>& names,
                  std::vector<flavor::IngredientId>* ids,
                  std::vector<std::string>* unresolved) {
  for (const std::string& name : names) {
    const flavor::IngredientId id = registry.FindByName(name);
    if (id == flavor::kInvalidIngredient) {
      unresolved->push_back(name);
    } else {
      ids->push_back(id);
    }
  }
}

/// Splits raw ids into (known ids, unresolved stringified ids).
void ResolveIds(const flavor::FlavorRegistry& registry,
                const std::vector<flavor::IngredientId>& raw,
                std::vector<flavor::IngredientId>* ids,
                std::vector<std::string>* unresolved) {
  for (flavor::IngredientId id : raw) {
    if (registry.Find(id) == nullptr) {
      unresolved->push_back("#" + std::to_string(id));
    } else {
      ids->push_back(id);
    }
  }
}

}  // namespace

culinary::Result<ScoreResult> ScoreRecipe(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> ids;
  std::vector<std::string> unresolved;
  ResolveNames(snapshot.registry(), ingredient_names, &ids, &unresolved);
  return ScoreResolved(snapshot, std::move(ids), std::move(unresolved),
                       context);
}

culinary::Result<ScoreResult> ScoreRecipeIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> known;
  std::vector<std::string> unresolved;
  ResolveIds(snapshot.registry(), ids, &known, &unresolved);
  return ScoreResolved(snapshot, std::move(known), std::move(unresolved),
                       context);
}

culinary::Result<std::vector<Suggestion>> SuggestPairings(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names, size_t k,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> ids;
  std::vector<std::string> unresolved;
  ResolveNames(snapshot.registry(), ingredient_names, &ids, &unresolved);
  return SuggestResolved(snapshot, std::move(ids), k, context);
}

culinary::Result<std::vector<Suggestion>> SuggestPairingsIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids, size_t k,
    const QueryContext& context) {
  std::vector<flavor::IngredientId> known;
  std::vector<std::string> unresolved;
  ResolveIds(snapshot.registry(), ids, &known, &unresolved);
  return SuggestResolved(snapshot, std::move(known), k, context);
}

culinary::Result<FingerprintResult> Fingerprint(const ServingSnapshot& snapshot,
                                                recipe::Region region,
                                                size_t top,
                                                const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  const std::optional<size_t> index = CuisineIndexFor(snapshot, region);
  if (!index.has_value()) {
    return culinary::Status::NotFound(
        "no cuisine for region " + std::string(recipe::RegionCode(region)));
  }
  const recipe::Cuisine& cuisine = snapshot.cuisines()[*index];
  FingerprintResult result;
  result.region = region;
  result.num_recipes = cuisine.num_recipes();
  result.num_unique_ingredients = cuisine.unique_ingredients().size();
  result.mean_recipe_size = cuisine.MeanRecipeSize();
  result.mean_pairing = snapshot.PairingStatsAt(*index).mean();
  auto by_popularity = cuisine.ByPopularity();
  if (by_popularity.size() > top) by_popularity.resize(top);
  result.top_ingredients.reserve(by_popularity.size());
  for (const auto& [id, frequency] : by_popularity) {
    result.top_ingredients.emplace_back(NameFor(snapshot.registry(), id),
                                        frequency);
  }
  result.baselines = snapshot.BaselinesAt(*index);
  return result;
}

culinary::Result<SimilarResult> SimilarCuisines(const ServingSnapshot& snapshot,
                                                recipe::Region region, size_t k,
                                                const QueryContext& context) {
  CULINARY_RETURN_IF_ERROR(CheckStop(context.cancel, context.deadline));
  const std::optional<size_t> index = CuisineIndexFor(snapshot, region);
  if (!index.has_value()) {
    return culinary::Status::NotFound(
        "no cuisine for region " + std::string(recipe::RegionCode(region)));
  }
  // Read the precomputed matrix row instead of recomputing the 21 pairwise
  // similarities, replicating `analysis::NearestCuisines` exactly: same
  // candidate order, same comparator, same truncation — the matrix entries
  // themselves come from the same pure metric, so the answer is
  // bit-identical to the batch call.
  const std::vector<std::vector<double>>& matrix = snapshot.similarity();
  const std::vector<recipe::Cuisine>& cuisines = snapshot.cuisines();
  SimilarResult result;
  result.region = region;
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (c == *index) continue;
    result.neighbors.emplace_back(cuisines[c].region(), matrix[*index][c]);
  }
  std::sort(result.neighbors.begin(), result.neighbors.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (result.neighbors.size() > k) result.neighbors.resize(k);
  return result;
}

}  // namespace culinary::serving
