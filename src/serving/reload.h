#ifndef CULINARYLAB_SERVING_RELOAD_H_
#define CULINARYLAB_SERVING_RELOAD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "robustness/circuit_breaker.h"
#include "robustness/error_sink.h"
#include "robustness/retry.h"
#include "serving/engine.h"
#include "serving/snapshot.h"
#include "snapshot/snapshot.h"

namespace culinary::serving {

/// Where a (re)load gets its world from. With a `snapshot_path`, the load
/// goes through `LoadWorldSnapshotOrRebuild` under `policy` (quarantine +
/// `rebuild` on corruption, per the snapshot degradation contract); without
/// one, `rebuild` is called directly.
struct SnapshotSource {
  /// Binary world snapshot to load; empty = rebuild-only source.
  std::string snapshot_path;
  /// Digest the snapshot must carry (stale otherwise). Ignored when
  /// `snapshot_path` is empty.
  uint64_t expected_digest = 0;
  robustness::ErrorPolicy policy = robustness::ErrorPolicy::kBestEffort;
  /// Rewrite a fresh snapshot at `snapshot_path` after a rebuild.
  bool rewrite_snapshot = false;
  /// Rebuilds the world from source data (required: corruption fallback
  /// with a path, the whole load without one).
  snapshot::WorldRebuildFn rebuild;
  /// Build-time knobs for the resulting `ServingSnapshot`.
  ServingSnapshotOptions snapshot_options;
};

/// Loads a `ServingSnapshot` from `source` (used for the initial load; the
/// same function body serves every retry attempt of `ReloadManager`).
culinary::Result<std::shared_ptr<const ServingSnapshot>> BuildServingSnapshot(
    const SnapshotSource& source);

/// Hardened hot-reload around `QueryEngine::Reload`: retries transient
/// failures, trips a circuit breaker on consecutive failures, and on any
/// failure leaves the engine serving its last good snapshot in `kDegraded`.
///
/// Flow of one `Reload(source)`:
///
///   1. fault gate `serving.reload` (chaos hook for "source unreachable");
///   2. circuit breaker: while open, the attempt is refused immediately
///      with `kUnavailable` — a source that has failed N times in a row is
///      not hammered again until the cooldown admits a half-open probe;
///   3. load via `BuildServingSnapshot` under `options.retry` (transient
///      statuses back off and retry; corrupt-snapshot handling happens
///      *inside* the load per `source.policy`);
///   4. publish via `QueryEngine::Reload`.
///
/// Success records into the breaker and returns the engine to `kServing`
/// (via `Reload`). Failure counts `serving.reload_failed`, records a
/// breaker failure, marks the engine `kDegraded` (`serving.degraded`
/// counter) — and the engine keeps answering from the previous snapshot;
/// nothing is ever published partially.
///
/// Thread-compatible: callers serialize reloads (the serve loop is the only
/// reloader in practice); the engine handles queries concurrently.
class ReloadManager {
 public:
  struct Options {
    robustness::RetryPolicy retry = robustness::RetryPolicy::Default();
    robustness::CircuitBreaker::Options breaker;
    /// Millisecond clock for the breaker cooldown; null = steady clock.
    /// Tests inject a fake clock to drive open → half-open
    /// deterministically.
    std::function<int64_t()> clock_ms;
  };

  /// `engine` must outlive the manager.
  explicit ReloadManager(QueryEngine* engine)
      : ReloadManager(engine, Options{}) {}
  ReloadManager(QueryEngine* engine, Options options);

  /// Runs one hardened reload. Returns OK on publish; otherwise the load
  /// error (engine left degraded on its last good snapshot) or
  /// `kUnavailable` when the breaker refused the attempt.
  culinary::Status Reload(const SnapshotSource& source);

  const robustness::CircuitBreaker& breaker() const { return breaker_; }
  uint64_t failed_reloads() const {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  int64_t NowMs() const;

  QueryEngine* engine_;
  Options options_;
  robustness::CircuitBreaker breaker_;
  std::atomic<uint64_t> failed_{0};
};

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_RELOAD_H_
