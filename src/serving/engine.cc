#include "serving/engine.h"

#include <chrono>
#include <utility>

#include "obs/obs.h"

namespace culinary::serving {

namespace {

/// Per-endpoint latency histograms. The obs macros cache their metric
/// handle in a function-local static keyed by call site, so each endpoint
/// needs its own literal-name call site.
void RecordLatencyUs(Endpoint endpoint, uint64_t us) {
  switch (endpoint) {
    case Endpoint::kPing:
      CULINARY_OBS_OBSERVE_U64("serving.ping_latency_us", us);
      break;
    case Endpoint::kScore:
      CULINARY_OBS_OBSERVE_U64("serving.score_latency_us", us);
      break;
    case Endpoint::kSuggest:
      CULINARY_OBS_OBSERVE_U64("serving.suggest_latency_us", us);
      break;
    case Endpoint::kFingerprint:
      CULINARY_OBS_OBSERVE_U64("serving.fingerprint_latency_us", us);
      break;
    case Endpoint::kSimilar:
      CULINARY_OBS_OBSERVE_U64("serving.similar_latency_us", us);
      break;
  }
}

}  // namespace

const char* EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kPing:
      return "ping";
    case Endpoint::kScore:
      return "score";
    case Endpoint::kSuggest:
      return "suggest";
    case Endpoint::kFingerprint:
      return "fingerprint";
    case Endpoint::kSimilar:
      return "similar";
  }
  return "unknown";
}

QueryEngine::QueryEngine(std::shared_ptr<const ServingSnapshot> snapshot,
                         const QueryEngineOptions& options)
    : published_(std::make_shared<const PublishedWorld>(
          PublishedWorld{std::move(snapshot), 1})),
      queue_capacity_(options.queue_capacity) {
  const size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() { Stop(); }

culinary::Status QueryEngine::Reload(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return culinary::Status::InvalidArgument("cannot publish a null snapshot");
  }
  // The lifecycle mutex is what makes Reload-vs-Stop safe: Stop holds it
  // for the whole shutdown (including worker joins), so by the time a
  // destructor can run, no Reload can be between the stopped_ check and the
  // publish below.
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    return culinary::Status::FailedPrecondition(
        "engine stopped; reload rejected");
  }
  const auto current = published_.load(std::memory_order_acquire);
  const uint64_t next_generation =
      (current == nullptr ? 0 : current->generation) + 1;
  published_.store(std::make_shared<const PublishedWorld>(
                       PublishedWorld{std::move(snapshot), next_generation}),
                   std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  CULINARY_OBS_COUNT("serving.reloads", 1);
  return culinary::Status::OK();
}

std::shared_ptr<const ServingSnapshot> QueryEngine::snapshot() const {
  const auto world = published_.load(std::memory_order_acquire);
  return world == nullptr ? nullptr : world->snapshot;
}

uint64_t QueryEngine::generation() const {
  const auto world = published_.load(std::memory_order_acquire);
  return world == nullptr ? 0 : world->generation;
}

Response QueryEngine::Execute(const Request& request) const {
  const auto start = std::chrono::steady_clock::now();
  Response response;
  response.endpoint = request.endpoint;

  // Pin one published world for the whole evaluation: a concurrent Reload
  // swaps the atomic underneath us, but this shared_ptr keeps our snapshot
  // alive and every read below consistent.
  const std::shared_ptr<const PublishedWorld> world =
      published_.load(std::memory_order_acquire);
  if (world == nullptr || world->snapshot == nullptr) {
    response.status =
        culinary::Status::FailedPrecondition("no snapshot published");
    return response;
  }
  response.generation = world->generation;
  const ServingSnapshot& snap = *world->snapshot;

  QueryContext context;
  context.cancel = request.cancel;
  if (request.deadline_ms >= 0) {
    context.deadline = culinary::Deadline::After(request.deadline_ms);
  }
  const bool by_name = !request.ingredient_names.empty();

  switch (request.endpoint) {
    case Endpoint::kPing:
      response.status = culinary::Status::OK();
      break;
    case Endpoint::kScore: {
      auto result =
          by_name ? ScoreRecipe(snap, request.ingredient_names, context)
                  : ScoreRecipeIds(snap, request.ingredient_ids, context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kSuggest: {
      auto result =
          by_name
              ? SuggestPairings(snap, request.ingredient_names, request.k,
                                context)
              : SuggestPairingsIds(snap, request.ingredient_ids, request.k,
                                   context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kFingerprint: {
      auto result = Fingerprint(snap, request.region, request.k, context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case Endpoint::kSimilar: {
      auto result = SimilarCuisines(snap, request.region, request.k, context);
      if (result.ok()) {
        response.payload = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
  }

  executed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  RecordLatencyUs(request.endpoint, us);
  CULINARY_OBS_COUNT("serving.requests", 1);
  if (!response.status.ok()) CULINARY_OBS_COUNT("serving.errors", 1);
  return response;
}

std::future<Response> QueryEngine::Submit(Request request) {
  PendingRequest item;
  item.request = std::move(request);
  std::future<Response> future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!stopped_.load(std::memory_order_acquire) &&
        queue_.size() < queue_capacity_) {
      queue_.push_back(std::move(item));
      accepted_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
      return future;
    }
  }
  // Explicit shed: the caller gets a ready kUnavailable future instead of
  // unbounded queueing. Retryable by design.
  shed_.fetch_add(1, std::memory_order_relaxed);
  CULINARY_OBS_COUNT("serving.shed", 1);
  Response response;
  response.endpoint = item.request.endpoint;
  response.generation = generation();
  response.status = culinary::Status::Unavailable(
      stopped() ? "engine stopped" : "admission queue full");
  item.promise.set_value(std::move(response));
  return future;
}

void QueryEngine::WorkerLoop() {
  for (;;) {
    PendingRequest item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopped_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopped and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    item.promise.set_value(Execute(item.request));
  }
}

void QueryEngine::Stop() {
  // Held across the joins so a concurrent Stop (or ~QueryEngine) blocks
  // until shutdown completes, and a concurrent Reload is rejected rather
  // than publishing into a dying engine.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopped_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

QueryEngine::Stats QueryEngine::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace culinary::serving
