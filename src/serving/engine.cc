#include "serving/engine.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "obs/slo.h"
#include "robustness/fault_injector.h"

namespace culinary::serving {

namespace {

/// Per-endpoint latency histograms. The obs macros cache their metric
/// handle in a function-local static keyed by call site, so each endpoint
/// needs its own literal-name call site.
void RecordLatencyUs(Endpoint endpoint, uint64_t us) {
  switch (endpoint) {
    case Endpoint::kPing:
      CULINARY_OBS_OBSERVE_U64("serving.ping_latency_us", us);
      break;
    case Endpoint::kScore:
      CULINARY_OBS_OBSERVE_U64("serving.score_latency_us", us);
      break;
    case Endpoint::kSuggest:
      CULINARY_OBS_OBSERVE_U64("serving.suggest_latency_us", us);
      break;
    case Endpoint::kFingerprint:
      CULINARY_OBS_OBSERVE_U64("serving.fingerprint_latency_us", us);
      break;
    case Endpoint::kSimilar:
      CULINARY_OBS_OBSERVE_U64("serving.similar_latency_us", us);
      break;
  }
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Smoothing factor for the service-time and batch-size EWMAs: heavy enough
/// that a few slow requests move the estimate, light enough that one outlier
/// does not swing admission.
constexpr double kServiceEwmaAlpha = 0.2;

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const ServingSnapshot> snapshot,
                         const QueryEngineOptions& options)
    : published_(std::make_shared<const PublishedWorld>(
          PublishedWorld{std::move(snapshot), 1})),
      options_(options),
      queue_capacity_(options.queue_capacity),
      ewma_service_us_(options.initial_service_estimate_us),
      ewma_batch_size_(options.initial_batch_size_estimate < 1.0
                           ? 1.0
                           : options.initial_batch_size_estimate) {
  num_workers_ = options.num_threads == 0 ? 1 : options.num_threads;
  beats_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    beats_.push_back(std::make_unique<WorkerBeat>());
  }
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.enable_watchdog) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  health_.store(HealthState::kServing, std::memory_order_release);
}

QueryEngine::~QueryEngine() { Stop(); }

culinary::Status QueryEngine::Reload(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return culinary::Status::InvalidArgument("cannot publish a null snapshot");
  }
  // The lifecycle mutex is what makes Reload-vs-Stop safe: Stop holds it
  // for the whole shutdown (including worker joins), so by the time a
  // destructor can run, no Reload can be between the stopped_ check and the
  // publish below.
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    return culinary::Status::FailedPrecondition(
        "engine stopped; reload rejected");
  }
  if (health_.load(std::memory_order_acquire) == HealthState::kDraining) {
    return culinary::Status::FailedPrecondition(
        "engine draining; reload rejected");
  }
  const auto current = published_.load(std::memory_order_acquire);
  const uint64_t next_generation =
      (current == nullptr ? 0 : current->generation) + 1;
  published_.store(std::make_shared<const PublishedWorld>(
                       PublishedWorld{std::move(snapshot), next_generation}),
                   std::memory_order_release);
  // A clean publish is the recovery edge of the health machine: degraded
  // (or still-starting) engines return to serving. Draining/stopped were
  // rejected above, so this store cannot resurrect a shutdown.
  health_.store(HealthState::kServing, std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  CULINARY_OBS_COUNT("serving.reloads", 1);
  return culinary::Status::OK();
}

void QueryEngine::MarkDegraded() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  HealthState h = health_.load(std::memory_order_acquire);
  if (h == HealthState::kStarting || h == HealthState::kServing) {
    health_.store(HealthState::kDegraded, std::memory_order_release);
    CULINARY_OBS_COUNT("serving.degraded", 1);
  }
}

void QueryEngine::BeginDrain() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const HealthState h = health_.load(std::memory_order_acquire);
  if (h == HealthState::kStopped || h == HealthState::kDraining) return;
  {
    // Under queue_mu_ so a Submit holding the lock either admitted before
    // the drain or observes it; nothing slips in "between" states.
    std::lock_guard<std::mutex> qlock(queue_mu_);
    health_.store(HealthState::kDraining, std::memory_order_release);
  }
  CULINARY_OBS_COUNT("serving.drains", 1);
}

std::shared_ptr<const ServingSnapshot> QueryEngine::snapshot() const {
  const auto world = published_.load(std::memory_order_acquire);
  return world == nullptr ? nullptr : world->snapshot;
}

uint64_t QueryEngine::generation() const {
  const auto world = published_.load(std::memory_order_acquire);
  return world == nullptr ? 0 : world->generation;
}

Response QueryEngine::Execute(const Request& request) const {
  const auto start = std::chrono::steady_clock::now();
  Response response;
  response.endpoint = request.endpoint;

  // Chaos hook: a DelayMs plan here makes this worker look stalled to the
  // watchdog; an error plan fails the request after the pin below would
  // have succeeded.
  culinary::Status injected =
      robustness::FaultInjector::Global().Check(robustness::kFaultServingExecute);

  // Pin one published world for the whole evaluation: a concurrent Reload
  // swaps the atomic underneath us, but this shared_ptr keeps our snapshot
  // alive and every read below consistent.
  const std::shared_ptr<const PublishedWorld> world =
      published_.load(std::memory_order_acquire);
  if (world == nullptr || world->snapshot == nullptr) {
    response.status =
        culinary::Status::FailedPrecondition("no snapshot published");
    return response;
  }
  response.generation = world->generation;

  if (!injected.ok()) {
    response.status = injected;
  } else {
    const uint64_t generation = response.generation;
    response = EvaluateQuery(*world->snapshot, request, MakeContext(request));
    response.generation = generation;
  }

  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    ++executed_;
    ++batches_;
    // Feed the admission estimator. One mutex hop per request is in the
    // noise next to query evaluation, and it keeps stats()/the estimate
    // consistent without an atomics dance.
    if (ewma_service_us_ <= 0.0) {
      ewma_service_us_ = static_cast<double>(us);
    } else {
      ewma_service_us_ += kServiceEwmaAlpha *
                          (static_cast<double>(us) - ewma_service_us_);
    }
    // A direct call is a unit of work of size 1; pull the batch estimate
    // back toward it so the admission divisor tracks what workers actually
    // retire per unit, not a historical best case.
    ewma_batch_size_ += kServiceEwmaAlpha * (1.0 - ewma_batch_size_);
  }
  RecordLatencyUs(request.endpoint, us);
  CULINARY_OBS_OBSERVE_U64("serving.batch_size", 1);
  CULINARY_OBS_COUNT("serving.requests", 1);
  if (!response.status.ok()) CULINARY_OBS_COUNT("serving.errors", 1);
  if (options_.slo != nullptr) {
    const int64_t t_s = SteadyNowMs() / 1000;
    options_.slo->Record(EndpointName(request.endpoint),
                         static_cast<double>(us), response.status.ok(), t_s);
  }
  return response;
}

std::vector<Response> QueryEngine::ExecuteBatch(
    const std::vector<Request>& requests) const {
  std::vector<Response> responses;
  if (requests.empty()) return responses;
  const auto start = std::chrono::steady_clock::now();

  // One chaos check and one RCU pin for the whole batch — the amortization
  // this path exists for. Every response reports the same generation.
  culinary::Status injected =
      robustness::FaultInjector::Global().Check(robustness::kFaultServingExecute);
  const std::shared_ptr<const PublishedWorld> world =
      published_.load(std::memory_order_acquire);
  if (world == nullptr || world->snapshot == nullptr) {
    responses.resize(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i].endpoint = requests[i].endpoint;
      responses[i].status =
          culinary::Status::FailedPrecondition("no snapshot published");
    }
    return responses;
  }
  if (!injected.ok()) {
    responses.resize(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i].endpoint = requests[i].endpoint;
      responses[i].generation = world->generation;
      responses[i].status = injected;
    }
  } else {
    responses = EvaluateBatch(*world->snapshot, requests);
    for (Response& response : responses) {
      response.generation = world->generation;
    }
  }

  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  const double batch = static_cast<double>(requests.size());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    executed_ += requests.size();
    ++batches_;
    if (requests.size() > 1) coalesced_ += requests.size() - 1;
    if (ewma_service_us_ <= 0.0) {
      ewma_service_us_ = static_cast<double>(us);
    } else {
      ewma_service_us_ += kServiceEwmaAlpha *
                          (static_cast<double>(us) - ewma_service_us_);
    }
    ewma_batch_size_ += kServiceEwmaAlpha * (batch - ewma_batch_size_);
  }
  // Per-request latency is the batch wall time: that is what each coalesced
  // caller waited for its answer.
  size_t errors = 0;
  const int64_t t_s = SteadyNowMs() / 1000;
  for (size_t i = 0; i < requests.size(); ++i) {
    RecordLatencyUs(requests[i].endpoint, us);
    if (!responses[i].status.ok()) ++errors;
    if (options_.slo != nullptr) {
      options_.slo->Record(EndpointName(requests[i].endpoint),
                           static_cast<double>(us),
                           responses[i].status.ok(), t_s);
    }
  }
  CULINARY_OBS_OBSERVE_U64("serving.batch_size",
                           static_cast<uint64_t>(requests.size()));
  CULINARY_OBS_COUNT("serving.requests", static_cast<int64_t>(requests.size()));
  if (requests.size() > 1) {
    CULINARY_OBS_COUNT("serving.coalesced",
                       static_cast<int64_t>(requests.size() - 1));
  }
  if (errors > 0) {
    CULINARY_OBS_COUNT("serving.errors", static_cast<int64_t>(errors));
  }
  return responses;
}

std::future<Response> QueryEngine::Submit(Request request) {
  PendingRequest item;
  item.request = std::move(request);
  item.admitted_ms = SteadyNowMs();
  std::future<Response> future = item.promise.get_future();

  // Chaos hook for the admission path itself (delay or refuse at the door).
  culinary::Status admit =
      robustness::FaultInjector::Global().Check(robustness::kFaultServingAdmit);

  culinary::Status shed_status;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!admit.ok()) {
      shed_status = admit.IsTransient()
                        ? admit
                        : culinary::Status::Unavailable(admit.message());
    } else if (stopped_.load(std::memory_order_acquire)) {
      shed_status = culinary::Status::Unavailable("engine stopped");
    } else if (health_.load(std::memory_order_acquire) ==
               HealthState::kDraining) {
      shed_status = culinary::Status::Unavailable("draining; admission closed");
    } else if (queue_.size() >= queue_capacity_) {
      shed_status = culinary::Status::Unavailable("admission queue full");
    } else {
      // Deadline-aware shed: estimate how long this request would wait
      // behind the queue plus the requests already on workers. If it cannot
      // start (and finish) inside its own deadline, refusing now is strictly
      // better than admitting it to time out inside evaluation. The EWMA
      // measures one *unit of work*, and a coalescing worker retires
      // ~ewma_batch_size_ queue slots per unit, so the per-slot wait divides
      // by the observed mean batch size — without it, shedding over-fires
      // the moment coalescing kicks in.
      const double deadline_ms = item.request.deadline_ms;
      if (options_.deadline_aware_admission && deadline_ms >= 0.0 &&
          ewma_service_us_ > 0.0) {
        const double batch_divisor =
            ewma_batch_size_ < 1.0 ? 1.0 : ewma_batch_size_;
        const double est_wait_us =
            static_cast<double>(queue_.size() + busy_workers_ + 1) *
            ewma_service_us_ /
            (static_cast<double>(num_workers_) * batch_divisor);
        if (est_wait_us > deadline_ms * 1000.0) {
          shed_status = culinary::Status::Unavailable(
              "deadline-aware shed: estimated wait " +
              std::to_string(static_cast<int64_t>(est_wait_us)) +
              "us exceeds deadline " +
              std::to_string(static_cast<int64_t>(deadline_ms)) + "ms");
          ++deadline_shed_;
        }
      }
      if (shed_status.ok()) {
        queue_.push_back(std::move(item));
        ++accepted_;
        queue_cv_.notify_one();
        return future;
      }
    }
    // Every refusal path lands here with queue_mu_ still held, so the shed
    // counter moves in the same critical section the decision was made in.
    ++shed_;
  }
  CULINARY_OBS_COUNT("serving.shed", 1);
  Response response;
  response.endpoint = item.request.endpoint;
  response.generation = generation();
  response.status = std::move(shed_status);
  item.promise.set_value(std::move(response));
  return future;
}

void QueryEngine::WorkerLoop(size_t worker_index) {
  WorkerBeat& beat = *beats_[worker_index];
  const size_t batch_max = options_.batch_max == 0 ? 1 : options_.batch_max;
  std::vector<PendingRequest> unit;
  for (;;) {
    unit.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopped_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopped and fully drained
      unit.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Opportunistic coalescing: drain consecutive compatible requests —
      // same endpoint, deadline not already burned by queue wait — into one
      // unit of work. Draining stops at the first incompatible head (never
      // skips past it), so completion order stays FIFO per endpoint and an
      // expired-deadline request still gets its own evaluation, where it
      // times out with the usual kDeadlineExceeded.
      if (batch_max > 1) {
        const Endpoint endpoint = unit.front().request.endpoint;
        const int64_t now_ms = SteadyNowMs();
        while (unit.size() < batch_max && !queue_.empty()) {
          const PendingRequest& next = queue_.front();
          if (next.request.endpoint != endpoint) break;
          if (next.request.deadline_ms >= 0.0 &&
              static_cast<double>(now_ms - next.admitted_ms) >
                  next.request.deadline_ms) {
            break;
          }
          unit.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      ++busy_workers_;
    }
    beat.busy_since_ms.store(SteadyNowMs(), std::memory_order_release);
    if (unit.size() == 1) {
      unit.front().promise.set_value(Execute(unit.front().request));
    } else {
      std::vector<Request> requests;
      requests.reserve(unit.size());
      for (PendingRequest& pending : unit) {
        requests.push_back(std::move(pending.request));
      }
      std::vector<Response> responses = ExecuteBatch(requests);
      for (size_t i = 0; i < unit.size(); ++i) {
        unit[i].promise.set_value(std::move(responses[i]));
      }
    }
    beat.busy_since_ms.store(-1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --busy_workers_;
    }
  }
}

void QueryEngine::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.watchdog_interval_ms);
  for (;;) {
    watchdog_cv_.wait_for(lock, interval, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const int64_t now_ms = SteadyNowMs();
    size_t stalled = 0;
    for (const auto& beat : beats_) {
      const int64_t since = beat->busy_since_ms.load(std::memory_order_acquire);
      if (since >= 0 &&
          static_cast<double>(now_ms - since) >= options_.stall_threshold_ms) {
        ++stalled;
        if (!beat->flagged) {
          // Count each stall once per request: the flag clears when the
          // worker's heartbeat goes idle or a new request starts on time.
          beat->flagged = true;
          worker_stalls_.fetch_add(1, std::memory_order_relaxed);
          CULINARY_OBS_COUNT("serving.worker_stalled", 1);
        }
      } else {
        beat->flagged = false;
      }
    }
    CULINARY_OBS_GAUGE_SET("serving.stalled_workers",
                           static_cast<double>(stalled));
  }
}

void QueryEngine::Stop() {
  // Held across the joins so a concurrent Stop (or ~QueryEngine) blocks
  // until shutdown completes, and a concurrent Reload is rejected rather
  // than publishing into a dying engine.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopped_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> wlock(watchdog_mu_);
    watchdog_stop_ = true;
    watchdog_cv_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
  health_.store(HealthState::kStopped, std::memory_order_release);
}

QueryEngine::Stats QueryEngine::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.accepted = accepted_;
    stats.shed = shed_;
    stats.deadline_shed = deadline_shed_;
    stats.executed = executed_;
    stats.batches = batches_;
    stats.coalesced = coalesced_;
  }
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  stats.worker_stalls = worker_stalls_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace culinary::serving
