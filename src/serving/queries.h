#ifndef CULINARYLAB_SERVING_QUERIES_H_
#define CULINARYLAB_SERVING_QUERIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/null_models.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "flavor/ingredient.h"
#include "recipe/region.h"
#include "serving/snapshot.h"

namespace culinary::serving {

/// The point-query endpoints, as pure functions of one immutable
/// `ServingSnapshot`. The engine wraps these with admission control and
/// metrics; tests call them directly to pin the batch-path equivalence
/// (every answer must be bit-identical to calling `analysis::*` on the same
/// world).
///
/// All endpoints take the per-request lifecycle pair: `cancel` / `deadline`
/// are checked at entry and, for the candidate scans, cooperatively inside
/// the loop, so one slow query cannot overstay a request budget.

/// Per-request lifecycle + paging context.
struct QueryContext {
  culinary::CancellationToken cancel{};
  culinary::Deadline deadline{};
};

// --- request / response types -----------------------------------------------
// (These live here rather than in engine.h so the batch evaluator below can
// speak the same vocabulary without a circular include; the engine re-exports
// them by including this header.)

/// The five point-query endpoints the engine serves.
enum class Endpoint {
  kPing = 0,     ///< liveness + current snapshot generation
  kScore,        ///< N_s + classification of an ingredient set
  kSuggest,      ///< top-K pairing partners for an ingredient set
  kFingerprint,  ///< one cuisine's culinary fingerprint
  kSimilar,      ///< nearest cuisines to one region
};

/// Stable lower-case wire/metric name of an endpoint ("score", ...).
const char* EndpointName(Endpoint endpoint);

/// One point query. `ingredient_names` wins when non-empty; otherwise
/// `ingredient_ids` is used (score/suggest only). `k` is the result budget
/// for suggest/similar and the top-ingredient count for fingerprint.
struct Request {
  Endpoint endpoint = Endpoint::kPing;
  std::vector<std::string> ingredient_names;
  std::vector<flavor::IngredientId> ingredient_ids;
  recipe::Region region = recipe::Region::kWorld;
  size_t k = 10;
  /// Per-request latency budget in milliseconds; negative = unbounded. The
  /// budget is evaluation-relative: the clock starts when evaluation starts
  /// (single or batched), not at submission.
  double deadline_ms = -1.0;
  /// Optional caller-side cancellation; a default token never cancels.
  culinary::CancellationToken cancel;
};

// --- score ------------------------------------------------------------------

struct ScoreResult {
  /// N_s of the resolved ingredient set over the world pairing cache —
  /// exactly `analysis::RecipePairingScore(world_cache, ids)`.
  double score = 0.0;
  /// Ingredient ids that resolved, ascending (deduplicated).
  std::vector<flavor::IngredientId> resolved;
  /// Request names that did not resolve against the registry.
  std::vector<std::string> unresolved;
  /// Most plausible source cuisine of the set (kWorld when the classifier
  /// is empty) — exactly `classifier().Classify(resolved)`.
  recipe::Region classified = recipe::Region::kWorld;
};

/// Scores an ingredient set given by name. At least one name must resolve
/// (kInvalidArgument otherwise).
culinary::Result<ScoreResult> ScoreRecipe(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names,
    const QueryContext& context = {});

/// Id-level variant (ids unknown to the registry are reported unresolved by
/// stringified id).
culinary::Result<ScoreResult> ScoreRecipeIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids,
    const QueryContext& context = {});

// --- suggest ----------------------------------------------------------------

struct Suggestion {
  flavor::IngredientId id = flavor::kInvalidIngredient;
  std::string name;
  /// Mean shared-compound count between the candidate and the request set:
  /// (Σ_{i ∈ set} |F_c ∩ F_i|) / |set| — the marginal flavor-sharing the
  /// candidate would add, in the paper's N_s units.
  double gain = 0.0;
};

/// Top-`k` pairing partners for an ingredient set: every world-cache
/// ingredient not already in the set, ranked by descending `gain`.
/// Deterministic under score ties — equal gains order by ascending
/// ingredient id — so the top-K list is bit-identical no matter how many
/// serving threads race over it (the same contract the sweeps guarantee).
culinary::Result<std::vector<Suggestion>> SuggestPairings(
    const ServingSnapshot& snapshot,
    const std::vector<std::string>& ingredient_names, size_t k,
    const QueryContext& context = {});

/// Id-level variant of `SuggestPairings`.
culinary::Result<std::vector<Suggestion>> SuggestPairingsIds(
    const ServingSnapshot& snapshot,
    const std::vector<flavor::IngredientId>& ids, size_t k,
    const QueryContext& context = {});

// --- fingerprint ------------------------------------------------------------

struct FingerprintResult {
  recipe::Region region = recipe::Region::kWorld;
  size_t num_recipes = 0;
  size_t num_unique_ingredients = 0;
  double mean_recipe_size = 0.0;
  /// Mean N_s over the cuisine's pairable recipes — bit-identical to
  /// `analysis::CuisinePairingStats(world_cache, cuisine).mean()`.
  double mean_pairing = 0.0;
  /// (canonical name, frequency) of the cuisine's most-used ingredients,
  /// in `Cuisine::ByPopularity` order.
  std::vector<std::pair<std::string, int64_t>> top_ingredients;
  /// Null-model comparison, when the snapshot precomputed baselines.
  std::vector<analysis::FoodPairingResult> baselines;
};

/// The culinary fingerprint of one region (`top` popular ingredients).
/// kNotFound for a region code the snapshot does not serve.
culinary::Result<FingerprintResult> Fingerprint(
    const ServingSnapshot& snapshot, recipe::Region region, size_t top,
    const QueryContext& context = {});

// --- similar ----------------------------------------------------------------

struct SimilarResult {
  recipe::Region region = recipe::Region::kWorld;
  /// The k most similar cuisines, best first — bit-identical to
  /// `analysis::NearestCuisines` over the same cuisines and metric.
  std::vector<std::pair<recipe::Region, double>> neighbors;
};

/// Nearest cuisines to `region` under the snapshot's similarity metric.
culinary::Result<SimilarResult> SimilarCuisines(
    const ServingSnapshot& snapshot, recipe::Region region, size_t k,
    const QueryContext& context = {});

// --- dispatch: single and batched -------------------------------------------

using Payload = std::variant<std::monostate, ScoreResult,
                             std::vector<Suggestion>, FingerprintResult,
                             SimilarResult>;

struct Response {
  culinary::Status status;
  Endpoint endpoint = Endpoint::kPing;
  /// Generation of the snapshot that answered (1 = the snapshot the engine
  /// started with; bumped by every successful `Reload`). Filled by the
  /// engine; the pure evaluators below leave it 0.
  uint64_t generation = 0;
  Payload payload;
};

/// The lifecycle context for one request: the deadline clock starts now —
/// evaluation start — not at submission (queue wait is governed by the
/// deadline-aware admission estimate instead).
QueryContext MakeContext(const Request& request);

/// Evaluates one request against `snapshot`: the endpoint dispatch shared by
/// `QueryEngine::Execute` and the batch path. Pure; `generation` is left 0.
Response EvaluateQuery(const ServingSnapshot& snapshot, const Request& request,
                       const QueryContext& context);

/// Batched evaluation: answers every request against the one `snapshot`,
/// in request order.
///
/// Non-suggest endpoints dispatch through `EvaluateQuery` per element (they
/// are cheap point reads). Suggest requests — the candidate sweeps — are
/// instead gathered into a structure-of-arrays kernel that walks the
/// PairingCache triangle once for the whole batch: per-request ingredient
/// sets are resolved up front (dense indices + a `flavor::CompoundBitset`
/// membership mask each), the distinct set-member rows of the shared-compound
/// matrix are streamed sequentially into per-request gain accumulators
/// (deduplicated across requests, so a row shared by B requests is read from
/// memory once), and a final pass per request pushes candidates into a
/// bounded top-K heap under the same (gain desc, id asc) comparator the
/// single-request path sorts with. Gains are integer sums divided by the
/// same set size, and the comparator is a strict total order over unique
/// ids, so every response is bit-identical to its `EvaluateQuery` answer.
std::vector<Response> EvaluateBatch(const ServingSnapshot& snapshot,
                                    const std::vector<Request>& requests);

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_QUERIES_H_
