#include "serving/snapshot.h"

#include <algorithm>
#include <utility>

#include "analysis/contribution.h"
#include "obs/obs.h"
#include "recipe/region.h"

namespace culinary::serving {

namespace {

/// The serving half of the triangle-mismatch bugfix: a rehydrated cache is
/// only usable when its ingredient universe is exactly the world cuisine's
/// (same ids, same order — dense indices must agree) and its triangle size
/// matches its ingredient count. Anything else is a registry/triangle skew
/// that would read the wrong rows, so it is rejected as kFailedPrecondition
/// before any query can touch it.
culinary::Status ValidateWorldCache(const flavor::FlavorRegistry& registry,
                                    const recipe::Cuisine& world_cuisine,
                                    const analysis::PairingCache& cache) {
  const std::vector<flavor::IngredientId>& expected =
      world_cuisine.unique_ingredients();
  const size_t n = cache.num_ingredients();
  if (n != expected.size()) {
    return culinary::Status::FailedPrecondition(
        "world pairing cache covers " + std::to_string(n) +
        " ingredients; the world cuisine has " +
        std::to_string(expected.size()));
  }
  for (size_t i = 0; i < n; ++i) {
    const flavor::IngredientId id = cache.IdAt(i);
    if (id != expected[i]) {
      return culinary::Status::FailedPrecondition(
          "world pairing cache ingredient at dense index " +
          std::to_string(i) + " is id " + std::to_string(id) +
          "; the world cuisine has id " + std::to_string(expected[i]));
    }
    if (id < 0 ||
        id >= static_cast<flavor::IngredientId>(
                  registry.num_ingredient_slots())) {
      return culinary::Status::FailedPrecondition(
          "world pairing cache ingredient id " + std::to_string(id) +
          " is outside the registry's " +
          std::to_string(registry.num_ingredient_slots()) + " slots");
    }
  }
  const size_t expected_tri = n < 2 ? 0 : n * (n - 1) / 2;
  if (cache.triangle().size() != expected_tri) {
    return culinary::Status::FailedPrecondition(
        "world pairing cache triangle has " +
        std::to_string(cache.triangle().size()) + " entries; " +
        std::to_string(n) + " ingredients need " +
        std::to_string(expected_tri));
  }
  return culinary::Status::OK();
}

}  // namespace

const recipe::Cuisine* ServingSnapshot::CuisineForRegion(
    recipe::Region region) const {
  const int index = static_cast<int>(region);
  if (index < 0 || index >= recipe::kNumRegions) return nullptr;
  for (const recipe::Cuisine& cuisine : cuisines_) {
    if (cuisine.region() == region) return &cuisine;
  }
  return nullptr;
}

culinary::Result<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::Build(
    std::unique_ptr<flavor::FlavorRegistry> registry,
    std::unique_ptr<recipe::RecipeDatabase> database,
    std::optional<analysis::PairingCache> world_cache,
    const ServingSnapshotOptions& options) {
  if (registry == nullptr || database == nullptr) {
    return culinary::Status::InvalidArgument(
        "serving snapshot needs a registry and a database");
  }
  CULINARY_OBS_SPAN(span, "serving.snapshot_build", "serving");
  analysis::AnalysisOptions exec;
  exec.num_threads = options.num_threads;

  auto snap = std::shared_ptr<ServingSnapshot>(new ServingSnapshot());
  snap->registry_ = std::move(registry);
  snap->database_ = std::move(database);
  snap->world_cuisine_ =
      std::make_unique<recipe::Cuisine>(snap->database_->WorldCuisine());
  snap->cuisines_ = snap->database_->AllCuisines();
  snap->similarity_metric_ = options.similarity_metric;
  snap->null_recipes_ = options.null_recipes;

  if (world_cache.has_value()) {
    CULINARY_RETURN_IF_ERROR(ValidateWorldCache(
        *snap->registry_, *snap->world_cuisine_, *world_cache));
    snap->world_cache_ = std::make_unique<analysis::PairingCache>(
        std::move(world_cache).value());
  } else {
    snap->world_cache_ = std::make_unique<analysis::PairingCache>(
        *snap->registry_, snap->world_cuisine_->unique_ingredients(), exec);
  }

  // Per-cuisine pairing statistics via the exact batch-path sweep, so a
  // fingerprint's mean pairing is bit-identical to calling
  // `CuisinePairingStats` directly.
  snap->pairing_stats_.reserve(snap->cuisines_.size());
  for (const recipe::Cuisine& cuisine : snap->cuisines_) {
    snap->pairing_stats_.push_back(
        analysis::CuisinePairingStats(*snap->world_cache_, cuisine, exec));
  }

  snap->classifier_ =
      std::make_unique<analysis::CuisineClassifier>(snap->cuisines_);

  culinary::Status similarity_status;
  snap->similarity_ = analysis::CuisineSimilarityMatrix(
      snap->cuisines_, options.similarity_metric, exec, &similarity_status);
  if (!similarity_status.ok()) return similarity_status;

  snap->baselines_.assign(snap->cuisines_.size(), {});
  if (options.null_recipes > 0) {
    analysis::NullModelOptions null_options;
    null_options.num_recipes = options.null_recipes;
    null_options.seed = options.null_seed;
    null_options.exec = exec;
    for (size_t i = 0; i < snap->cuisines_.size(); ++i) {
      const recipe::Cuisine& cuisine = snap->cuisines_[i];
      if (cuisine.num_pairable_recipes() == 0) continue;
      auto result = analysis::CompareAgainstAllModels(
          *snap->world_cache_, cuisine, *snap->registry_, null_options);
      // Degenerate cuisines (an empty region in a tiny world) simply go
      // without baselines; a real sweep failure propagates.
      if (!result.ok()) {
        if (result.status().IsFailedPrecondition()) continue;
        return result.status();
      }
      snap->baselines_[i] = std::move(result).value();
    }
  }

  CULINARY_OBS_COUNT("serving.snapshot_builds", 1);
  CULINARY_OBS_GAUGE_SET(
      "serving.snapshot_recipes",
      static_cast<double>(snap->database_->num_recipes()));
  return std::shared_ptr<const ServingSnapshot>(std::move(snap));
}

culinary::Result<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromLoadedWorld(snapshot::LoadedWorld world,
                                 const ServingSnapshotOptions& options) {
  return Build(std::move(world.registry_ptr), std::move(world.database),
               std::move(world.world_cache), options);
}

culinary::Result<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromSyntheticWorld(datagen::SyntheticWorld world,
                                    const ServingSnapshotOptions& options) {
  return Build(std::move(world.universe.registry), std::move(world.database),
               std::nullopt, options);
}

}  // namespace culinary::serving
