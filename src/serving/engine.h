#ifndef CULINARYLAB_SERVING_ENGINE_H_
#define CULINARYLAB_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "serving/queries.h"
#include "serving/snapshot.h"

namespace culinary::serving {

/// The five point-query endpoints the engine serves.
enum class Endpoint {
  kPing = 0,     ///< liveness + current snapshot generation
  kScore,        ///< N_s + classification of an ingredient set
  kSuggest,      ///< top-K pairing partners for an ingredient set
  kFingerprint,  ///< one cuisine's culinary fingerprint
  kSimilar,      ///< nearest cuisines to one region
};

/// Stable lower-case wire/metric name of an endpoint ("score", ...).
const char* EndpointName(Endpoint endpoint);

/// One point query. `ingredient_names` wins when non-empty; otherwise
/// `ingredient_ids` is used (score/suggest only). `k` is the result budget
/// for suggest/similar and the top-ingredient count for fingerprint.
struct Request {
  Endpoint endpoint = Endpoint::kPing;
  std::vector<std::string> ingredient_names;
  std::vector<flavor::IngredientId> ingredient_ids;
  recipe::Region region = recipe::Region::kWorld;
  size_t k = 10;
  /// Per-request latency budget in milliseconds; negative = unbounded.
  double deadline_ms = -1.0;
  /// Optional caller-side cancellation; a default token never cancels.
  culinary::CancellationToken cancel;
};

using Payload = std::variant<std::monostate, ScoreResult,
                             std::vector<Suggestion>, FingerprintResult,
                             SimilarResult>;

struct Response {
  culinary::Status status;
  Endpoint endpoint = Endpoint::kPing;
  /// Generation of the snapshot that answered (1 = the snapshot the engine
  /// started with; bumped by every successful `Reload`).
  uint64_t generation = 0;
  Payload payload;
};

struct QueryEngineOptions {
  /// Worker threads draining the admission queue (clamped to >= 1).
  size_t num_threads = 4;
  /// Admission-queue bound: a `Submit` beyond this many waiting requests is
  /// shed with `kUnavailable` instead of queueing without limit.
  size_t queue_capacity = 256;
};

/// Resident query engine: answers concurrent point queries against an
/// immutable `ServingSnapshot`, swapped RCU-style on reload.
///
/// Publication is one `std::atomic<std::shared_ptr<const PublishedWorld>>`
/// swap, where `PublishedWorld` pairs the snapshot with its generation so a
/// query observes a consistent (snapshot, generation) or the previous one —
/// never a half-published state. A query pins the shared_ptr for its whole
/// evaluation; a concurrent `Reload` retires the old world only when the
/// last in-flight query drops its pin. No query ever blocks on — or
/// observes — a partially ingested world: `ServingSnapshot::Build` runs
/// entirely before `Reload` is called.
///
/// `Stop` and `Reload` are serialized by a lifecycle mutex: a reload racing
/// shutdown either publishes before the engine stops or is rejected with
/// `kFailedPrecondition` — it can never publish into a stopped (or
/// destructing) engine. `Stop` is idempotent and drains queued requests
/// (their futures complete with real answers) before joining the workers.
class QueryEngine {
 public:
  /// Starts `options.num_threads` workers serving `snapshot` (non-null) as
  /// generation 1.
  explicit QueryEngine(std::shared_ptr<const ServingSnapshot> snapshot,
                       const QueryEngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Atomically publishes `snapshot` (non-null) as the next generation.
  /// In-flight queries keep answering from the generation they pinned.
  /// Returns kFailedPrecondition once the engine has stopped, and
  /// kInvalidArgument for a null snapshot (nothing is published either
  /// way).
  culinary::Status Reload(std::shared_ptr<const ServingSnapshot> snapshot);

  /// The currently published snapshot / generation. Any thread, any time.
  std::shared_ptr<const ServingSnapshot> snapshot() const;
  uint64_t generation() const;

  /// Evaluates `request` synchronously on the calling thread against the
  /// currently published snapshot, honoring the request's deadline and
  /// cancellation token inside the evaluation. Always records per-endpoint
  /// latency + request counters. Thread-safe; usable alongside `Submit`.
  Response Execute(const Request& request) const;

  /// Queued submission through the bounded admission queue. When the queue
  /// is full — or the engine has stopped — the returned future is
  /// immediately ready with `kUnavailable` (explicit shed; retryable).
  std::future<Response> Submit(Request request);

  /// Stops admission, drains queued requests, joins workers. Idempotent;
  /// concurrent calls serialize and all return after shutdown completes.
  void Stop();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  struct Stats {
    uint64_t accepted = 0;  ///< requests admitted to the queue
    uint64_t shed = 0;      ///< requests refused with kUnavailable
    uint64_t executed = 0;  ///< requests evaluated (queued + direct)
    uint64_t reloads = 0;   ///< successful snapshot swaps
  };
  Stats stats() const;

 private:
  /// Snapshot + generation, published as one unit so they can never be
  /// observed out of step.
  struct PublishedWorld {
    std::shared_ptr<const ServingSnapshot> snapshot;
    uint64_t generation = 0;
  };

  struct PendingRequest {
    Request request;
    std::promise<Response> promise;
  };

  void WorkerLoop();

  std::atomic<std::shared_ptr<const PublishedWorld>> published_;

  /// Serializes Reload against Stop (satellite: a reload racing shutdown
  /// must not publish into a destroyed engine).
  std::mutex lifecycle_mu_;
  std::atomic<bool> stopped_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::vector<std::thread> workers_;
  size_t queue_capacity_ = 0;

  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> shed_{0};
  mutable std::atomic<uint64_t> executed_{0};
  mutable std::atomic<uint64_t> reloads_{0};
};

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_ENGINE_H_
