#ifndef CULINARYLAB_SERVING_ENGINE_H_
#define CULINARYLAB_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "serving/health.h"
#include "serving/queries.h"
#include "serving/snapshot.h"

namespace culinary::obs {
class SloMonitor;
}  // namespace culinary::obs

namespace culinary::serving {

// Endpoint / Request / Payload / Response live in serving/queries.h (shared
// with the pure batch evaluator); this header re-exports them.

struct QueryEngineOptions {
  /// Worker threads draining the admission queue (clamped to >= 1).
  size_t num_threads = 4;
  /// Admission-queue bound: a `Submit` beyond this many waiting requests is
  /// shed with `kUnavailable` instead of queueing without limit.
  size_t queue_capacity = 256;

  /// Opportunistic coalescing: a worker that dequeues a request also drains
  /// up to this many compatible waiting requests (same endpoint, deadline
  /// not already exhausted by queue wait) into one unit of work, pinning the
  /// snapshot once and evaluating them through the batched kernel. 0 or 1
  /// disables coalescing.
  size_t batch_max = 16;
  /// Seed for the batch-size EWMA that scales the admission wait estimate
  /// (see `Submit`); clamped to >= 1. Leave at 1 to start pessimistic and
  /// learn the real coalescing factor from observed batches.
  double initial_batch_size_estimate = 1.0;

  /// Deadline-aware admission: a deadlined request whose estimated queue
  /// wait (from an EWMA of observed per-unit service times, divided by the
  /// observed mean batch size — a coalescing worker retires several queue
  /// slots per unit of work) already exceeds its deadline is shed at the
  /// door with `kUnavailable` instead of occupying a queue slot only to time
  /// out inside evaluation. Requests without a deadline are never shed by
  /// the estimate.
  bool deadline_aware_admission = true;
  /// Seed for the service-time EWMA in microseconds; 0 = learn from the
  /// first observed request (no estimate-based shedding until then).
  double initial_service_estimate_us = 0.0;

  /// Watchdog thread: flags a worker as stalled when one request has kept
  /// it busy beyond `stall_threshold_ms` (counter `serving.worker_stalled`,
  /// gauge `serving.stalled_workers`, `Stats::worker_stalls`).
  bool enable_watchdog = true;
  double stall_threshold_ms = 1000.0;
  double watchdog_interval_ms = 100.0;

  /// Optional SLO monitor: every `Execute` records (endpoint, latency,
  /// ok) into it, timestamped on a steady clock. Not owned; must outlive
  /// the engine.
  obs::SloMonitor* slo = nullptr;
};

/// Resident query engine: answers concurrent point queries against an
/// immutable `ServingSnapshot`, swapped RCU-style on reload.
///
/// Publication is one `std::atomic<std::shared_ptr<const PublishedWorld>>`
/// swap, where `PublishedWorld` pairs the snapshot with its generation so a
/// query observes a consistent (snapshot, generation) or the previous one —
/// never a half-published state. A query pins the shared_ptr for its whole
/// evaluation; a concurrent `Reload` retires the old world only when the
/// last in-flight query drops its pin. No query ever blocks on — or
/// observes — a partially ingested world: `ServingSnapshot::Build` runs
/// entirely before `Reload` is called.
///
/// `Stop` and `Reload` are serialized by a lifecycle mutex: a reload racing
/// shutdown either publishes before the engine stops or is rejected with
/// `kFailedPrecondition` — it can never publish into a stopped (or
/// destructing) engine. `Stop` is idempotent and drains queued requests
/// (their futures complete with real answers) before joining the workers.
class QueryEngine {
 public:
  /// Starts `options.num_threads` workers serving `snapshot` (non-null) as
  /// generation 1.
  explicit QueryEngine(std::shared_ptr<const ServingSnapshot> snapshot,
                       const QueryEngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Atomically publishes `snapshot` (non-null) as the next generation and
  /// returns health to `kServing` (also from `kDegraded` — a clean reload is
  /// the recovery path). In-flight queries keep answering from the
  /// generation they pinned. Returns kFailedPrecondition once the engine
  /// has stopped or is draining, and kInvalidArgument for a null snapshot
  /// (nothing is published either way).
  culinary::Status Reload(std::shared_ptr<const ServingSnapshot> snapshot);

  /// Current lifecycle health. Any thread, any time.
  HealthState health() const {
    return health_.load(std::memory_order_acquire);
  }

  /// Records that the engine is serving stale data (a reload failed): moves
  /// `kStarting`/`kServing` to `kDegraded`. No-op while draining/stopped —
  /// shutdown outranks degradation. Called by the reload manager; queries
  /// keep being answered from the last good snapshot either way.
  void MarkDegraded();

  /// Enters `kDraining`: admission closes (`Submit` sheds with
  /// `kUnavailable`), queued and in-flight requests still complete, and
  /// direct `Execute` keeps working so the drain can be observed. Reloads
  /// are rejected from here on. Idempotent; no-op once stopped.
  void BeginDrain();

  /// The currently published snapshot / generation. Any thread, any time.
  std::shared_ptr<const ServingSnapshot> snapshot() const;
  uint64_t generation() const;

  /// Evaluates `request` synchronously on the calling thread against the
  /// currently published snapshot, honoring the request's deadline and
  /// cancellation token inside the evaluation. Always records per-endpoint
  /// latency + request counters. Thread-safe; usable alongside `Submit`.
  Response Execute(const Request& request) const;

  /// Evaluates a whole batch against ONE pinned snapshot: the RCU pointer is
  /// loaded once, every response carries the same generation, and suggest
  /// requests go through the structure-of-arrays sweep in
  /// `EvaluateBatch` (bit-identical to per-request `Execute` calls, see
  /// queries.h). Used by coalescing workers and callable directly for bulk
  /// scoring. Per-request latency is recorded as the batch wall time — the
  /// latency a coalesced caller actually observed.
  std::vector<Response> ExecuteBatch(const std::vector<Request>& requests) const;

  /// Queued submission through the bounded admission queue. When the queue
  /// is full, the engine is draining or stopped, or a deadlined request's
  /// estimated wait already exceeds its deadline (see
  /// `deadline_aware_admission`), the returned future is immediately ready
  /// with `kUnavailable` (explicit shed; retryable).
  std::future<Response> Submit(Request request);

  /// Stops admission, drains queued requests, joins workers. Idempotent;
  /// concurrent calls serialize and all return after shutdown completes.
  void Stop();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  struct Stats {
    uint64_t accepted = 0;       ///< requests admitted to the queue
    uint64_t shed = 0;           ///< requests refused with kUnavailable
    uint64_t deadline_shed = 0;  ///< subset of `shed`: deadline-aware rejects
    uint64_t executed = 0;       ///< requests evaluated (queued + direct)
    uint64_t batches = 0;        ///< units of work evaluated (1 per Execute
                                 ///< or ExecuteBatch call)
    uint64_t coalesced = 0;      ///< requests that rode along in a batch of
                                 ///< >= 2 (batch size minus one, summed)
    uint64_t reloads = 0;        ///< successful snapshot swaps
    uint64_t worker_stalls = 0;  ///< watchdog stall detections
  };
  /// A consistent point-in-time snapshot: `accepted`, `shed`,
  /// `deadline_shed` and `executed` are read together under the queue mutex
  /// so the triple can never be observed mid-update (e.g. `executed` >
  /// `accepted` + direct calls).
  Stats stats() const;

  /// Test hook: the batch-size EWMA currently dividing the admission wait
  /// estimate (1.0 until a batch of >= 2 has been observed).
  double admission_batch_estimate() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return ewma_batch_size_;
  }

 private:
  /// Snapshot + generation, published as one unit so they can never be
  /// observed out of step.
  struct PublishedWorld {
    std::shared_ptr<const ServingSnapshot> snapshot;
    uint64_t generation = 0;
  };

  struct PendingRequest {
    Request request;
    std::promise<Response> promise;
    /// Steady-clock ms at admission; lets a coalescing worker skip requests
    /// whose deadline the queue wait has already burned.
    int64_t admitted_ms = 0;
  };

  /// Per-worker heartbeat, read by the watchdog. Heap-allocated (one cache
  /// line each) so worker stores never false-share.
  struct alignas(64) WorkerBeat {
    /// Steady-clock ms when the current request started; -1 = idle.
    std::atomic<int64_t> busy_since_ms{-1};
    /// Watchdog-private: already counted as stalled for this request.
    bool flagged = false;
  };

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();

  std::atomic<std::shared_ptr<const PublishedWorld>> published_;

  /// Serializes Reload against Stop/BeginDrain (satellite: a reload racing
  /// shutdown must not publish into a destroyed engine).
  std::mutex lifecycle_mu_;
  std::atomic<bool> stopped_{false};
  std::atomic<HealthState> health_{HealthState::kStarting};

  QueryEngineOptions options_;
  size_t num_workers_ = 1;

  /// Guards the queue, the busy-worker count, the service-time EWMA and the
  /// admission counters; `Execute` is const yet updates the EWMA and
  /// `executed_`, hence mutable.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerBeat>> beats_;
  size_t queue_capacity_ = 0;

  // All guarded by queue_mu_ so `stats()` returns a consistent snapshot.
  mutable uint64_t accepted_ = 0;
  mutable uint64_t shed_ = 0;
  mutable uint64_t deadline_shed_ = 0;
  mutable uint64_t executed_ = 0;
  mutable uint64_t batches_ = 0;
  mutable uint64_t coalesced_ = 0;
  mutable size_t busy_workers_ = 0;
  /// Service time per *unit of work* (one Execute or one whole batch).
  mutable double ewma_service_us_ = 0.0;
  /// Observed mean batch size; the admission estimate divides by it so a
  /// coalescing engine does not over-shed (each unit retires ~this many
  /// queue slots).
  mutable double ewma_batch_size_ = 1.0;

  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> worker_stalls_{0};

  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mu_
};

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_ENGINE_H_
