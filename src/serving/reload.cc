#include "serving/reload.h"

#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "robustness/fault_injector.h"

namespace culinary::serving {

culinary::Result<std::shared_ptr<const ServingSnapshot>> BuildServingSnapshot(
    const SnapshotSource& source) {
  if (source.snapshot_path.empty()) {
    if (!source.rebuild) {
      return culinary::Status::InvalidArgument(
          "snapshot source has neither a path nor a rebuild function");
    }
    auto world = source.rebuild();
    if (!world.ok()) {
      return world.status().WithContext("rebuilding world for serving");
    }
    return ServingSnapshot::FromLoadedWorld(std::move(world).value(),
                                            source.snapshot_options);
  }
  auto world = snapshot::LoadWorldSnapshotOrRebuild(
      source.snapshot_path, source.expected_digest, source.policy,
      source.rebuild, source.rewrite_snapshot);
  if (!world.ok()) {
    return world.status().WithContext("loading world snapshot " +
                                      source.snapshot_path);
  }
  return ServingSnapshot::FromLoadedWorld(std::move(world).value(),
                                          source.snapshot_options);
}

ReloadManager::ReloadManager(QueryEngine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      breaker_(options_.breaker) {}

int64_t ReloadManager::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

culinary::Status ReloadManager::Reload(const SnapshotSource& source) {
  // Chaos gate before anything else: "the reload source is unreachable",
  // as opposed to snapshot.* faults which fail the load machinery itself.
  culinary::Status gate =
      robustness::FaultInjector::Global().Check(robustness::kFaultServingReload);

  culinary::Status result;
  if (!breaker_.AllowRequest(NowMs())) {
    // Refused attempts don't touch the breaker: the cooldown keeps running
    // and the engine's health is whatever the last real attempt left it.
    CULINARY_OBS_COUNT("serving.reload_refused", 1);
    return culinary::Status::Unavailable(
        "reload circuit open; serving last good snapshot");
  }

  if (!gate.ok()) {
    result = gate;
  } else {
    auto snapshot = robustness::RetryResult(
        options_.retry, [&] { return BuildServingSnapshot(source); });
    if (snapshot.ok()) {
      result = engine_->Reload(std::move(snapshot).value());
    } else {
      result = snapshot.status();
    }
  }

  if (result.ok()) {
    breaker_.RecordSuccess();
    CULINARY_OBS_COUNT("serving.reload_ok", 1);
    return result;
  }
  // A reload the engine itself rejected (stopped/draining —
  // kFailedPrecondition) is a lifecycle verdict, not a source failure:
  // don't burn the breaker or degrade a shutting-down engine for it.
  if (!result.IsFailedPrecondition()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    CULINARY_OBS_COUNT("serving.reload_failed", 1);
    breaker_.RecordFailure(NowMs());
    engine_->MarkDegraded();
  }
  return result;
}

}  // namespace culinary::serving
