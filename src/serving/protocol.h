#ifndef CULINARYLAB_SERVING_PROTOCOL_H_
#define CULINARYLAB_SERVING_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "serving/engine.h"

namespace culinary::serving {

/// Line-delimited JSON wire format for `tools/culinary_serve`.
///
/// One request per line, one response line per request, e.g.:
///
///   {"id":"r1","op":"score","ingredients":["beef","onion","garlic"]}
///   {"id":"r2","op":"suggest","ids":[3,17],"k":5,"deadline_ms":50}
///   {"id":"r3","op":"fingerprint","region":"FRA","k":10}
///   {"id":"r4","op":"similar","region":"CHN","k":3}
///   {"id":"r5","op":"ping"}
///   {"id":"r6","op":"reload"}      <- admin: rebuild + swap the snapshot
///   {"id":"r7","op":"shutdown"}    <- admin: drain and exit
///   {"id":"r8","op":"health"}      <- admin: health state + stats
///
/// The transport is deliberately thin: the parser accepts exactly flat
/// objects of scalars and scalar arrays (no nesting), and everything else
/// is kParseError — corrupt traffic is rejected at the edge, never handed
/// to the engine.

/// A parsed request line: the engine-facing `Request` plus wire envelope.
struct WireRequest {
  /// Echoed back verbatim in the response (empty when absent).
  std::string id;
  /// The raw op string ("score", "reload", ...).
  std::string op;
  /// Populated for query ops (ping/score/suggest/fingerprint/similar).
  Request request;
  /// True for transport-level ops (reload / shutdown / health) the server
  /// handles itself; `request` is meaningless for these.
  bool is_admin = false;
};

/// Parses one LDJSON request line. kParseError for malformed JSON or a
/// nested value; kInvalidArgument for an unknown op or region code.
culinary::Result<WireRequest> ParseRequestLine(std::string_view line);

/// Serializes an engine response to one JSON line (no trailing newline).
/// Successful payloads carry their endpoint fields; failures carry
/// `"ok":false` plus the status code and message.
std::string SerializeResponse(const std::string& id, const Response& response);

/// Serializes a transport-level failure (e.g. a parse error) for `id`.
std::string SerializeError(const std::string& id,
                           const culinary::Status& status);

/// JSON string escaping for the serializers (quotes, backslashes, control
/// characters). Exposed for tests and the load generator.
std::string EscapeJson(std::string_view text);

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_PROTOCOL_H_
