#ifndef CULINARYLAB_SERVING_PROTOCOL_H_
#define CULINARYLAB_SERVING_PROTOCOL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serving/engine.h"

namespace culinary::serving {

/// Line-delimited JSON wire format for `tools/culinary_serve`.
///
/// One request per line, one response line per request, e.g.:
///
///   {"id":"r1","op":"score","ingredients":["beef","onion","garlic"]}
///   {"id":"r2","op":"suggest","ids":[3,17],"k":5,"deadline_ms":50}
///   {"id":"r3","op":"fingerprint","region":"FRA","k":10}
///   {"id":"r4","op":"similar","region":"CHN","k":3}
///   {"id":"r5","op":"ping"}
///   {"id":"r6","op":"reload"}      <- admin: rebuild + swap the snapshot
///   {"id":"r7","op":"shutdown"}    <- admin: drain and exit
///   {"id":"r8","op":"health"}      <- admin: health state + stats
///
/// Plus one explicit batching envelope: an array of query sub-requests
/// answered by one response line carrying the sub-responses in order (the
/// server submits them back-to-back, so they coalesce into shared-snapshot
/// sweeps):
///
///   {"id":"b1","op":"batch","requests":[
///       {"id":"r9","op":"score","ingredients":["beef","onion"]},
///       {"id":"r10","op":"suggest","ids":[3,17],"k":5}]}
///
/// The transport is deliberately thin: the parser accepts exactly flat
/// objects of scalars and scalar arrays, plus the single nesting level the
/// batch envelope needs (an array of flat objects, whose elements may not
/// nest further). Everything else is kParseError — corrupt traffic is
/// rejected at the edge, never handed to the engine. Sub-requests must be
/// query ops: admin ops or a nested batch inside a batch are
/// kInvalidArgument, as is an empty or oversized (> 256) batch.

/// A parsed request line: the engine-facing `Request` plus wire envelope.
struct WireRequest {
  /// Echoed back verbatim in the response (empty when absent).
  std::string id;
  /// The raw op string ("score", "reload", ...).
  std::string op;
  /// Populated for query ops (ping/score/suggest/fingerprint/similar).
  Request request;
  /// True for transport-level ops (reload / shutdown / health) the server
  /// handles itself; `request` is meaningless for these.
  bool is_admin = false;
  /// True for "op":"batch": `batch` carries the parsed sub-requests in wire
  /// order (each with `is_admin`/`is_batch` false) and `request` is
  /// meaningless.
  bool is_batch = false;
  std::vector<WireRequest> batch;
};

/// Largest accepted `"op":"batch"` envelope; larger batches are rejected at
/// parse so one line cannot queue unbounded work.
inline constexpr size_t kMaxWireBatch = 256;

/// Parses one LDJSON request line. kParseError for malformed JSON or a
/// nested value; kInvalidArgument for an unknown op or region code.
culinary::Result<WireRequest> ParseRequestLine(std::string_view line);

/// Serializes an engine response to one JSON line (no trailing newline).
/// Successful payloads carry their endpoint fields; failures carry
/// `"ok":false` plus the status code and message.
std::string SerializeResponse(const std::string& id, const Response& response);

/// Serializes one batch response line: the envelope id plus every
/// sub-response (rendered exactly as `SerializeResponse` would a single
/// call, keyed by its own sub-id) in request order. `sub_ids` and
/// `responses` must be the same length.
std::string SerializeBatchResponse(const std::string& id,
                                   const std::vector<std::string>& sub_ids,
                                   const std::vector<Response>& responses);

/// Serializes a transport-level failure (e.g. a parse error) for `id`.
std::string SerializeError(const std::string& id,
                           const culinary::Status& status);

/// JSON string escaping for the serializers (quotes, backslashes, control
/// characters). Exposed for tests and the load generator.
std::string EscapeJson(std::string_view text);

}  // namespace culinary::serving

#endif  // CULINARYLAB_SERVING_PROTOCOL_H_
