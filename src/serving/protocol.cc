#include "serving/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/null_models.h"
#include "recipe/region.h"

namespace culinary::serving {

namespace {

// --- minimal flat-JSON reader -----------------------------------------------

struct JsonField;

/// One parsed value. Arrays are homogeneous scalar arrays — except for the
/// one nesting level the batch envelope needs: an array of flat objects
/// (`kObjects`), whose elements may not nest further. Anything deeper is
/// rejected by the parser.
struct JsonValue {
  enum class Kind {
    kString,
    kNumber,
    kBool,
    kNull,
    kStrings,
    kNumbers,
    kObjects
  };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0.0;
  bool boolean = false;
  std::vector<std::string> strings;
  std::vector<double> numbers;
  std::vector<std::vector<JsonField>> objects;
};

struct JsonField {
  std::string key;
  JsonValue value;
};

/// Hand-rolled scanner for exactly the flat request shape: one object of
/// string keys mapping to scalars, scalar arrays, or (top level only) one
/// array of flat objects. Small enough to audit, and strict — unknown
/// syntax fails parse instead of guessing.
class FlatJsonReader {
 public:
  explicit FlatJsonReader(std::string_view text) : text_(text) {}

  culinary::Result<std::vector<JsonField>> Parse() {
    std::vector<JsonField> fields;
    SkipWs();
    CULINARY_RETURN_IF_ERROR(
        ParseObjectFields(&fields, /*allow_object_arrays=*/true));
    return Finish(std::move(fields));
  }

 private:
  culinary::Status ParseObjectFields(std::vector<JsonField>* fields,
                                     bool allow_object_arrays) {
    if (!Consume('{')) return Fail("expected '{'");
    SkipWs();
    if (Consume('}')) return culinary::Status::OK();
    for (;;) {
      JsonField field;
      CULINARY_RETURN_IF_ERROR(ParseString(&field.key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      CULINARY_RETURN_IF_ERROR(ParseValue(&field.value, allow_object_arrays));
      fields->push_back(std::move(field));
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      if (Consume('}')) return culinary::Status::OK();
      return Fail("expected ',' or '}'");
    }
  }
  culinary::Result<std::vector<JsonField>> Finish(
      std::vector<JsonField> fields) {
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after object");
    return fields;
  }

  culinary::Status Fail(const std::string& what) {
    return culinary::Status::ParseError("request line: " + what +
                                        " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  culinary::Status ParseString(std::string* out) {
    SkipWs();
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return culinary::Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // Only ASCII \u00XX escapes; ingredient names are ASCII slugs.
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          if (code > 0x7F) return Fail("non-ASCII \\u escape unsupported");
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  culinary::Status ParseNumber(double* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    return culinary::Status::OK();
  }

  culinary::Status ParseValue(JsonValue* out, bool allow_object_arrays) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == '[') return ParseArray(out, allow_object_arrays);
    if (c == '{') return Fail("nested objects unsupported");
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return culinary::Status::OK();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return culinary::Status::OK();
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return culinary::Status::OK();
    }
    out->kind = JsonValue::Kind::kNumber;
    return ParseNumber(&out->num);
  }

  culinary::Status ParseArray(JsonValue* out, bool allow_object_arrays) {
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      out->kind = JsonValue::Kind::kStrings;  // empty: either kind works
      return culinary::Status::OK();
    }
    if (pos_ < text_.size() && text_[pos_] == '{') {
      // The batch envelope's one nesting level: an array of flat objects,
      // whose own values may not nest further.
      if (!allow_object_arrays) return Fail("nested objects unsupported");
      out->kind = JsonValue::Kind::kObjects;
      for (;;) {
        std::vector<JsonField> element;
        SkipWs();
        CULINARY_RETURN_IF_ERROR(
            ParseObjectFields(&element, /*allow_object_arrays=*/false));
        out->objects.push_back(std::move(element));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return culinary::Status::OK();
        return Fail("expected ',' or ']'");
      }
    }
    const bool strings = pos_ < text_.size() && text_[pos_] == '"';
    out->kind =
        strings ? JsonValue::Kind::kStrings : JsonValue::Kind::kNumbers;
    for (;;) {
      if (strings) {
        std::string element;
        CULINARY_RETURN_IF_ERROR(ParseString(&element));
        out->strings.push_back(std::move(element));
      } else {
        double element = 0.0;
        SkipWs();
        if (pos_ < text_.size() && (text_[pos_] == '[' || text_[pos_] == '{'))
          return Fail("nested arrays unsupported");
        CULINARY_RETURN_IF_ERROR(ParseNumber(&element));
        out->numbers.push_back(element);
      }
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      if (Consume(']')) return culinary::Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// --- serialization helpers --------------------------------------------------

void AppendDouble(std::ostringstream& os, double value) {
  // max_digits10 keeps serialization a pure function of the double: two
  // runs producing bit-identical values print bit-identical lines, which is
  // what the cross-thread-count identity checks diff.
  os << std::setprecision(17) << value;
}

void AppendScore(std::ostringstream& os, const ScoreResult& score) {
  os << ",\"score\":";
  AppendDouble(os, score.score);
  os << ",\"classified\":\"" << recipe::RegionCode(score.classified) << "\"";
  os << ",\"resolved\":[";
  for (size_t i = 0; i < score.resolved.size(); ++i) {
    if (i > 0) os << ',';
    os << score.resolved[i];
  }
  os << "],\"unresolved\":[";
  for (size_t i = 0; i < score.unresolved.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << EscapeJson(score.unresolved[i]) << '"';
  }
  os << ']';
}

void AppendSuggestions(std::ostringstream& os,
                       const std::vector<Suggestion>& suggestions) {
  os << ",\"suggestions\":[";
  for (size_t i = 0; i < suggestions.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"id\":" << suggestions[i].id << ",\"name\":\""
       << EscapeJson(suggestions[i].name) << "\",\"gain\":";
    AppendDouble(os, suggestions[i].gain);
    os << '}';
  }
  os << ']';
}

void AppendFingerprint(std::ostringstream& os,
                       const FingerprintResult& fingerprint) {
  os << ",\"region\":\"" << recipe::RegionCode(fingerprint.region) << "\"";
  os << ",\"num_recipes\":" << fingerprint.num_recipes;
  os << ",\"num_unique_ingredients\":" << fingerprint.num_unique_ingredients;
  os << ",\"mean_recipe_size\":";
  AppendDouble(os, fingerprint.mean_recipe_size);
  os << ",\"mean_pairing\":";
  AppendDouble(os, fingerprint.mean_pairing);
  os << ",\"top_ingredients\":[";
  for (size_t i = 0; i < fingerprint.top_ingredients.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"name\":\"" << EscapeJson(fingerprint.top_ingredients[i].first)
       << "\",\"count\":" << fingerprint.top_ingredients[i].second << '}';
  }
  os << "],\"baselines\":[";
  for (size_t i = 0; i < fingerprint.baselines.size(); ++i) {
    const analysis::FoodPairingResult& baseline = fingerprint.baselines[i];
    if (i > 0) os << ',';
    os << "{\"model\":\"" << analysis::NullModelKindSlug(baseline.kind)
       << "\",\"real_mean\":";
    AppendDouble(os, baseline.real_mean);
    os << ",\"null_mean\":";
    AppendDouble(os, baseline.null_mean);
    os << ",\"z_score\":";
    AppendDouble(os, baseline.z_score);
    os << '}';
  }
  os << ']';
}

void AppendSimilar(std::ostringstream& os, const SimilarResult& similar) {
  os << ",\"region\":\"" << recipe::RegionCode(similar.region) << "\"";
  os << ",\"neighbors\":[";
  for (size_t i = 0; i < similar.neighbors.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"region\":\"" << recipe::RegionCode(similar.neighbors[i].first)
       << "\",\"similarity\":";
    AppendDouble(os, similar.neighbors[i].second);
    os << '}';
  }
  os << ']';
}

}  // namespace

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

/// Applies the parsed fields of one (sub-)request object onto `wire`.
/// `requests_out` receives the raw "requests" object array when non-null
/// (top level); sub-requests pass null, so an unexpected object array there
/// was already rejected by the parser. Unknown keys are ignored: the server
/// stays forward-compatible with newer clients.
culinary::Status ApplyRequestFields(
    const std::vector<JsonField>& fields, WireRequest* wire,
    const std::vector<std::vector<JsonField>>** requests_out) {
  bool saw_op = false;
  for (const JsonField& field : fields) {
    const JsonValue& value = field.value;
    if (field.key == "id" && value.kind == JsonValue::Kind::kString) {
      wire->id = value.str;
    } else if (field.key == "op" && value.kind == JsonValue::Kind::kString) {
      wire->op = value.str;
      saw_op = true;
    } else if (field.key == "ingredients" &&
               value.kind == JsonValue::Kind::kStrings) {
      wire->request.ingredient_names = value.strings;
    } else if (field.key == "ids" &&
               (value.kind == JsonValue::Kind::kNumbers ||
                value.kind == JsonValue::Kind::kStrings)) {
      for (const double d : value.numbers) {
        wire->request.ingredient_ids.push_back(
            static_cast<flavor::IngredientId>(d));
      }
    } else if (field.key == "region" &&
               value.kind == JsonValue::Kind::kString) {
      const std::optional<recipe::Region> region =
          recipe::RegionFromCode(value.str);
      if (!region.has_value()) {
        return culinary::Status::InvalidArgument("unknown region code \"" +
                                                 value.str + "\"");
      }
      wire->request.region = *region;
    } else if (field.key == "k" && value.kind == JsonValue::Kind::kNumber) {
      if (value.num < 0) {
        return culinary::Status::InvalidArgument("k must be >= 0");
      }
      wire->request.k = static_cast<size_t>(value.num);
    } else if (field.key == "deadline_ms" &&
               value.kind == JsonValue::Kind::kNumber) {
      wire->request.deadline_ms = value.num;
    } else if (field.key == "requests" &&
               value.kind == JsonValue::Kind::kObjects &&
               requests_out != nullptr) {
      *requests_out = &value.objects;
    }
  }
  if (!saw_op) {
    return culinary::Status::InvalidArgument("request has no \"op\"");
  }
  return culinary::Status::OK();
}

/// Maps `wire->op` onto an endpoint / admin / batch classification.
culinary::Status ResolveOp(WireRequest* wire) {
  if (wire->op == "ping") {
    wire->request.endpoint = Endpoint::kPing;
  } else if (wire->op == "score") {
    wire->request.endpoint = Endpoint::kScore;
  } else if (wire->op == "suggest") {
    wire->request.endpoint = Endpoint::kSuggest;
  } else if (wire->op == "fingerprint") {
    wire->request.endpoint = Endpoint::kFingerprint;
  } else if (wire->op == "similar") {
    wire->request.endpoint = Endpoint::kSimilar;
  } else if (wire->op == "reload" || wire->op == "shutdown" ||
             wire->op == "health") {
    wire->is_admin = true;
  } else if (wire->op == "batch") {
    wire->is_batch = true;
  } else {
    return culinary::Status::InvalidArgument("unknown op \"" + wire->op +
                                             "\"");
  }
  return culinary::Status::OK();
}

}  // namespace

culinary::Result<WireRequest> ParseRequestLine(std::string_view line) {
  FlatJsonReader reader(line);
  auto parsed = reader.Parse();
  if (!parsed.ok()) return parsed.status();

  WireRequest wire;
  const std::vector<std::vector<JsonField>>* sub_objects = nullptr;
  CULINARY_RETURN_IF_ERROR(
      ApplyRequestFields(parsed.value(), &wire, &sub_objects));
  CULINARY_RETURN_IF_ERROR(ResolveOp(&wire));
  if (!wire.is_batch) return wire;

  // Assemble the batch envelope: every sub-object must resolve to a query
  // op — admin inside a batch would let one queued line flip server state,
  // and a nested batch has no parse (the reader rejects deeper nesting).
  if (sub_objects == nullptr || sub_objects->empty()) {
    return culinary::Status::InvalidArgument(
        "batch needs a non-empty \"requests\" array");
  }
  if (sub_objects->size() > kMaxWireBatch) {
    return culinary::Status::InvalidArgument(
        "batch of " + std::to_string(sub_objects->size()) +
        " exceeds the limit of " + std::to_string(kMaxWireBatch));
  }
  wire.batch.reserve(sub_objects->size());
  for (const std::vector<JsonField>& fields : *sub_objects) {
    WireRequest sub;
    CULINARY_RETURN_IF_ERROR(ApplyRequestFields(fields, &sub, nullptr));
    if (sub.op == "batch") {
      return culinary::Status::InvalidArgument(
          "nested batch inside a batch is unsupported");
    }
    CULINARY_RETURN_IF_ERROR(ResolveOp(&sub));
    if (sub.is_admin) {
      return culinary::Status::InvalidArgument(
          "admin op \"" + sub.op + "\" is not allowed inside a batch");
    }
    wire.batch.push_back(std::move(sub));
  }
  return wire;
}

std::string SerializeResponse(const std::string& id,
                              const Response& response) {
  std::ostringstream os;
  os << "{\"id\":\"" << EscapeJson(id) << "\",\"op\":\""
     << EndpointName(response.endpoint) << "\",\"ok\":"
     << (response.status.ok() ? "true" : "false")
     << ",\"generation\":" << response.generation;
  if (!response.status.ok()) {
    os << ",\"code\":\"" << StatusCodeToString(response.status.code())
       << "\",\"error\":\"" << EscapeJson(response.status.message()) << "\"";
  } else if (const auto* score = std::get_if<ScoreResult>(&response.payload)) {
    AppendScore(os, *score);
  } else if (const auto* suggestions =
                 std::get_if<std::vector<Suggestion>>(&response.payload)) {
    AppendSuggestions(os, *suggestions);
  } else if (const auto* fingerprint =
                 std::get_if<FingerprintResult>(&response.payload)) {
    AppendFingerprint(os, *fingerprint);
  } else if (const auto* similar =
                 std::get_if<SimilarResult>(&response.payload)) {
    AppendSimilar(os, *similar);
  }
  os << '}';
  return os.str();
}

std::string SerializeBatchResponse(const std::string& id,
                                   const std::vector<std::string>& sub_ids,
                                   const std::vector<Response>& responses) {
  std::ostringstream os;
  os << "{\"id\":\"" << EscapeJson(id)
     << "\",\"op\":\"batch\",\"ok\":true,\"count\":" << responses.size()
     << ",\"responses\":[";
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i > 0) os << ',';
    // Each element is exactly the line a single call would have produced —
    // what the batch-vs-sequential identity checks diff.
    os << SerializeResponse(i < sub_ids.size() ? sub_ids[i] : std::string(),
                            responses[i]);
  }
  os << "]}";
  return os.str();
}

std::string SerializeError(const std::string& id,
                           const culinary::Status& status) {
  std::ostringstream os;
  os << "{\"id\":\"" << EscapeJson(id) << "\",\"ok\":false,\"code\":\""
     << StatusCodeToString(status.code()) << "\",\"error\":\""
     << EscapeJson(status.message()) << "\"}";
  return os.str();
}

}  // namespace culinary::serving
