#ifndef CULINARYLAB_CULINARYLAB_H_
#define CULINARYLAB_CULINARYLAB_H_

/// Umbrella header: pulls in the whole CulinaryLab public API.
///
/// Fine-grained includes ("analysis/pairing.h", ...) are preferred in
/// library code; this header exists for applications, examples and
/// exploratory use.

#include "analysis/composition.h"
#include "analysis/contribution.h"
#include "analysis/fingerprint.h"
#include "analysis/molecules.h"
#include "analysis/ntuple.h"
#include "analysis/null_models.h"
#include "analysis/options.h"
#include "analysis/pairing.h"
#include "analysis/perturb.h"
#include "analysis/report.h"
#include "analysis/similarity.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dataframe/csv.h"
#include "dataframe/expr.h"
#include "dataframe/ops.h"
#include "dataframe/table.h"
#include "datagen/phrase_gen.h"
#include "datagen/world.h"
#include "evolution/copy_mutate.h"
#include "flavor/bitset.h"
#include "flavor/registry.h"
#include "flavor/registry_io.h"
#include "network/flavor_network.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "recipe/database.h"
#include "recipe/parser.h"
#include "text/edit_distance.h"
#include "text/inflect.h"
#include "text/ngram.h"
#include "text/normalize.h"

#endif  // CULINARYLAB_CULINARYLAB_H_
