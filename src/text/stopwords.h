#ifndef CULINARYLAB_TEXT_STOPWORDS_H_
#define CULINARYLAB_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace culinary::text {

/// A set of words to drop during phrase normalization.
///
/// Two built-in lists are provided: generic English stopwords (the usual
/// function words) and *culinary* stopwords — units, preparation verbs and
/// qualifiers that appear in ingredient phrases but carry no ingredient
/// identity ("chopped", "cup", "fresh", ...), mirroring the paper's
/// "stopwords, including some culinary stopwords".
class StopwordSet {
 public:
  StopwordSet() = default;

  /// Builds a set from explicit words (lowercased on insertion).
  explicit StopwordSet(const std::vector<std::string>& words);

  /// The built-in English stopword list.
  static const StopwordSet& English();

  /// The built-in culinary stopword list (units, prep verbs, qualifiers).
  static const StopwordSet& Culinary();

  /// English ∪ Culinary.
  static const StopwordSet& EnglishAndCulinary();

  /// Adds a word (lowercased).
  void Add(std::string_view word);

  /// True iff `word` (case-insensitively) is a stopword.
  bool Contains(std::string_view word) const;

  /// Number of words in the set.
  size_t size() const { return words_.size(); }

  /// Returns `tokens` with stopwords removed (order preserved).
  std::vector<std::string> Remove(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_STOPWORDS_H_
