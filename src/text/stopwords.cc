#include "text/stopwords.h"

#include "common/string_util.h"

namespace culinary::text {

namespace {

const char* const kEnglishStopwords[] = {
    "a",       "about",  "above",   "after",  "again",  "against", "all",
    "am",      "an",     "and",     "any",    "are",    "as",      "at",
    "be",      "because","been",    "before", "being",  "below",   "between",
    "both",    "but",    "by",      "can",    "cannot", "could",   "did",
    "do",      "does",   "doing",   "down",   "during", "each",    "few",
    "for",     "from",   "further", "had",    "has",    "have",    "having",
    "he",      "her",    "here",    "hers",   "him",    "his",     "how",
    "i",       "if",     "in",      "into",   "is",     "it",      "its",
    "itself",  "just",   "me",      "more",   "most",   "my",      "no",
    "nor",     "not",    "now",     "of",     "off",    "on",      "once",
    "only",    "or",     "other",   "our",    "ours",   "out",     "over",
    "own",     "per",    "same",    "she",    "should", "so",      "some",
    "such",    "than",   "that",    "the",    "their",  "theirs",  "them",
    "then",    "there",  "these",   "they",   "this",   "those",   "through",
    "to",      "too",    "under",   "until",  "up",     "very",    "was",
    "we",      "were",   "what",    "when",   "where",  "which",   "while",
    "who",     "whom",   "why",     "will",   "with",   "would",   "you",
    "your",    "yours",
};

// Units, container sizes, preparation verbs, texture/temperature/quality
// qualifiers: words that occur in ingredient phrases but never identify the
// ingredient itself.
const char* const kCulinaryStopwords[] = {
    // units & measures
    "cup", "cups", "tablespoon", "tablespoons", "tbsp", "teaspoon",
    "teaspoons", "tsp", "ounce", "ounces", "oz", "pound", "pounds", "lb",
    "lbs", "gram", "grams", "g", "kg", "kilogram", "kilograms", "ml",
    "milliliter", "milliliters", "liter", "liters", "litre", "litres",
    "quart", "quarts", "pint", "pints", "gallon", "gallons", "dash",
    "dashes", "pinch", "pinches", "handful", "handfuls", "piece", "pieces",
    "slice", "slices", "stick", "sticks", "clove", "cloves", "sprig",
    "sprigs", "bunch", "bunches", "head", "heads", "stalk", "stalks",
    "leaf", "leaves",
    "package", "packages", "pkg", "can", "cans", "jar", "jars", "bottle",
    "bottles", "container", "containers", "box", "boxes", "bag", "bags",
    "inch", "inches", "cube", "cubes", "envelope", "envelopes", "carton",
    "cartons", "drop", "drops", "knob", "pat", "pats", "splash", "size",
    // preparation verbs / participles
    "chopped", "diced", "minced", "sliced", "grated", "shredded", "peeled",
    "seeded", "pitted", "halved", "quartered", "crushed", "ground",
    "beaten", "whisked", "melted", "softened", "toasted", "roasted",
    "slit", "cooked", "uncooked", "boiled", "steamed", "blanched", "drained",
    "rinsed", "washed", "trimmed", "cut", "torn", "cubed", "julienned",
    "crumbled", "mashed", "pureed", "squeezed", "zested", "juiced",
    "separated", "divided", "packed", "sifted", "scalded", "thawed",
    "defrosted", "deveined", "shelled", "husked", "cored", "stemmed",
    "flaked", "snipped", "pounded", "scored", "butterflied", "marinated",
    "strained", "reserved", "removed", "discarded", "picked",
    // qualifiers
    "fresh", "freshly", "dried", "dry", "frozen", "canned", "raw", "ripe",
    "large", "medium", "small", "big", "little", "thin", "thinly", "thick",
    "thickly", "fine", "finely", "coarse", "coarsely", "roughly", "lightly",
    "firmly", "loosely", "gently", "well", "extra", "additional", "optional",
    "needed", "taste", "serving", "servings", "garnish", "preferably",
    "approximately", "plus", "hot", "cold", "warm", "cool", "room",
    "temperature", "lean", "boneless", "skinless", "bone", "skin",
    "seedless", "unsalted", "salted", "unsweetened", "sweetened", "lowfat",
    "nonfat", "reduced", "fat", "free", "light", "heavy", "whole", "half",
    "halves", "quarter", "quarters", "good", "quality", "best", "favorite",
    "store", "bought", "homemade", "prepared", "instant", "quick",
    "cooking", "baking", "overnight", "day", "old", "new", "young", "baby",
    "mini", "jumbo", "giant", "virgin", "breast", "thigh", "fillet",
    "drumstick", "rind", "crust",
};

StopwordSet BuildEnglish() {
  StopwordSet s;
  for (const char* w : kEnglishStopwords) s.Add(w);
  return s;
}

StopwordSet BuildCulinary() {
  StopwordSet s;
  for (const char* w : kCulinaryStopwords) s.Add(w);
  return s;
}

StopwordSet BuildBoth() {
  StopwordSet s;
  for (const char* w : kEnglishStopwords) s.Add(w);
  for (const char* w : kCulinaryStopwords) s.Add(w);
  return s;
}

}  // namespace

StopwordSet::StopwordSet(const std::vector<std::string>& words) {
  for (const std::string& w : words) Add(w);
}

const StopwordSet& StopwordSet::English() {
  static const StopwordSet& instance = *new StopwordSet(BuildEnglish());
  return instance;
}

const StopwordSet& StopwordSet::Culinary() {
  static const StopwordSet& instance = *new StopwordSet(BuildCulinary());
  return instance;
}

const StopwordSet& StopwordSet::EnglishAndCulinary() {
  static const StopwordSet& instance = *new StopwordSet(BuildBoth());
  return instance;
}

void StopwordSet::Add(std::string_view word) {
  words_.insert(culinary::ToLower(word));
}

bool StopwordSet::Contains(std::string_view word) const {
  return words_.count(culinary::ToLower(word)) > 0;
}

std::vector<std::string> StopwordSet::Remove(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    if (!Contains(t)) out.push_back(t);
  }
  return out;
}

}  // namespace culinary::text
