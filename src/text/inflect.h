#ifndef CULINARYLAB_TEXT_INFLECT_H_
#define CULINARYLAB_TEXT_INFLECT_H_

#include <string>
#include <string_view>
#include <vector>

namespace culinary::text {

/// Converts an English noun to its singular form (the counterpart of the
/// `inflect` Python package used by the paper's pipeline).
///
/// Handles an irregular-noun table (leaves/leaf, tomatoes/tomato,
/// children/child, ...), invariant nouns (molasses, couscous, hummus, ...)
/// and the regular suffix rules (-ies → -y, -oes → -o, -ves → -f(e),
/// -ches/-shes/-xes/-sses → drop "es", -s → drop "s"). Input is expected
/// lowercase; non-lowercase input is lowercased first.
std::string Singularize(std::string_view word);

/// Singularizes every token in place and returns the result.
std::vector<std::string> SingularizeAll(const std::vector<std::string>& tokens);

/// Best-effort pluralization (used by tests as an inverse probe and by the
/// synthetic data generator to create phrase variations).
std::string Pluralize(std::string_view word);

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_INFLECT_H_
