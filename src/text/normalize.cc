#include "text/normalize.h"

#include "common/string_util.h"
#include "text/inflect.h"

namespace culinary::text {

std::vector<std::string> NormalizePhrase(std::string_view phrase,
                                         const NormalizeOptions& options) {
  std::vector<std::string> tokens = Tokenize(phrase, options.tokenizer);
  if (options.stopwords != nullptr) {
    tokens = options.stopwords->Remove(tokens);
  }
  if (options.singularize) {
    tokens = SingularizeAll(tokens);
  }
  return tokens;
}

std::string NormalizePhraseToString(std::string_view phrase,
                                    const NormalizeOptions& options) {
  return culinary::Join(NormalizePhrase(phrase, options), " ");
}

}  // namespace culinary::text
