#ifndef CULINARYLAB_TEXT_TOKENIZER_H_
#define CULINARYLAB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace culinary::text {

/// Options for `Tokenize`.
struct TokenizerOptions {
  /// Lowercase tokens (ASCII).
  bool lowercase = true;
  /// Treat every non-alphanumeric character as a separator. When false only
  /// ASCII whitespace separates tokens.
  bool strip_punctuation = true;
  /// Drop tokens that consist entirely of digits ("2 jalapeno peppers" →
  /// ["jalapeno", "peppers"]). Mixed tokens like "7up" are kept.
  bool drop_numeric_tokens = true;
  /// Keep in-word hyphens and apostrophes ("half-half", "confectioner's")
  /// instead of splitting on them.
  bool keep_inner_hyphen_apostrophe = false;
};

/// Splits a raw ingredient phrase into clean tokens.
///
/// This is the first step of the aliasing protocol (paper §IV.A): the phrase
/// "2 Jalapeno Peppers, roasted and slit" becomes
/// ["jalapeno", "peppers", "roasted", "and", "slit"].
std::vector<std::string> Tokenize(std::string_view phrase,
                                  const TokenizerOptions& options = {});

/// Removes punctuation and special characters from `phrase`, replacing them
/// with spaces; collapses runs of whitespace; optionally lowercases.
std::string StripPunctuation(std::string_view phrase, bool lowercase = true);

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_TOKENIZER_H_
