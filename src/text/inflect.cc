#include "text/inflect.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace culinary::text {

namespace {

/// Irregular plural → singular. Culinary-heavy selection.
const std::unordered_map<std::string, std::string>& IrregularSingulars() {
  static const auto& map = *new std::unordered_map<std::string, std::string>{
      {"leaves", "leaf"},       {"loaves", "loaf"},
      {"halves", "half"},       {"calves", "calf"},
      {"knives", "knife"},      {"wives", "wife"},
      {"lives", "life"},        {"shelves", "shelf"},
      {"children", "child"},    {"men", "man"},
      {"women", "woman"},       {"feet", "foot"},
      {"teeth", "tooth"},       {"geese", "goose"},
      {"mice", "mouse"},        {"people", "person"},
      {"anchovies", "anchovy"}, {"berries", "berry"},
      {"cherries", "cherry"},   {"candies", "candy"},
      {"radii", "radius"},      {"fungi", "fungus"},
      {"cacti", "cactus"},      {"octopi", "octopus"},
      {"potatoes", "potato"},   {"tomatoes", "tomato"},
      {"mangoes", "mango"},     {"heroes", "hero"},
      {"echoes", "echo"},       {"mosquitoes", "mosquito"},
      {"oxen", "ox"},           {"dice", "die"},
      {"matzos", "matzo"},      {"avocados", "avocado"},
      {"pistachios", "pistachio"},
  };
  return map;
}

/// Nouns whose singular equals their plural or that end in -s inherently.
const std::unordered_set<std::string>& InvariantNouns() {
  static const auto& set = *new std::unordered_set<std::string>{
      "molasses",  "couscous", "hummus",   "asparagus", "citrus",
      "sheep",     "deer",     "fish",     "shrimp",    "salmon",
      "tuna",      "trout",    "squid",    "bass",      "swiss",
      "series",    "species",  "sugarsnap", "watercress", "cress",
      "brandy",    "grits",    "oats",     "greens",     "lentils",
      "schnapps",  "haggis",   "rice",     "dressing",
  };
  return set;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::string Singularize(std::string_view raw) {
  std::string word = culinary::ToLower(raw);
  if (word.size() < 3) return word;

  if (InvariantNouns().count(word) > 0) return word;
  auto it = IrregularSingulars().find(word);
  if (it != IrregularSingulars().end()) return it->second;

  auto ends = [&](std::string_view suffix) {
    return culinary::EndsWith(word, suffix);
  };

  // -ies → -y (berries → berry), but not short words like "ties"/"pies".
  if (ends("ies") && word.size() > 4) {
    return word.substr(0, word.size() - 3) + "y";
  }
  // -ves → -f (olives is an exception handled by the vowel check: "olives"
  // ends in -ves with preceding 'i' vowel → treat as plain -s).
  if (ends("ves") && word.size() > 4 && !IsVowel(word[word.size() - 4])) {
    return word.substr(0, word.size() - 3) + "f";
  }
  // -ches / -shes / -xes / -sses / -zes → drop "es".
  if (ends("ches") || ends("shes") || ends("xes") || ends("sses") ||
      ends("zes")) {
    return word.substr(0, word.size() - 2);
  }
  // -oes → -o (handled irregulars above cover most; generic rule here).
  if (ends("oes") && word.size() > 4) {
    return word.substr(0, word.size() - 2);
  }
  // -ss endings stay ("molasses" caught above; "cress" here).
  if (ends("ss")) return word;
  // -us endings stay (asparagus, hummus, citrus).
  if (ends("us")) return word;
  // -is endings stay (basis; rare in ingredients).
  if (ends("is")) return word;
  // Plain -s → drop it.
  if (ends("s") && word.size() > 3) {
    return word.substr(0, word.size() - 1);
  }
  return word;
}

std::vector<std::string> SingularizeAll(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) out.push_back(Singularize(t));
  return out;
}

std::string Pluralize(std::string_view raw) {
  std::string word = culinary::ToLower(raw);
  if (word.empty()) return word;
  if (InvariantNouns().count(word) > 0) return word;
  for (const auto& [plural, singular] : IrregularSingulars()) {
    if (singular == word) return plural;
  }
  auto ends = [&](std::string_view suffix) {
    return culinary::EndsWith(word, suffix);
  };
  if (ends("y") && word.size() > 1 && !IsVowel(word[word.size() - 2])) {
    return word.substr(0, word.size() - 1) + "ies";
  }
  if (ends("ch") || ends("sh") || ends("x") || ends("ss") || ends("z")) {
    return word + "es";
  }
  if (ends("o") && word.size() > 2 && !IsVowel(word[word.size() - 2])) {
    return word + "es";
  }
  if (ends("s")) return word;
  return word + "s";
}

}  // namespace culinary::text
