#ifndef CULINARYLAB_TEXT_EDIT_DISTANCE_H_
#define CULINARYLAB_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace culinary::text {

/// Levenshtein edit distance (insert / delete / substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Damerau–Levenshtein distance (adds adjacent transposition), the measure
/// used for catching spelling variants like "whiskey"/"whisky" and
/// transposed letters in scraped recipe text.
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity in [0, 1] with standard prefix scale 0.1 and
/// maximum prefix length 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// True iff the Damerau–Levenshtein distance between `a` and `b` is at most
/// `max_distance` (early-exits; cheaper than computing the full distance for
/// clearly different strings).
bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_distance);

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_EDIT_DISTANCE_H_
