#include "text/ngram.h"

namespace culinary::text {

std::vector<NGram> MakeNGrams(const std::vector<std::string>& tokens,
                              size_t n) {
  std::vector<NGram> out;
  if (n == 0 || tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (size_t start = 0; start + n <= tokens.size(); ++start) {
    NGram g;
    g.start = start;
    g.length = n;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) g.joined.push_back(' ');
      g.joined.append(tokens[start + i]);
    }
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<NGram> MakeNGramsDescending(const std::vector<std::string>& tokens,
                                        size_t max_n, size_t min_n) {
  std::vector<NGram> out;
  if (min_n == 0) min_n = 1;
  for (size_t n = max_n; n >= min_n; --n) {
    std::vector<NGram> level = MakeNGrams(tokens, n);
    out.insert(out.end(), level.begin(), level.end());
    if (n == min_n) break;  // avoid size_t underflow when min_n == 0
  }
  return out;
}

}  // namespace culinary::text
