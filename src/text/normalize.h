#ifndef CULINARYLAB_TEXT_NORMALIZE_H_
#define CULINARYLAB_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace culinary::text {

/// Options for the full phrase-normalization pipeline.
struct NormalizeOptions {
  TokenizerOptions tokenizer;
  /// Stopwords to drop; defaults to English ∪ culinary.
  const StopwordSet* stopwords = &StopwordSet::EnglishAndCulinary();
  /// Singularize each surviving token.
  bool singularize = true;
};

/// Runs the multi-step protocol of paper §IV.A on one raw ingredient phrase:
/// lowercase → strip punctuation/special characters → tokenize → remove
/// (English + culinary) stopwords → singularize. Returns the cleaned tokens.
///
/// "2 Jalapeno Peppers, roasted and slit" → ["jalapeno", "pepper"].
std::vector<std::string> NormalizePhrase(std::string_view phrase,
                                         const NormalizeOptions& options = {});

/// `NormalizePhrase` joined with single spaces ("jalapeno pepper").
std::string NormalizePhraseToString(std::string_view phrase,
                                    const NormalizeOptions& options = {});

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_NORMALIZE_H_
