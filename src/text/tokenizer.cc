#include "text/tokenizer.h"

#include <cctype>

namespace culinary::text {

namespace {

bool IsAlnum(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool IsAllDigits(std::string_view token) {
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return !token.empty();
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view phrase,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    if (!(options.drop_numeric_tokens && IsAllDigits(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };

  for (size_t i = 0; i < phrase.size(); ++i) {
    char c = phrase[i];
    bool is_word_char = IsAlnum(c);
    if (!is_word_char && options.keep_inner_hyphen_apostrophe &&
        (c == '-' || c == '\'')) {
      // Inner only: must be between two alphanumeric characters.
      bool prev_ok = !current.empty();
      bool next_ok = i + 1 < phrase.size() && IsAlnum(phrase[i + 1]);
      is_word_char = prev_ok && next_ok;
    }
    if (!options.strip_punctuation && !is_word_char && !std::isspace(static_cast<unsigned char>(c))) {
      is_word_char = true;  // punctuation retained inside tokens
    }
    if (is_word_char) {
      char out = c;
      if (options.lowercase) {
        out = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      current.push_back(out);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::string StripPunctuation(std::string_view phrase, bool lowercase) {
  std::string out;
  out.reserve(phrase.size());
  bool last_space = true;
  for (char c : phrase) {
    if (IsAlnum(c)) {
      out.push_back(lowercase ? static_cast<char>(std::tolower(
                                    static_cast<unsigned char>(c)))
                              : c);
      last_space = false;
    } else if (!last_space) {
      out.push_back(' ');
      last_space = true;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace culinary::text
