#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

namespace culinary::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> two(m + 1), prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        curr[j] = std::min(curr[j], two[j - 2] + 1);
      }
    }
    std::swap(two, prev);
    std::swap(prev, curr);
  }
  return prev[m];
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window =
      std::max<size_t>(1, std::max(n, m) / 2) - 1;

  std::vector<char> a_matched(n, 0), b_matched(m, 0);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  double dm = static_cast<double>(matches);
  return (dm / n + dm / m + (dm - t / 2.0) / dm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_distance) {
  size_t la = a.size(), lb = b.size();
  size_t diff = la > lb ? la - lb : lb - la;
  if (diff > max_distance) return false;  // length gap alone exceeds budget
  return DamerauLevenshteinDistance(a, b) <= max_distance;
}

}  // namespace culinary::text
