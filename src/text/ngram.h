#ifndef CULINARYLAB_TEXT_NGRAM_H_
#define CULINARYLAB_TEXT_NGRAM_H_

#include <string>
#include <vector>

namespace culinary::text {

/// A contiguous token n-gram with its source span.
struct NGram {
  std::string joined;  ///< tokens joined by single spaces
  size_t start = 0;    ///< index of the first token
  size_t length = 0;   ///< number of tokens
};

/// All contiguous n-grams of exactly `n` tokens, in order.
std::vector<NGram> MakeNGrams(const std::vector<std::string>& tokens, size_t n);

/// All contiguous n-grams of length `max_n` down to `min_n`, longest first
/// and left-to-right within a length. This is the scan order of the
/// paper's aliasing protocol ("N-grams (up to 6-grams)"): longest candidate
/// ingredient names are tried before shorter ones.
std::vector<NGram> MakeNGramsDescending(const std::vector<std::string>& tokens,
                                        size_t max_n, size_t min_n = 1);

}  // namespace culinary::text

#endif  // CULINARYLAB_TEXT_NGRAM_H_
