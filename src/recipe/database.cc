#include "recipe/database.h"

#include <algorithm>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "dataframe/table.h"

namespace culinary::recipe {

culinary::Result<RecipeId> RecipeDatabase::AddRecipe(
    std::string name, Region region, std::vector<flavor::IngredientId> ids) {
  if (region == Region::kWorld) {
    return culinary::Status::InvalidArgument(
        "recipes must be attributed to a proper region, not WORLD");
  }
  CanonicalizeIngredients(ids);
  for (flavor::IngredientId id : ids) {
    if (registry_->Find(id) == nullptr) {
      return culinary::Status::InvalidArgument(
          "ingredient id " + std::to_string(id) + " unknown to registry");
    }
  }
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "recipe has no ingredients after canonicalization");
  }
  Recipe r;
  r.id = static_cast<RecipeId>(recipes_.size());
  r.name = std::move(name);
  r.region = region;
  r.ingredients = std::move(ids);
  recipes_.push_back(std::move(r));
  return recipes_.back().id;
}

culinary::Result<RecipeId> RecipeDatabase::AddRecipeFromPhrases(
    std::string name, Region region, const std::vector<std::string>& phrases,
    const IngredientPhraseParser& parser,
    std::vector<std::string>* partial_or_unrecognized) {
  std::vector<flavor::IngredientId> ids =
      parser.ParsePhrases(phrases, partial_or_unrecognized);
  if (ids.empty()) {
    return culinary::Status::FailedPrecondition(
        "no ingredient phrase resolved for recipe '" + name + "'");
  }
  return AddRecipe(std::move(name), region, std::move(ids));
}

size_t RecipeDatabase::CountForRegion(Region region) const {
  size_t n = 0;
  for (const Recipe& r : recipes_) {
    if (r.region == region) ++n;
  }
  return n;
}

Cuisine RecipeDatabase::CuisineFor(Region region) const {
  std::vector<Recipe> selected;
  for (const Recipe& r : recipes_) {
    if (r.region == region) selected.push_back(r);
  }
  return Cuisine(region, std::move(selected));
}

Cuisine RecipeDatabase::WorldCuisine() const {
  return Cuisine(Region::kWorld, recipes_);
}

std::vector<Cuisine> RecipeDatabase::AllCuisines() const {
  std::vector<Cuisine> out;
  out.reserve(kNumRegions);
  for (int i = 0; i < kNumRegions; ++i) {
    out.push_back(CuisineFor(AllRegions()[i]));
  }
  return out;
}

culinary::Status RecipeDatabase::SaveCsv(const std::string& path) const {
  df::Schema schema({{"id", df::DataType::kInt64},
                     {"name", df::DataType::kString},
                     {"region", df::DataType::kString},
                     {"ingredients", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table table, df::Table::Make(schema));
  for (const Recipe& r : recipes_) {
    std::vector<std::string> names;
    names.reserve(r.ingredients.size());
    for (flavor::IngredientId id : r.ingredients) {
      const flavor::Ingredient* ing = registry_->Find(id);
      if (ing != nullptr) names.push_back(ing->name);
    }
    CULINARY_RETURN_IF_ERROR(table.AppendRow(
        {df::Value::Int(r.id), df::Value::Str(r.name),
         df::Value::Str(std::string(RegionCode(r.region))),
         df::Value::Str(culinary::Join(names, ";"))}));
  }
  return df::WriteCsvFile(table, path);
}

culinary::Result<RecipeDatabase> RecipeDatabase::LoadCsv(
    const std::string& path, const flavor::FlavorRegistry* registry,
    size_t* skipped_rows) {
  if (registry == nullptr) {
    return culinary::Status::InvalidArgument("registry must not be null");
  }
  CULINARY_ASSIGN_OR_RETURN(df::Table table, df::ReadCsvFile(path));
  for (const char* col : {"name", "region", "ingredients"}) {
    if (!table.schema().HasField(col)) {
      return culinary::Status::ParseError(std::string("missing column '") +
                                          col + "' in " + path);
    }
  }
  RecipeDatabase db(registry);
  size_t skipped = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    CULINARY_ASSIGN_OR_RETURN(df::Value name_v, table.GetValueChecked(r, "name"));
    CULINARY_ASSIGN_OR_RETURN(df::Value region_v,
                              table.GetValueChecked(r, "region"));
    CULINARY_ASSIGN_OR_RETURN(df::Value ing_v,
                              table.GetValueChecked(r, "ingredients"));
    if (region_v.is_null() || ing_v.is_null()) {
      ++skipped;
      continue;
    }
    auto region = RegionFromCode(region_v.as_string());
    if (!region.has_value() || *region == Region::kWorld) {
      ++skipped;
      continue;
    }
    std::vector<flavor::IngredientId> ids;
    for (const std::string& raw : culinary::Split(ing_v.as_string(), ';')) {
      std::string_view trimmed = culinary::Trim(raw);
      if (trimmed.empty()) continue;
      flavor::IngredientId id = registry->FindByName(trimmed);
      if (id != flavor::kInvalidIngredient) ids.push_back(id);
    }
    if (ids.empty()) {
      ++skipped;
      continue;
    }
    std::string name = name_v.is_null() ? "" : name_v.as_string();
    auto added = db.AddRecipe(std::move(name), *region, std::move(ids));
    if (!added.ok()) ++skipped;
  }
  if (skipped_rows != nullptr) *skipped_rows = skipped;
  return db;
}

}  // namespace culinary::recipe
