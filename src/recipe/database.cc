#include "recipe/database.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "dataframe/table.h"
#include "obs/obs.h"

namespace culinary::recipe {

std::string IngestReport::Summary() const {
  std::ostringstream os;
  os << rows_loaded << "/" << records.records_total << " recipes loaded"
     << " (coverage " << culinary::FormatDouble(coverage(), 3) << ", csv "
     << records.records_quarantined << " quarantined, rows "
     << rows_quarantined << " quarantined, " << ingredient_names_dropped
     << " unknown ingredient names dropped)";
  return os.str();
}

culinary::Result<RecipeId> RecipeDatabase::AddRecipe(
    std::string name, Region region, std::vector<flavor::IngredientId> ids) {
  if (region == Region::kWorld) {
    return culinary::Status::InvalidArgument(
        "recipes must be attributed to a proper region, not WORLD");
  }
  CanonicalizeIngredients(ids);
  for (flavor::IngredientId id : ids) {
    if (registry_->Find(id) == nullptr) {
      return culinary::Status::InvalidArgument(
          "ingredient id " + std::to_string(id) + " unknown to registry");
    }
  }
  if (ids.empty()) {
    return culinary::Status::InvalidArgument(
        "recipe has no ingredients after canonicalization");
  }
  Recipe r;
  r.id = static_cast<RecipeId>(recipes_.size());
  r.name = std::move(name);
  r.region = region;
  r.ingredients = std::move(ids);
  recipes_.push_back(std::move(r));
  CULINARY_OBS_COUNT("ingest.recipes_added", 1);
  return recipes_.back().id;
}

culinary::Result<RecipeId> RecipeDatabase::AddRecipeFromPhrases(
    std::string name, Region region, const std::vector<std::string>& phrases,
    const IngredientPhraseParser& parser,
    std::vector<std::string>* partial_or_unrecognized) {
  std::vector<flavor::IngredientId> ids =
      parser.ParsePhrases(phrases, partial_or_unrecognized);
  if (ids.empty()) {
    return culinary::Status::FailedPrecondition(
        "no ingredient phrase resolved for recipe '" + name + "'");
  }
  return AddRecipe(std::move(name), region, std::move(ids));
}

size_t RecipeDatabase::CountForRegion(Region region) const {
  size_t n = 0;
  for (const Recipe& r : recipes_) {
    if (r.region == region) ++n;
  }
  return n;
}

Cuisine RecipeDatabase::CuisineFor(Region region) const {
  std::vector<Recipe> selected;
  for (const Recipe& r : recipes_) {
    if (r.region == region) selected.push_back(r);
  }
  return Cuisine(region, std::move(selected));
}

Cuisine RecipeDatabase::WorldCuisine() const {
  return Cuisine(Region::kWorld, recipes_);
}

std::vector<Cuisine> RecipeDatabase::AllCuisines() const {
  std::vector<Cuisine> out;
  out.reserve(kNumRegions);
  for (int i = 0; i < kNumRegions; ++i) {
    out.push_back(CuisineFor(AllRegions()[i]));
  }
  return out;
}

culinary::Status RecipeDatabase::SaveCsv(const std::string& path) const {
  df::Schema schema({{"id", df::DataType::kInt64},
                     {"name", df::DataType::kString},
                     {"region", df::DataType::kString},
                     {"ingredients", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table table, df::Table::Make(schema));
  for (const Recipe& r : recipes_) {
    std::vector<std::string> names;
    names.reserve(r.ingredients.size());
    for (flavor::IngredientId id : r.ingredients) {
      const flavor::Ingredient* ing = registry_->Find(id);
      if (ing != nullptr) names.push_back(ing->name);
    }
    CULINARY_RETURN_IF_ERROR(table.AppendRow(
        {df::Value::Int(r.id), df::Value::Str(r.name),
         df::Value::Str(std::string(RegionCode(r.region))),
         df::Value::Str(culinary::Join(names, ";"))}));
  }
  df::CsvWriteOptions write_options;
  write_options.atomic_write = true;
  return df::WriteCsvFile(table, path, write_options)
      .WithContext("saving recipe database to " + path);
}

namespace {

/// Shared row-resolution loop. `csv_policy` governs the CSV layer,
/// `row_policy` the resolution layer — the legacy LoadCsv entry point is
/// strict about CSV damage but always skipped unresolvable rows.
culinary::Result<RecipeDatabase> LoadCsvImpl(
    const std::string& path, const flavor::FlavorRegistry* registry,
    robustness::ErrorPolicy csv_policy, robustness::ErrorPolicy row_policy,
    robustness::ErrorSink* sink, const robustness::RetryPolicy& retry,
    IngestReport* report) {
  if (registry == nullptr) {
    return culinary::Status::InvalidArgument("registry must not be null");
  }
  CULINARY_OBS_SPAN(ingest_span, "ingest.load_recipes", "ingest");
  IngestReport local;
  df::CsvReadOptions read_options;
  read_options.error_policy = csv_policy;
  read_options.error_sink = sink;
  read_options.stats = &local.records;
  auto table_read = df::ReadCsvFileRetry(path, read_options, retry);
  if (!table_read.ok()) {
    return table_read.status().WithContext("loading recipe database from " +
                                           path);
  }
  df::Table table = std::move(table_read).value();
  for (const char* col : {"name", "region", "ingredients"}) {
    if (!table.schema().HasField(col)) {
      return culinary::Status::ParseError(std::string("missing column '") +
                                          col + "' in " + path);
    }
  }
  const bool strict_rows = row_policy == robustness::ErrorPolicy::kStrict;
  auto quarantine = [&](size_t row, std::string message,
                        std::string snippet) -> culinary::Status {
    if (strict_rows) {
      return culinary::Status::ParseError("row " + std::to_string(row) +
                                          " of " + path + ": " + message);
    }
    if (sink != nullptr) {
      sink->Report(/*line=*/0, /*column=*/0, StatusCode::kParseError,
                   "row " + std::to_string(row) + ": " + std::move(message),
                   std::move(snippet));
    }
    ++local.rows_quarantined;
    return culinary::Status::OK();
  };

  RecipeDatabase db(registry);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    CULINARY_ASSIGN_OR_RETURN(df::Value name_v, table.GetValueChecked(r, "name"));
    CULINARY_ASSIGN_OR_RETURN(df::Value region_v,
                              table.GetValueChecked(r, "region"));
    CULINARY_ASSIGN_OR_RETURN(df::Value ing_v,
                              table.GetValueChecked(r, "ingredients"));
    if (region_v.is_null() || ing_v.is_null()) {
      CULINARY_RETURN_IF_ERROR(
          quarantine(r, "null region or ingredients", std::string()));
      continue;
    }
    auto region = RegionFromCode(region_v.as_string());
    if (!region.has_value() || *region == Region::kWorld) {
      CULINARY_RETURN_IF_ERROR(quarantine(
          r, "unknown region '" + region_v.as_string() + "'",
          region_v.as_string()));
      continue;
    }
    std::vector<flavor::IngredientId> ids;
    size_t dropped_names = 0;
    for (const std::string& raw : culinary::Split(ing_v.as_string(), ';')) {
      std::string_view trimmed = culinary::Trim(raw);
      if (trimmed.empty()) continue;
      flavor::IngredientId id = registry->FindByName(trimmed);
      if (id != flavor::kInvalidIngredient) {
        ids.push_back(id);
      } else {
        if (strict_rows) {
          return culinary::Status::ParseError(
              "row " + std::to_string(r) + " of " + path +
              ": unknown ingredient '" + std::string(trimmed) + "'");
        }
        ++dropped_names;
      }
    }
    local.ingredient_names_dropped += dropped_names;
    if (ids.empty()) {
      CULINARY_RETURN_IF_ERROR(quarantine(
          r, "no resolvable ingredient", ing_v.as_string()));
      continue;
    }
    std::string name = name_v.is_null() ? "" : name_v.as_string();
    auto added = db.AddRecipe(std::move(name), *region, std::move(ids));
    if (!added.ok()) {
      CULINARY_RETURN_IF_ERROR(
          quarantine(r, added.status().message(), std::string()));
      continue;
    }
    ++local.rows_loaded;
  }
  // Ingestion accounting mirrors IngestReport, so --metrics-out shows how
  // much of a degraded corpus actually survived.
  CULINARY_OBS_COUNT("ingest.csv.records_read", local.records.records_total);
  CULINARY_OBS_COUNT("ingest.csv.records_quarantined",
                     local.records.records_quarantined);
  CULINARY_OBS_COUNT("ingest.recipes.rows_loaded", local.rows_loaded);
  CULINARY_OBS_COUNT("ingest.recipes.rows_quarantined",
                     local.rows_quarantined);
  CULINARY_OBS_COUNT("ingest.recipes.ingredient_names_dropped",
                     local.ingredient_names_dropped);
  if (report != nullptr) *report = local;
  return db;
}

}  // namespace

culinary::Result<RecipeDatabase> RecipeDatabase::LoadCsv(
    const std::string& path, const flavor::FlavorRegistry* registry,
    size_t* skipped_rows) {
  IngestReport report;
  CULINARY_ASSIGN_OR_RETURN(
      RecipeDatabase db,
      LoadCsvImpl(path, registry,
                  /*csv_policy=*/robustness::ErrorPolicy::kStrict,
                  /*row_policy=*/robustness::ErrorPolicy::kSkipAndReport,
                  /*sink=*/nullptr, robustness::RetryPolicy::None(),
                  &report));
  if (skipped_rows != nullptr) *skipped_rows = report.rows_quarantined;
  return db;
}

culinary::Result<RecipeDatabase> RecipeDatabase::LoadCsv(
    const std::string& path, const flavor::FlavorRegistry* registry,
    const IngestOptions& options, IngestReport* report) {
  return LoadCsvImpl(path, registry, options.error_policy,
                     options.error_policy, options.error_sink, options.retry,
                     report);
}

}  // namespace culinary::recipe
