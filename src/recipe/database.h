#ifndef CULINARYLAB_RECIPE_DATABASE_H_
#define CULINARYLAB_RECIPE_DATABASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"
#include "recipe/parser.h"
#include "recipe/recipe.h"
#include "recipe/region.h"

namespace culinary::recipe {

/// The project's CulinaryDB equivalent: the full repertoire of recipes
/// across all regions, with region grouping, the WORLD aggregate, and CSV
/// persistence (ingredients serialized by canonical name against a
/// `FlavorRegistry`).
///
/// The registry is borrowed and must outlive the database.
class RecipeDatabase {
 public:
  /// `registry` must be non-null and outlive the database.
  explicit RecipeDatabase(const flavor::FlavorRegistry* registry)
      : registry_(registry) {}

  /// Adds a recipe. Ingredient ids are canonicalized; ids unknown to the
  /// registry are rejected with InvalidArgument; a recipe with an empty
  /// (post-canonicalization) ingredient list is rejected, matching the
  /// paper's inclusion rule. Returns the assigned recipe id.
  culinary::Result<RecipeId> AddRecipe(std::string name, Region region,
                                       std::vector<flavor::IngredientId> ids);

  /// Adds a recipe from raw ingredient phrases, running the aliasing
  /// protocol of `parser` (which must target this database's registry).
  /// Phrases that do not fully match are reported through
  /// `*partial_or_unrecognized` (may be null); the recipe is accepted as
  /// long as at least one ingredient resolves.
  culinary::Result<RecipeId> AddRecipeFromPhrases(
      std::string name, Region region,
      const std::vector<std::string>& phrases,
      const IngredientPhraseParser& parser,
      std::vector<std::string>* partial_or_unrecognized = nullptr);

  size_t num_recipes() const { return recipes_.size(); }
  const std::vector<Recipe>& recipes() const { return recipes_; }
  const flavor::FlavorRegistry& registry() const { return *registry_; }

  /// Number of recipes attributed to `region`.
  size_t CountForRegion(Region region) const;

  /// The cuisine of one region (copies the region's recipes).
  Cuisine CuisineFor(Region region) const;

  /// The WORLD aggregate cuisine over every recipe.
  Cuisine WorldCuisine() const;

  /// All 22 regional cuisines, in `AllRegions()` order.
  std::vector<Cuisine> AllCuisines() const;

  // --- Persistence --------------------------------------------------------
  //
  // CSV schema: id,name,region,ingredients — `ingredients` is a
  // ';'-separated list of canonical ingredient names.

  /// Writes the database to a CSV file.
  culinary::Status SaveCsv(const std::string& path) const;

  /// Loads a database from CSV, resolving ingredient names through
  /// `registry`. Rows with an unknown region are skipped and counted in
  /// `*skipped_rows` (may be null); unknown ingredient names within a row
  /// are dropped; rows left with no ingredients are skipped.
  static culinary::Result<RecipeDatabase> LoadCsv(
      const std::string& path, const flavor::FlavorRegistry* registry,
      size_t* skipped_rows = nullptr);

 private:
  const flavor::FlavorRegistry* registry_;
  std::vector<Recipe> recipes_;
};

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_DATABASE_H_
