#ifndef CULINARYLAB_RECIPE_DATABASE_H_
#define CULINARYLAB_RECIPE_DATABASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"
#include "recipe/parser.h"
#include "recipe/recipe.h"
#include "recipe/region.h"
#include "robustness/error_sink.h"
#include "robustness/retry.h"

namespace culinary::recipe {

/// Controls degraded-mode loading of a recipe CSV (see LoadCsv below).
struct IngestOptions {
  /// Applies to both the CSV layer (malformed records) and the resolution
  /// layer (unknown regions / ingredient names). kStrict fails fast with a
  /// located ParseError; kSkipAndReport quarantines bad rows; kBestEffort
  /// additionally salvages ragged CSV rows.
  robustness::ErrorPolicy error_policy =
      robustness::ErrorPolicy::kSkipAndReport;
  /// Receives per-row diagnostics under the degraded policies (may be null).
  robustness::ErrorSink* error_sink = nullptr;
  /// Retry schedule for transient IO failures.
  robustness::RetryPolicy retry = robustness::RetryPolicy::None();
};

/// Accounting for one recipe-CSV ingestion: how much of the corpus
/// survived, and where the losses happened. Experiment drivers surface
/// `coverage()` next to their results whenever they ran on degraded data.
struct IngestReport {
  /// CSV-record-level accounting (malformed / quarantined records).
  robustness::IngestStats records;
  /// Recipes actually added to the database.
  size_t rows_loaded = 0;
  /// Structurally valid rows dropped at resolution time (unknown region,
  /// no resolvable ingredient, rejected by AddRecipe).
  size_t rows_quarantined = 0;
  /// Unknown ingredient names dropped inside otherwise-kept rows.
  size_t ingredient_names_dropped = 0;

  /// Recipes loaded over data records seen; 1.0 for an empty input.
  double coverage() const {
    return records.records_total == 0
               ? 1.0
               : static_cast<double>(rows_loaded) /
                     static_cast<double>(records.records_total);
  }

  /// One-line roll-up for logs and reports.
  std::string Summary() const;
};

/// The project's CulinaryDB equivalent: the full repertoire of recipes
/// across all regions, with region grouping, the WORLD aggregate, and CSV
/// persistence (ingredients serialized by canonical name against a
/// `FlavorRegistry`).
///
/// The registry is borrowed and must outlive the database.
class RecipeDatabase {
 public:
  /// `registry` must be non-null and outlive the database.
  explicit RecipeDatabase(const flavor::FlavorRegistry* registry)
      : registry_(registry) {}

  /// Adds a recipe. Ingredient ids are canonicalized; ids unknown to the
  /// registry are rejected with InvalidArgument; a recipe with an empty
  /// (post-canonicalization) ingredient list is rejected, matching the
  /// paper's inclusion rule. Returns the assigned recipe id.
  culinary::Result<RecipeId> AddRecipe(std::string name, Region region,
                                       std::vector<flavor::IngredientId> ids);

  /// Adds a recipe from raw ingredient phrases, running the aliasing
  /// protocol of `parser` (which must target this database's registry).
  /// Phrases that do not fully match are reported through
  /// `*partial_or_unrecognized` (may be null); the recipe is accepted as
  /// long as at least one ingredient resolves.
  culinary::Result<RecipeId> AddRecipeFromPhrases(
      std::string name, Region region,
      const std::vector<std::string>& phrases,
      const IngredientPhraseParser& parser,
      std::vector<std::string>* partial_or_unrecognized = nullptr);

  size_t num_recipes() const { return recipes_.size(); }
  const std::vector<Recipe>& recipes() const { return recipes_; }
  const flavor::FlavorRegistry& registry() const { return *registry_; }

  /// Number of recipes attributed to `region`.
  size_t CountForRegion(Region region) const;

  /// The cuisine of one region (copies the region's recipes).
  Cuisine CuisineFor(Region region) const;

  /// The WORLD aggregate cuisine over every recipe.
  Cuisine WorldCuisine() const;

  /// All 22 regional cuisines, in `AllRegions()` order.
  std::vector<Cuisine> AllCuisines() const;

  // --- Persistence --------------------------------------------------------
  //
  // CSV schema: id,name,region,ingredients — `ingredients` is a
  // ';'-separated list of canonical ingredient names.

  /// Writes the database to a CSV file crash-safely (temp file + rename).
  culinary::Status SaveCsv(const std::string& path) const;

  /// Loads a database from CSV, resolving ingredient names through
  /// `registry`. Rows with an unknown region are skipped and counted in
  /// `*skipped_rows` (may be null); unknown ingredient names within a row
  /// are dropped; rows left with no ingredients are skipped. Malformed CSV
  /// (ragged rows, broken quoting) is a ParseError; use the `IngestOptions`
  /// overload to survive corrupt corpora.
  static culinary::Result<RecipeDatabase> LoadCsv(
      const std::string& path, const flavor::FlavorRegistry* registry,
      size_t* skipped_rows = nullptr);

  /// Degraded-mode load: `options.error_policy` governs both malformed CSV
  /// records and unresolvable rows (see IngestOptions). `report` (may be
  /// null) receives quarantine counts and the data-coverage fraction;
  /// `options.error_sink` receives per-row diagnostics.
  static culinary::Result<RecipeDatabase> LoadCsv(
      const std::string& path, const flavor::FlavorRegistry* registry,
      const IngestOptions& options, IngestReport* report = nullptr);

 private:
  const flavor::FlavorRegistry* registry_;
  std::vector<Recipe> recipes_;
};

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_DATABASE_H_
