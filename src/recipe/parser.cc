#include "recipe/parser.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/edit_distance.h"
#include "text/inflect.h"
#include "text/ngram.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace culinary::recipe {

namespace {

/// Normalizes a dictionary name the same way phrase tokens are normalized:
/// tokenize, singularize, rejoin. Keeps dictionary and query in one space.
std::string NormalizeDictName(std::string_view name) {
  text::TokenizerOptions topt;
  std::vector<std::string> tokens = text::Tokenize(name, topt);
  tokens = text::SingularizeAll(tokens);
  return culinary::Join(tokens, " ");
}

}  // namespace

IngredientPhraseParser::IngredientPhraseParser(
    const flavor::FlavorRegistry* registry, ParserOptions options)
    : registry_(registry), options_(options) {
  for (const auto& [name, id] : registry_->AllNames()) {
    std::string normalized = NormalizeDictName(name);
    if (normalized.empty()) continue;
    // First writer wins; synonyms never shadow canonical names because
    // AllNames yields canonical names first.
    exact_.emplace(normalized, id);
    if (normalized.find(' ') == std::string::npos) {
      single_token_names_.push_back({normalized, id});
    }
  }
}

flavor::IngredientId IngredientPhraseParser::Lookup(
    const std::string& joined) const {
  auto it = exact_.find(joined);
  return it == exact_.end() ? flavor::kInvalidIngredient : it->second;
}

flavor::IngredientId IngredientPhraseParser::FuzzyLookup(
    const std::string& token) const {
  if (token.size() < options_.min_fuzzy_length) {
    return flavor::kInvalidIngredient;
  }
  flavor::IngredientId best = flavor::kInvalidIngredient;
  size_t best_distance = options_.fuzzy_max_distance + 1;
  for (const DictEntry& entry : single_token_names_) {
    size_t la = entry.normalized.size();
    size_t lb = token.size();
    size_t gap = la > lb ? la - lb : lb - la;
    if (gap >= best_distance) continue;
    if (entry.normalized.size() < options_.min_fuzzy_length) continue;
    size_t d =
        text::DamerauLevenshteinDistance(entry.normalized, token);
    if (d < best_distance) {
      best_distance = d;
      best = entry.id;
      if (d == 0) break;
    }
  }
  return best;
}

void IngredientPhraseParser::ScanTokens(
    const std::vector<std::string>& tokens,
    std::vector<flavor::IngredientId>& matches,
    std::vector<bool>& consumed, size_t min_len) const {
  const size_t n = tokens.size();
  size_t max_n = std::min(options_.max_ngram, n);
  if (min_len == 0) min_len = 1;
  if (max_n < min_len) return;
  for (size_t len = max_n; len >= min_len; --len) {
    for (size_t start = 0; start + len <= n; ++start) {
      bool free_span = true;
      for (size_t i = start; i < start + len; ++i) {
        if (consumed[i]) {
          free_span = false;
          break;
        }
      }
      if (!free_span) continue;
      std::string joined;
      for (size_t i = start; i < start + len; ++i) {
        if (i > start) joined.push_back(' ');
        joined.append(tokens[i]);
      }
      flavor::IngredientId id = Lookup(joined);
      if (id == flavor::kInvalidIngredient) continue;
      matches.push_back(id);
      for (size_t i = start; i < start + len; ++i) consumed[i] = true;
    }
    if (len == min_len) break;
  }
}

PhraseMatch IngredientPhraseParser::Parse(std::string_view phrase) const {
  PhraseMatch result;

  // Step 1: lowercase, strip punctuation, drop numerics, singularize.
  text::TokenizerOptions topt;
  std::vector<std::string> tokens = text::Tokenize(phrase, topt);
  tokens = text::SingularizeAll(tokens);
  if (tokens.empty()) return result;

  // Step 2: n-gram scan over the full token sequence, multi-token entities
  // only. Multi-word entities whose tokens look like stopwords ("half
  // half") must be caught here; unigrams wait for the stopword-filtered
  // pass so a premature single-token match ("olive") cannot shadow a
  // stopword-interrupted multi-token entity ("olive ... oil").
  std::vector<bool> consumed(tokens.size(), false);
  ScanTokens(tokens, result.ids, consumed, /*min_len=*/2);

  // Step 3: drop stopwords among unconsumed tokens; rescan the compacted
  // sequence (stopword removal can make an entity contiguous).
  const text::StopwordSet& stops = text::StopwordSet::EnglishAndCulinary();
  std::vector<std::string> remaining;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!consumed[i] && !stops.Contains(tokens[i])) {
      remaining.push_back(tokens[i]);
    }
  }
  std::vector<bool> remaining_consumed(remaining.size(), false);
  ScanTokens(remaining, result.ids, remaining_consumed, /*min_len=*/1);

  // Step 4: fuzzy match leftover tokens against single-token names.
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (remaining_consumed[i]) continue;
    if (!options_.enable_fuzzy) {
      result.leftover_tokens.push_back(remaining[i]);
      continue;
    }
    flavor::IngredientId id = FuzzyLookup(remaining[i]);
    if (id != flavor::kInvalidIngredient) {
      result.ids.push_back(id);
      result.used_fuzzy = true;
    } else {
      result.leftover_tokens.push_back(remaining[i]);
    }
  }

  // Deduplicate ids preserving first-appearance order.
  std::vector<flavor::IngredientId> unique;
  for (flavor::IngredientId id : result.ids) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
      unique.push_back(id);
    }
  }
  result.ids = std::move(unique);

  // Step 5: classification.
  if (result.ids.empty()) {
    result.status = MatchStatus::kUnrecognized;
  } else if (result.leftover_tokens.empty()) {
    result.status = MatchStatus::kMatched;
  } else {
    result.status = MatchStatus::kPartial;
  }
  return result;
}

std::vector<flavor::IngredientId> IngredientPhraseParser::ParsePhrases(
    const std::vector<std::string>& phrases,
    std::vector<std::string>* partial_or_unrecognized) const {
  std::vector<flavor::IngredientId> ids;
  for (const std::string& phrase : phrases) {
    PhraseMatch m = Parse(phrase);
    if (m.status != MatchStatus::kMatched && partial_or_unrecognized != nullptr) {
      partial_or_unrecognized->push_back(phrase);
    }
    for (flavor::IngredientId id : m.ids) {
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
  }
  return ids;
}

}  // namespace culinary::recipe
