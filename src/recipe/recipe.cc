#include "recipe/recipe.h"

#include <algorithm>

namespace culinary::recipe {

void CanonicalizeIngredients(std::vector<flavor::IngredientId>& ingredients) {
  ingredients.erase(
      std::remove_if(ingredients.begin(), ingredients.end(),
                     [](flavor::IngredientId id) { return id < 0; }),
      ingredients.end());
  std::sort(ingredients.begin(), ingredients.end());
  ingredients.erase(std::unique(ingredients.begin(), ingredients.end()),
                    ingredients.end());
}

}  // namespace culinary::recipe
