#ifndef CULINARYLAB_RECIPE_CUISINE_H_
#define CULINARYLAB_RECIPE_CUISINE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statistics.h"
#include "flavor/ingredient.h"
#include "recipe/recipe.h"
#include "recipe/region.h"

namespace culinary::recipe {

/// A cuisine: the collection of recipes attributed to one region, plus the
/// derived statistics every analysis consumes — the unique ingredient set,
/// the empirical frequency of use of each ingredient, and the recipe-size
/// distribution. Statistics are computed once at construction.
class Cuisine {
 public:
  /// Builds a cuisine from recipes. Recipes are canonicalized (sorted,
  /// deduplicated ingredient lists); recipes with zero ingredients are
  /// dropped, matching the paper's inclusion rule ("only those recipes ...
  /// for which information of cuisine and ingredients list were available").
  Cuisine(Region region, std::vector<Recipe> recipes);

  Region region() const { return region_; }
  const std::vector<Recipe>& recipes() const { return recipes_; }
  size_t num_recipes() const { return recipes_.size(); }

  /// Distinct ingredient ids used anywhere in the cuisine, ascending.
  const std::vector<flavor::IngredientId>& unique_ingredients() const {
    return unique_ingredients_;
  }

  /// Number of recipes each ingredient occurs in (the paper's "frequency of
  /// use of ingredients").
  const std::unordered_map<flavor::IngredientId, int64_t>& frequency() const {
    return frequency_;
  }

  /// Frequency of one ingredient (0 when unused).
  int64_t FrequencyOf(flavor::IngredientId id) const;

  /// Recipe-size distribution (n_R over recipes).
  const culinary::Histogram& size_histogram() const { return size_histogram_; }

  /// Mean number of ingredients per recipe.
  double MeanRecipeSize() const { return size_histogram_.MeanValue(); }

  /// (ingredient, frequency) pairs sorted by descending frequency, ties by
  /// ascending id — the popularity ranking of Fig 3b.
  std::vector<std::pair<flavor::IngredientId, int64_t>> ByPopularity() const;

  /// Recipes with at least two ingredients (those entering pairing).
  size_t num_pairable_recipes() const { return num_pairable_; }

 private:
  Region region_;
  std::vector<Recipe> recipes_;
  std::vector<flavor::IngredientId> unique_ingredients_;
  std::unordered_map<flavor::IngredientId, int64_t> frequency_;
  culinary::Histogram size_histogram_;
  size_t num_pairable_ = 0;
};

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_CUISINE_H_
