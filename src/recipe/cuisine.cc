#include "recipe/cuisine.h"

#include <algorithm>

namespace culinary::recipe {

Cuisine::Cuisine(Region region, std::vector<Recipe> recipes)
    : region_(region) {
  recipes_.reserve(recipes.size());
  for (Recipe& r : recipes) {
    CanonicalizeIngredients(r.ingredients);
    if (r.ingredients.empty()) continue;
    for (flavor::IngredientId id : r.ingredients) ++frequency_[id];
    size_histogram_.Add(static_cast<int64_t>(r.ingredients.size()));
    if (r.IsPairable()) ++num_pairable_;
    recipes_.push_back(std::move(r));
  }
  unique_ingredients_.reserve(frequency_.size());
  for (const auto& [id, count] : frequency_) unique_ingredients_.push_back(id);
  std::sort(unique_ingredients_.begin(), unique_ingredients_.end());
}

int64_t Cuisine::FrequencyOf(flavor::IngredientId id) const {
  auto it = frequency_.find(id);
  return it == frequency_.end() ? 0 : it->second;
}

std::vector<std::pair<flavor::IngredientId, int64_t>> Cuisine::ByPopularity()
    const {
  std::vector<std::pair<flavor::IngredientId, int64_t>> out(frequency_.begin(),
                                                            frequency_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace culinary::recipe
