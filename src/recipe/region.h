#ifndef CULINARYLAB_RECIPE_REGION_H_
#define CULINARYLAB_RECIPE_REGION_H_

#include <optional>
#include <string_view>

namespace culinary::recipe {

/// The 22 geo-cultural regions of the paper (Table 1) plus the WORLD
/// aggregate. Region codes follow the paper ("AFR", "ANZ", ...).
enum class Region : int {
  kAfrica = 0,
  kAustraliaNz = 1,
  kBritishIsles = 2,
  kCanada = 3,
  kCaribbean = 4,
  kChina = 5,
  kDach = 6,
  kEasternEurope = 7,
  kFrance = 8,
  kGreece = 9,
  kIndianSubcontinent = 10,
  kItaly = 11,
  kJapan = 12,
  kKorea = 13,
  kMexico = 14,
  kMiddleEast = 15,
  kScandinavia = 16,
  kSouthAmerica = 17,
  kSouthEastAsia = 18,
  kSpain = 19,
  kThailand = 20,
  kUsa = 21,
  /// Aggregate over all regions (plus small unassigned regions in the
  /// paper; here exactly the union of the 22).
  kWorld = 22,
};

/// Number of proper regions (excluding kWorld).
inline constexpr int kNumRegions = 22;

/// Short code used in figures and CSVs ("AFR", "ANZ", ..., "WORLD").
std::string_view RegionCode(Region region);

/// Full display name ("Africa", "Australia & NZ", ...).
std::string_view RegionName(Region region);

/// Parses a region code (case-insensitive); nullopt for unknown codes.
std::optional<Region> RegionFromCode(std::string_view code);

/// All proper regions in Table 1 order (alphabetical by name, as printed).
const Region* AllRegions();

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_REGION_H_
