#include "recipe/region.h"

#include "common/string_util.h"

namespace culinary::recipe {

namespace {

struct RegionInfo {
  std::string_view code;
  std::string_view name;
};

constexpr RegionInfo kInfo[kNumRegions + 1] = {
    {"AFR", "Africa"},
    {"ANZ", "Australia & NZ"},
    {"BRI", "British Isles"},
    {"CAN", "Canada"},
    {"CBN", "Caribbean"},
    {"CHN", "China"},
    {"DACH", "DACH Countries"},
    {"EE", "Eastern Europe"},
    {"FRA", "France"},
    {"GRC", "Greece"},
    {"INSC", "Indian Subcontinent"},
    {"ITA", "Italy"},
    {"JPN", "Japan"},
    {"KOR", "Korea"},
    {"MEX", "Mexico"},
    {"ME", "Middle East"},
    {"SCND", "Scandinavia"},
    {"SAM", "South America"},
    {"SEA", "South East Asia"},
    {"ESP", "Spain"},
    {"THA", "Thailand"},
    {"USA", "USA"},
    {"WORLD", "World"},
};

constexpr Region kAll[kNumRegions] = {
    Region::kAfrica,        Region::kAustraliaNz,
    Region::kBritishIsles,  Region::kCanada,
    Region::kCaribbean,     Region::kChina,
    Region::kDach,          Region::kEasternEurope,
    Region::kFrance,        Region::kGreece,
    Region::kIndianSubcontinent, Region::kItaly,
    Region::kJapan,         Region::kKorea,
    Region::kMexico,        Region::kMiddleEast,
    Region::kScandinavia,   Region::kSouthAmerica,
    Region::kSouthEastAsia, Region::kSpain,
    Region::kThailand,      Region::kUsa,
};

}  // namespace

std::string_view RegionCode(Region region) {
  int i = static_cast<int>(region);
  if (i < 0 || i > kNumRegions) return "?";
  return kInfo[i].code;
}

std::string_view RegionName(Region region) {
  int i = static_cast<int>(region);
  if (i < 0 || i > kNumRegions) return "?";
  return kInfo[i].name;
}

std::optional<Region> RegionFromCode(std::string_view code) {
  std::string upper = culinary::ToUpper(code);
  for (int i = 0; i <= kNumRegions; ++i) {
    if (kInfo[i].code == upper) return static_cast<Region>(i);
  }
  return std::nullopt;
}

const Region* AllRegions() { return kAll; }

}  // namespace culinary::recipe
