#ifndef CULINARYLAB_RECIPE_RECIPE_H_
#define CULINARYLAB_RECIPE_RECIPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flavor/ingredient.h"
#include "recipe/region.h"

namespace culinary::recipe {

/// Identifier of a recipe within a `RecipeDatabase`.
using RecipeId = int64_t;

/// A traditional recipe reduced to the representation the paper analyses:
/// an unordered list of unique ingredients attributed to a region
/// ("each recipe was treated as an unordered list of ingredients").
///
/// `ingredients` is kept sorted and deduplicated by the owning database /
/// cuisine so pairing loops are deterministic.
struct Recipe {
  RecipeId id = -1;
  std::string name;
  Region region = Region::kWorld;
  /// Sorted unique ingredient ids (aliased against a FlavorRegistry).
  std::vector<flavor::IngredientId> ingredients;

  /// Number of distinct ingredients (the "recipe size" n_R).
  size_t size() const { return ingredients.size(); }

  /// True iff the recipe can contribute to food pairing (needs >= 2
  /// ingredients to form a pair).
  bool IsPairable() const { return ingredients.size() >= 2; }
};

/// Sorts and deduplicates `ingredients` in place, dropping invalid ids.
void CanonicalizeIngredients(std::vector<flavor::IngredientId>& ingredients);

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_RECIPE_H_
