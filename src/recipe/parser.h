#ifndef CULINARYLAB_RECIPE_PARSER_H_
#define CULINARYLAB_RECIPE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "flavor/registry.h"

namespace culinary::recipe {

/// Outcome class of parsing one ingredient phrase (paper §IV.A: "Partial
/// matches and unrecognized ingredients were explicitly labeled for manual
/// curation").
enum class MatchStatus : int {
  /// Every content token was consumed by ingredient matches.
  kMatched = 0,
  /// At least one ingredient matched, but content tokens remain.
  kPartial = 1,
  /// No ingredient matched.
  kUnrecognized = 2,
};

/// Result of parsing a single raw ingredient phrase.
struct PhraseMatch {
  MatchStatus status = MatchStatus::kUnrecognized;
  /// Matched ingredient ids, in order of appearance (deduplicated).
  std::vector<flavor::IngredientId> ids;
  /// Content tokens (post-normalization) not consumed by any match.
  std::vector<std::string> leftover_tokens;
  /// True when any match was produced by the fuzzy (edit-distance) step
  /// rather than exact dictionary lookup.
  bool used_fuzzy = false;
};

/// Options for the aliasing protocol.
struct ParserOptions {
  /// Longest n-gram tried during the dictionary scan (paper: 6).
  size_t max_ngram = 6;
  /// Maximum Damerau–Levenshtein distance for the fuzzy step.
  size_t fuzzy_max_distance = 1;
  /// Minimum token length eligible for fuzzy matching (short tokens
  /// produce too many false positives: "ham"/"has").
  size_t min_fuzzy_length = 5;
  /// Enable the fuzzy step.
  bool enable_fuzzy = true;
};

/// Implements the multi-step ingredient aliasing protocol of paper §IV.A:
/// mapping free-text ingredient phrases ("2 jalapeno peppers, roasted and
/// slit") onto registry entities.
///
/// Pipeline per phrase:
///   1. lowercase, strip punctuation/special characters, drop numeric
///      tokens, singularize every token;
///   2. longest-first n-gram scan (max_ngram..1) against canonical names
///      and synonyms — *before* stopword removal, so multi-word entities
///      containing stopword-like tokens ("half half") still match;
///   3. drop English + culinary stopwords from the unconsumed tokens and
///      scan again (stopwords may interrupt an entity:
///      "chicken, boneless breast" → "chicken breast");
///   4. bounded edit-distance fuzzy match for leftover tokens (spelling
///      variants: "whiskey"/"whisky");
///   5. classify as matched / partial / unrecognized.
///
/// The parser snapshots the registry's name table at construction; rebuild
/// the parser after mutating the registry.
class IngredientPhraseParser {
 public:
  /// `registry` must be non-null and outlive the parser.
  explicit IngredientPhraseParser(const flavor::FlavorRegistry* registry,
                                  ParserOptions options = {});

  /// Parses one raw ingredient phrase.
  PhraseMatch Parse(std::string_view phrase) const;

  /// Parses a whole recipe's phrase list into a deduplicated ingredient id
  /// list; phrases that fail to match fully are reported through
  /// `*partial_or_unrecognized` (may be null).
  std::vector<flavor::IngredientId> ParsePhrases(
      const std::vector<std::string>& phrases,
      std::vector<std::string>* partial_or_unrecognized = nullptr) const;

 private:
  struct DictEntry {
    std::string normalized;  ///< singularized, space-joined name
    flavor::IngredientId id;
  };

  /// Exact lookup of a normalized n-gram; kInvalidIngredient when absent.
  flavor::IngredientId Lookup(const std::string& joined) const;

  /// Fuzzy lookup of one token; kInvalidIngredient when no candidate is
  /// within the edit budget (single-token names only).
  flavor::IngredientId FuzzyLookup(const std::string& token) const;

  /// Runs the n-gram consumption scan over `tokens` for n-gram lengths in
  /// [min_len, max_ngram], longest first, appending matches and marking
  /// consumed positions.
  void ScanTokens(const std::vector<std::string>& tokens,
                  std::vector<flavor::IngredientId>& matches,
                  std::vector<bool>& consumed, size_t min_len) const;

  const flavor::FlavorRegistry* registry_;
  ParserOptions options_;
  std::unordered_map<std::string, flavor::IngredientId> exact_;
  std::vector<DictEntry> single_token_names_;
};

}  // namespace culinary::recipe

#endif  // CULINARYLAB_RECIPE_PARSER_H_
