#ifndef CULINARYLAB_DATAFRAME_COLUMN_H_
#define CULINARYLAB_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "dataframe/types.h"

namespace culinary::df {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// Abstract typed column with a packed validity bitmap.
///
/// Columns are append-only during construction and immutable once shared
/// inside a `Table` (operations produce new columns). Null handling: every
/// column tracks per-row validity; `GetValue` returns `Value::Null()` for
/// invalid rows. Validity is stored one bit per row (`culinary::Bitmap`) so
/// the expression kernels can AND whole uint64 words of it into selection
/// bitmaps and popcount null-skips instead of branching per row.
class Column {
 public:
  virtual ~Column() = default;

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  /// The physical type of the column.
  virtual DataType type() const = 0;

  /// Number of rows.
  size_t size() const { return valid_.num_bits(); }

  /// Number of null rows.
  size_t null_count() const { return null_count_; }

  /// True iff row `i` is null.
  bool IsNull(size_t i) const { return !valid_.Test(i); }

  /// Packed validity: bit `i` set iff row `i` is non-null. Kernels borrow
  /// `validity().words()` for word-at-a-time null skipping.
  const culinary::Bitmap& validity() const { return valid_; }

  /// Dynamically typed accessor for row `i`.
  virtual Value GetValue(size_t i) const = 0;

  /// Appends a dynamically typed value. Returns InvalidArgument when the
  /// value's type does not match the column (nulls always match). Integers
  /// widen implicitly into double columns.
  virtual culinary::Status AppendValue(const Value& value) = 0;

  /// Appends a null row.
  void AppendNull() {
    valid_.PushBack(false);
    ++null_count_;
    GrowStorage();
  }

  /// Pre-allocates capacity for `rows` total rows (validity + values).
  void Reserve(size_t rows) {
    valid_.Reserve(rows);
    ReserveStorage(rows);
  }

  /// A new column with rows reordered / subset per `indices` (each index
  /// must be < size()).
  virtual ColumnPtr Take(const std::vector<size_t>& indices) const = 0;

  /// A fresh empty column of the same type.
  virtual ColumnPtr CloneEmpty() const = 0;

 protected:
  Column() = default;

  void MarkValid() { valid_.PushBack(true); }

  /// Hook for derived classes to keep their value storage aligned with the
  /// validity bitmap when a null is appended.
  virtual void GrowStorage() = 0;

  /// Hook for derived classes to pre-allocate value storage.
  virtual void ReserveStorage(size_t rows) = 0;

  culinary::Bitmap valid_;
  size_t null_count_ = 0;
};

/// Column of 64-bit integers.
class Int64Column final : public Column {
 public:
  Int64Column() = default;

  DataType type() const override { return DataType::kInt64; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  /// Appends a non-null element.
  void Append(int64_t v) {
    data_.push_back(v);
    MarkValid();
  }

  /// Raw accessor; undefined for null rows.
  int64_t at(size_t i) const { return data_[i]; }

  /// Contiguous value storage (null rows hold 0). For kernels.
  const int64_t* data() const { return data_.data(); }

 private:
  void GrowStorage() override { data_.push_back(0); }
  void ReserveStorage(size_t rows) override { data_.reserve(rows); }

  std::vector<int64_t> data_;
};

/// Column of doubles.
class DoubleColumn final : public Column {
 public:
  DoubleColumn() = default;

  DataType type() const override { return DataType::kDouble; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  void Append(double v) {
    data_.push_back(v);
    MarkValid();
  }

  double at(size_t i) const { return data_[i]; }

  /// Contiguous value storage (null rows hold 0.0). For kernels.
  const double* data() const { return data_.data(); }

 private:
  void GrowStorage() override { data_.push_back(0.0); }
  void ReserveStorage(size_t rows) override { data_.reserve(rows); }

  std::vector<double> data_;
};

/// Dictionary-encoded string column.
///
/// Stores one int32 code per row plus a shared dictionary of distinct
/// strings, which keeps memory linear in distinct values for the highly
/// repetitive columns in recipe data (region codes, ingredient names,
/// category labels).
class StringColumn final : public Column {
 public:
  StringColumn() = default;

  DataType type() const override { return DataType::kString; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  void Append(std::string_view v);

  /// View of row `i` (undefined for null rows). Valid while the column lives.
  std::string_view at(size_t i) const { return dict_[static_cast<size_t>(codes_[i])]; }

  /// Dictionary code of row `i` (undefined for null rows). Equal codes imply
  /// equal strings within one column.
  int32_t code_at(size_t i) const { return codes_[i]; }

  /// Number of distinct strings seen.
  size_t dictionary_size() const { return dict_.size(); }

  /// Contiguous per-row codes (null rows hold -1). For kernels: string
  /// predicates resolve the literal to a code once via `FindCode` and then
  /// compare int32s, never per-row strings.
  const int32_t* codes() const { return codes_.data(); }

  /// Dictionary string for `code` (must be < dictionary_size()).
  std::string_view dict_at(int32_t code) const {
    return dict_[static_cast<size_t>(code)];
  }

  /// Code of `v` in the dictionary, or -1 when absent. Allocation-free.
  int32_t FindCode(std::string_view v) const {
    auto it = index_.find(v);
    return it == index_.end() ? -1 : it->second;
  }

 private:
  /// Transparent hash so `index_.find(string_view)` probes without
  /// materializing a temporary std::string per lookup.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view v) const {
      return std::hash<std::string_view>{}(v);
    }
    size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  void GrowStorage() override { codes_.push_back(-1); }
  void ReserveStorage(size_t rows) override { codes_.reserve(rows); }

  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>> index_;
};

/// Creates an empty column of the given type.
ColumnPtr MakeColumn(DataType type);

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_COLUMN_H_
