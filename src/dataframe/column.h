#ifndef CULINARYLAB_DATAFRAME_COLUMN_H_
#define CULINARYLAB_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataframe/types.h"

namespace culinary::df {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// Abstract typed column with a validity bitmap.
///
/// Columns are append-only during construction and immutable once shared
/// inside a `Table` (operations produce new columns). Null handling: every
/// column tracks per-row validity; `GetValue` returns `Value::Null()` for
/// invalid rows.
class Column {
 public:
  virtual ~Column() = default;

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  /// The physical type of the column.
  virtual DataType type() const = 0;

  /// Number of rows.
  size_t size() const { return valid_.size(); }

  /// Number of null rows.
  size_t null_count() const { return null_count_; }

  /// True iff row `i` is null.
  bool IsNull(size_t i) const { return valid_[i] == 0; }

  /// Dynamically typed accessor for row `i`.
  virtual Value GetValue(size_t i) const = 0;

  /// Appends a dynamically typed value. Returns InvalidArgument when the
  /// value's type does not match the column (nulls always match). Integers
  /// widen implicitly into double columns.
  virtual culinary::Status AppendValue(const Value& value) = 0;

  /// Appends a null row.
  void AppendNull() {
    valid_.push_back(0);
    ++null_count_;
    GrowStorage();
  }

  /// A new column with rows reordered / subset per `indices` (each index
  /// must be < size()).
  virtual ColumnPtr Take(const std::vector<size_t>& indices) const = 0;

  /// A fresh empty column of the same type.
  virtual ColumnPtr CloneEmpty() const = 0;

 protected:
  Column() = default;

  void MarkValid() { valid_.push_back(1); }

  /// Hook for derived classes to keep their value storage aligned with the
  /// validity vector when a null is appended.
  virtual void GrowStorage() = 0;

  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;
};

/// Column of 64-bit integers.
class Int64Column final : public Column {
 public:
  Int64Column() = default;

  DataType type() const override { return DataType::kInt64; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  /// Appends a non-null element.
  void Append(int64_t v) {
    data_.push_back(v);
    MarkValid();
  }

  /// Raw accessor; undefined for null rows.
  int64_t at(size_t i) const { return data_[i]; }

 private:
  void GrowStorage() override { data_.push_back(0); }

  std::vector<int64_t> data_;
};

/// Column of doubles.
class DoubleColumn final : public Column {
 public:
  DoubleColumn() = default;

  DataType type() const override { return DataType::kDouble; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  void Append(double v) {
    data_.push_back(v);
    MarkValid();
  }

  double at(size_t i) const { return data_[i]; }

 private:
  void GrowStorage() override { data_.push_back(0.0); }

  std::vector<double> data_;
};

/// Dictionary-encoded string column.
///
/// Stores one int32 code per row plus a shared dictionary of distinct
/// strings, which keeps memory linear in distinct values for the highly
/// repetitive columns in recipe data (region codes, ingredient names,
/// category labels).
class StringColumn final : public Column {
 public:
  StringColumn() = default;

  DataType type() const override { return DataType::kString; }
  Value GetValue(size_t i) const override;
  culinary::Status AppendValue(const Value& value) override;
  ColumnPtr Take(const std::vector<size_t>& indices) const override;
  ColumnPtr CloneEmpty() const override;

  void Append(std::string_view v);

  /// View of row `i` (undefined for null rows). Valid while the column lives.
  std::string_view at(size_t i) const { return dict_[static_cast<size_t>(codes_[i])]; }

  /// Dictionary code of row `i` (undefined for null rows). Equal codes imply
  /// equal strings within one column.
  int32_t code_at(size_t i) const { return codes_[i]; }

  /// Number of distinct strings seen.
  size_t dictionary_size() const { return dict_.size(); }

 private:
  void GrowStorage() override { codes_.push_back(-1); }

  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> index_;
};

/// Creates an empty column of the given type.
ColumnPtr MakeColumn(DataType type);

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_COLUMN_H_
