#include "dataframe/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace culinary::df {

namespace {

struct RawField {
  std::string text;
  bool quoted = false;
};

using RawRecord = std::vector<RawField>;

/// Splits `text` into records of fields per RFC 4180.
culinary::Result<std::vector<RawRecord>> Tokenize(std::string_view text,
                                                  char delimiter) {
  std::vector<RawRecord> records;
  RawRecord record;
  RawField field;
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
  State state = State::kFieldStart;
  size_t line = 1;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field = RawField{};
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record = RawRecord{};
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n') ++line;
    switch (state) {
      case State::kFieldStart:
        if (c == '"') {
          field.quoted = true;
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
        } else if (c == '\n') {
          end_record();
        } else if (c == '\r') {
          // swallow; newline handled next iteration
        } else {
          field.text.push_back(c);
          state = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          // Strip a trailing \r from \r\n records.
          if (!field.text.empty() && field.text.back() == '\r') {
            field.text.pop_back();
          }
          end_record();
          state = State::kFieldStart;
        } else {
          field.text.push_back(c);
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state = State::kQuoteInQuoted;
        } else {
          field.text.push_back(c);
        }
        break;
      case State::kQuoteInQuoted:
        if (c == '"') {
          field.text.push_back('"');  // escaped quote
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          end_record();
          state = State::kFieldStart;
        } else if (c == '\r') {
          // part of \r\n after closing quote; swallow
        } else {
          return culinary::Status::ParseError(
              "unexpected character after closing quote at line " +
              std::to_string(line));
        }
        break;
    }
  }
  if (state == State::kQuoted) {
    return culinary::Status::ParseError("unterminated quoted field");
  }
  // Flush a final record without trailing newline.
  if (state != State::kFieldStart || !field.text.empty() || field.quoted ||
      !record.empty()) {
    end_record();
  }
  return records;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

culinary::Result<Table> ReadCsvString(std::string_view text,
                                      const CsvReadOptions& options) {
  CULINARY_ASSIGN_OR_RETURN(std::vector<RawRecord> records,
                            Tokenize(text, options.delimiter));
  if (records.empty()) {
    return culinary::Status::ParseError("empty CSV input");
  }

  const size_t num_cols = records[0].size();
  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    for (const RawField& f : records[0]) names.push_back(f.text);
    first_data = 1;
  } else {
    for (size_t c = 0; c < num_cols; ++c) names.push_back("c" + std::to_string(c));
  }

  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != num_cols) {
      return culinary::Status::ParseError(
          "record " + std::to_string(r + 1) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
  }

  auto is_null = [&](const RawField& f) {
    return options.empty_as_null && !f.quoted && f.text.empty();
  };

  // Infer per-column types over non-null fields.
  std::vector<DataType> types(num_cols, DataType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < num_cols; ++c) {
      bool all_int = true, all_double = true, any_value = false;
      for (size_t r = first_data; r < records.size(); ++r) {
        const RawField& f = records[r][c];
        if (is_null(f)) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (all_int && !ParseInt64(f.text, &iv)) all_int = false;
        if (all_double && !ParseDouble(f.text, &dv)) all_double = false;
        if (!all_double) break;
      }
      if (any_value && all_int) {
        types[c] = DataType::kInt64;
      } else if (any_value && all_double) {
        types[c] = DataType::kDouble;
      }
    }
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < num_cols; ++c) fields.push_back({names[c], types[c]});
  CULINARY_ASSIGN_OR_RETURN(Table table, Table::Make(Schema(std::move(fields))));

  for (size_t r = first_data; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const RawField& f = records[r][c];
      if (is_null(f)) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParseInt64(f.text, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParseDouble(f.text, &v);
          row.push_back(Value::Real(v));
          break;
        }
        case DataType::kString:
          row.push_back(Value::Str(f.text));
          break;
      }
    }
    CULINARY_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

culinary::Result<Table> ReadCsvFile(const std::string& path,
                                    const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return culinary::Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return culinary::Status::IOError("error reading file: " + path);
  }
  return ReadCsvString(buf.str(), options);
}

namespace {

void WriteField(std::string& out, std::string_view text, char delimiter) {
  bool needs_quotes = false;
  for (char c : text) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out.append(text);
    return;
  }
  out.push_back('"');
  for (char c : text) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  const size_t cols = table.num_columns();
  if (options.write_header) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(options.delimiter);
      WriteField(out, table.schema().field(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(options.delimiter);
      Value v = table.GetValue(r, c);
      if (v.is_null()) {
        out.append(options.null_literal);
      } else if (v.is_double()) {
        // Round-trippable formatting (Value::ToString truncates for display).
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
        WriteField(out, buf, options.delimiter);
      } else {
        WriteField(out, v.ToString(), options.delimiter);
      }
    }
    out.push_back('\n');
  }
  return out;
}

culinary::Status WriteCsvFile(const Table& table, const std::string& path,
                              const CsvWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return culinary::Status::IOError("cannot open file for write: " + path);
  }
  out << WriteCsvString(table, options);
  out.flush();
  if (!out) {
    return culinary::Status::IOError("error writing file: " + path);
  }
  return culinary::Status::OK();
}

}  // namespace culinary::df
