#include "dataframe/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/string_util.h"
#include "robustness/fault_injector.h"

namespace culinary::df {

namespace {

using robustness::ErrorPolicy;
using robustness::ErrorSink;
using robustness::FaultInjector;

struct RawField {
  std::string text;
  bool quoted = false;
};

using RawRecord = std::vector<RawField>;

/// Tokenizer output: the records plus, per record, the 1-based source line
/// it starts on (for diagnostics), and the count of records the degraded
/// policies had to drop at the tokenizer level.
struct TokenizeOutput {
  std::vector<RawRecord> records;
  std::vector<size_t> record_lines;
  size_t dropped_records = 0;
};

void ReportOrCount(ErrorSink* sink, size_t line, size_t column,
                   std::string message, std::string snippet) {
  if (sink != nullptr) {
    sink->Report(line, column, StatusCode::kParseError, std::move(message),
                 std::move(snippet));
  }
}

/// Splits `text` into records of fields per RFC 4180, tracking line and
/// column. Under `kStrict` the first structural error (garbage after a
/// closing quote, unterminated quote at EOF) returns a ParseError naming
/// line and column; under the degraded policies the damaged record is
/// dropped with a diagnostic and scanning resumes at the next newline.
culinary::Result<TokenizeOutput> Tokenize(std::string_view text,
                                          char delimiter, ErrorPolicy policy,
                                          ErrorSink* sink) {
  TokenizeOutput out;
  RawRecord record;
  RawField field;
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
  State state = State::kFieldStart;
  size_t line = 1;
  size_t column = 0;         // 1-based column of the current character
  size_t record_line = 1;    // line the in-flight record started on
  size_t quote_line = 0;     // position of the last opening quote
  size_t quote_column = 0;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field = RawField{};
  };
  auto end_record = [&]() {
    end_field();
    out.records.push_back(std::move(record));
    out.record_lines.push_back(record_line);
    record = RawRecord{};
  };
  auto drop_record = [&]() {
    record.clear();
    field = RawField{};
    ++out.dropped_records;
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    ++column;
    switch (state) {
      case State::kFieldStart:
        if (c == '"') {
          field.quoted = true;
          quote_line = line;
          quote_column = column;
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
        } else if (c == '\n') {
          end_record();
          ++line;
          column = 0;
          record_line = line;
        } else if (c == '\r') {
          // swallow; newline handled next iteration
        } else {
          field.text.push_back(c);
          state = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          // Strip a trailing \r from \r\n records.
          if (!field.text.empty() && field.text.back() == '\r') {
            field.text.pop_back();
          }
          end_record();
          ++line;
          column = 0;
          record_line = line;
          state = State::kFieldStart;
        } else {
          field.text.push_back(c);
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state = State::kQuoteInQuoted;
        } else {
          if (c == '\n') {
            ++line;
            column = 0;
          }
          field.text.push_back(c);
        }
        break;
      case State::kQuoteInQuoted:
        if (c == '"') {
          field.text.push_back('"');  // escaped quote
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          end_record();
          ++line;
          column = 0;
          record_line = line;
          state = State::kFieldStart;
        } else if (c == '\r') {
          // part of \r\n after closing quote; swallow
        } else {
          std::string message =
              "unexpected character after closing quote at line " +
              std::to_string(line) + ", column " + std::to_string(column);
          if (policy == ErrorPolicy::kStrict) {
            return culinary::Status::ParseError(std::move(message));
          }
          ReportOrCount(sink, line, column, std::move(message),
                        std::string(1, c));
          // Resync: drop the damaged record and skip to the next newline.
          drop_record();
          while (i < text.size() && text[i] != '\n') ++i;
          if (i < text.size()) {
            ++line;
            column = 0;
            record_line = line;
          }
          state = State::kFieldStart;
        }
        break;
    }
    ++i;
  }

  if (state == State::kQuoted) {
    std::string message = "unterminated quoted field starting at line " +
                          std::to_string(quote_line) + ", column " +
                          std::to_string(quote_column);
    if (policy == ErrorPolicy::kStrict) {
      return culinary::Status::ParseError(std::move(message));
    }
    std::string snippet = field.text.substr(0, ErrorSink::kMaxSnippetBytes);
    ReportOrCount(sink, quote_line, quote_column, std::move(message),
                  std::move(snippet));
    drop_record();
    return out;
  }
  // Flush a final record without trailing newline (a \r straggler from an
  // unterminated \r\n is stripped).
  if (state == State::kUnquoted && !field.text.empty() &&
      field.text.back() == '\r') {
    field.text.pop_back();
  }
  if (state != State::kFieldStart || !field.text.empty() || field.quoted ||
      !record.empty()) {
    end_record();
  }
  return out;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

culinary::Result<Table> ReadCsvString(std::string_view text,
                                      const CsvReadOptions& options) {
  CULINARY_ASSIGN_OR_RETURN(
      TokenizeOutput tokenized,
      Tokenize(text, options.delimiter, options.error_policy,
               options.error_sink));
  std::vector<RawRecord>& records = tokenized.records;
  if (records.empty()) {
    return culinary::Status::ParseError("empty CSV input");
  }

  const size_t num_cols = records[0].size();
  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    for (const RawField& f : records[0]) names.push_back(f.text);
    first_data = 1;
  } else {
    for (size_t c = 0; c < num_cols; ++c) names.push_back("c" + std::to_string(c));
  }

  // Width-check every data record. Strict fails fast; skip-and-report
  // quarantines; best-effort pads short rows with nulls and truncates long
  // ones, keeping the record.
  std::vector<size_t> kept;
  kept.reserve(records.size() - first_data);
  size_t quarantined = tokenized.dropped_records;
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() == num_cols) {
      kept.push_back(r);
      continue;
    }
    const size_t record_line = tokenized.record_lines[r];
    std::string message = "record at line " + std::to_string(record_line) +
                          " has " + std::to_string(records[r].size()) +
                          " fields, expected " + std::to_string(num_cols);
    if (options.error_policy == ErrorPolicy::kStrict) {
      return culinary::Status::ParseError(std::move(message));
    }
    std::string snippet =
        records[r].empty() ? std::string() : records[r][0].text;
    ReportOrCount(options.error_sink, record_line, 0, std::move(message),
                  std::move(snippet));
    if (options.error_policy == ErrorPolicy::kBestEffort) {
      records[r].resize(num_cols);  // pads with unquoted empty fields
      kept.push_back(r);
    } else {
      ++quarantined;
    }
  }

  if (options.stats != nullptr) {
    options.stats->records_total =
        (records.size() - first_data) + tokenized.dropped_records;
    options.stats->records_ok = kept.size();
    options.stats->records_quarantined = quarantined;
  }

  auto is_null = [&](const RawField& f) {
    return options.empty_as_null && !f.quoted && f.text.empty();
  };

  // Infer per-column types over non-null fields of kept records.
  std::vector<DataType> types(num_cols, DataType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < num_cols; ++c) {
      bool all_int = true, all_double = true, any_value = false;
      for (size_t r : kept) {
        const RawField& f = records[r][c];
        if (is_null(f)) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (all_int && !ParseInt64(f.text, &iv)) all_int = false;
        if (all_double && !ParseDouble(f.text, &dv)) all_double = false;
        if (!all_double) break;
      }
      if (any_value && all_int) {
        types[c] = DataType::kInt64;
      } else if (any_value && all_double) {
        types[c] = DataType::kDouble;
      }
    }
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < num_cols; ++c) fields.push_back({names[c], types[c]});
  CULINARY_ASSIGN_OR_RETURN(Table table, Table::Make(Schema(std::move(fields))));
  table.Reserve(kept.size());

  for (size_t r : kept) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const RawField& f = records[r][c];
      if (is_null(f)) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParseInt64(f.text, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParseDouble(f.text, &v);
          row.push_back(Value::Real(v));
          break;
        }
        case DataType::kString:
          row.push_back(Value::Str(f.text));
          break;
      }
    }
    CULINARY_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

culinary::Result<Table> ReadCsvFile(const std::string& path,
                                    const CsvReadOptions& options) {
  CULINARY_RETURN_IF_ERROR(FaultInjector::Global()
                               .Check(robustness::kFaultCsvOpen)
                               .WithContext("opening " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return culinary::Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return culinary::Status::IOError("error reading file: " + path);
  }
  CULINARY_RETURN_IF_ERROR(FaultInjector::Global()
                               .Check(robustness::kFaultCsvRead)
                               .WithContext("reading " + path));
  return ReadCsvString(buf.str(), options);
}

culinary::Result<Table> ReadCsvFileRetry(
    const std::string& path, const CsvReadOptions& options,
    const robustness::RetryPolicy& retry) {
  return robustness::RetryResult(
      retry, [&]() { return ReadCsvFile(path, options); });
}

namespace {

void WriteField(std::string& out, std::string_view text, char delimiter) {
  bool needs_quotes = false;
  for (char c : text) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out.append(text);
    return;
  }
  out.push_back('"');
  for (char c : text) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

/// Streams `table` as CSV into `path` verbatim (no temp file).
culinary::Status WriteCsvFileDirect(const Table& table,
                                    const std::string& path,
                                    const CsvWriteOptions& options) {
  CULINARY_RETURN_IF_ERROR(FaultInjector::Global()
                               .Check(robustness::kFaultCsvOpenWrite)
                               .WithContext("opening for write " + path));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return culinary::Status::IOError("cannot open file for write: " + path);
  }
  out << WriteCsvString(table, options);
  out.flush();
  if (!out) {
    return culinary::Status::IOError("error writing file: " + path);
  }
  // Fires after bytes hit the temp/destination file — the "crash
  // mid-write" injection point.
  return FaultInjector::Global()
      .Check(robustness::kFaultCsvWrite)
      .WithContext("writing " + path);
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  const size_t cols = table.num_columns();
  if (options.write_header) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(options.delimiter);
      WriteField(out, table.schema().field(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(options.delimiter);
      Value v = table.GetValue(r, c);
      if (v.is_null()) {
        out.append(options.null_literal);
      } else if (v.is_double()) {
        // Round-trippable formatting (Value::ToString truncates for display).
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
        WriteField(out, buf, options.delimiter);
      } else {
        WriteField(out, v.ToString(), options.delimiter);
      }
    }
    out.push_back('\n');
  }
  return out;
}

culinary::Status WriteCsvFile(const Table& table, const std::string& path,
                              const CsvWriteOptions& options) {
  if (!options.atomic_write) {
    return WriteCsvFileDirect(table, path, options);
  }
  // Crash-safe via the shared helper: temp + fsync + rename + directory
  // fsync. The fault hook maps the helper's step boundaries onto the
  // long-standing CSV injection sites so chaos schedules keep working.
  culinary::AtomicWriteOptions atomic;
  atomic.fault_hook =
      [&path](std::string_view step) -> culinary::Status {
    if (step == culinary::kAtomicStepOpen) {
      return FaultInjector::Global()
          .Check(robustness::kFaultCsvOpenWrite)
          .WithContext("opening for write " + path);
    }
    if (step == culinary::kAtomicStepWrite) {
      return FaultInjector::Global()
          .Check(robustness::kFaultCsvWrite)
          .WithContext("writing " + path);
    }
    if (step == culinary::kAtomicStepRename) {
      return FaultInjector::Global()
          .Check(robustness::kFaultCsvRename)
          .WithContext("renaming " + path + ".tmp");
    }
    return culinary::Status::OK();
  };
  return WriteFileAtomic(path, WriteCsvString(table, options), atomic);
}

}  // namespace culinary::df
