#ifndef CULINARYLAB_DATAFRAME_TYPES_H_
#define CULINARYLAB_DATAFRAME_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace culinary::df {

/// Physical type of a column.
enum class DataType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Stable lowercase name for `type` ("int64", "double", "string").
std::string_view DataTypeToString(DataType type);

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered collection of fields. Field names must be unique; `Schema`
/// does not enforce this at construction (the `Table` factory does) but
/// lookup always returns the first match.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the first field named `name`, or nullopt.
  std::optional<size_t> FieldIndex(std::string_view name) const;

  /// True iff a field named `name` exists.
  bool HasField(std::string_view name) const {
    return FieldIndex(name).has_value();
  }

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

/// A dynamically typed cell: null, int64, double, or string.
///
/// Used at API boundaries (row append, scalar lookup, predicates); bulk
/// operations go through the typed column storage instead.
class Value {
 public:
  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Typed accessors; behaviour is undefined unless the matching `is_*`
  /// predicate holds.
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  /// Numeric view: ints widen to double; null/string yield nullopt.
  std::optional<double> AsNumeric() const;

  /// Human-readable rendering ("null", "42", "3.5", "abc").
  std::string ToString() const;

  /// Equality compares representation exactly (Int(1) != Real(1.0)).
  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_TYPES_H_
