#ifndef CULINARYLAB_DATAFRAME_EXPR_H_
#define CULINARYLAB_DATAFRAME_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dataframe/kernels.h"
#include "dataframe/ops.h"
#include "dataframe/selection.h"
#include "dataframe/table.h"

namespace culinary::df {

class Expr;
/// Expressions are immutable and shared; build once, evaluate against any
/// table whose schema binds.
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of a lazy expression tree.
///
/// An expression describes a computation over table rows without running
/// it. Terminals (`EvaluateMask`, `CountWhere`, `AggregateWhere`,
/// `FilterWhere`, `GroupByAggregateWhere`) bind the tree to a concrete
/// table — resolving column names to indices and string literals to
/// dictionary codes once — and then evaluate it block-by-block with the
/// typed kernels in kernels.h, fusing filter → project → aggregate into a
/// single pass with no intermediate `Table`.
///
/// Node semantics (the engine's null contract):
///  * Comparisons select a row only when every operand is non-null and the
///    predicate holds. Numerics compare as double (matching
///    `Value::AsNumeric`), except int64-column-vs-int-literal which
///    compares exactly in int64. String columns support Eq/Ne against a
///    string literal only — the literal resolves to a dictionary code once,
///    and a literal absent from the dictionary short-circuits to
///    constant-false (Eq) / all-non-null (Ne).
///  * `And`/`Or` are bitwise over selection bitmaps; `Not` is a pure
///    complement over the row range, so `Not(pred)` includes rows where
///    `pred`'s operands were null.
///  * `IsNull`/`IsNotNull` test a column's validity bit directly.
///  * Arithmetic evaluates in double; a result is null when any operand is
///    null. Division by zero follows IEEE (±inf / NaN, still non-null).
class Expr {
 public:
  enum class Kind {
    kColumn,   ///< reference to a named column
    kLiteral,  ///< constant `Value`
    kCompare,  ///< lhs <cmp> rhs → selection
    kAnd,      ///< lhs AND rhs (selections)
    kOr,       ///< lhs OR rhs (selections)
    kNot,      ///< NOT lhs (selection complement)
    kIsNull,   ///< column validity test (negated = IS NOT NULL)
    kArith,    ///< lhs <op> rhs → numeric
  };

  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return column_; }
  const Value& literal() const { return literal_; }
  kernels::CmpOp cmp_op() const { return cmp_; }
  ArithOp arith_op() const { return arith_; }
  bool is_null_negated() const { return negated_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Debug rendering, e.g. `(region == "Italian") AND (rating >= 4)`.
  std::string ToString() const;

 private:
  Expr() = default;

  friend ExprPtr Col(std::string name);
  friend ExprPtr Lit(Value value);
  friend ExprPtr MakeCompare(kernels::CmpOp op, ExprPtr l, ExprPtr r);
  friend ExprPtr MakeLogical(Kind kind, ExprPtr l, ExprPtr r);
  friend ExprPtr MakeIsNull(ExprPtr child, bool negated);
  friend ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r);

  Kind kind_ = Kind::kLiteral;
  kernels::CmpOp cmp_ = kernels::CmpOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  bool negated_ = false;
  std::string column_;
  Value literal_ = Value::Null();
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// --- Node factories ---------------------------------------------------------

/// Reference to the column named `name`.
ExprPtr Col(std::string name);

/// Constant value.
ExprPtr Lit(Value value);
inline ExprPtr Lit(int64_t v) { return Lit(Value::Int(v)); }
inline ExprPtr Lit(int v) { return Lit(Value::Int(v)); }
inline ExprPtr Lit(double v) { return Lit(Value::Real(v)); }
inline ExprPtr Lit(std::string v) { return Lit(Value::Str(std::move(v))); }
inline ExprPtr Lit(const char* v) { return Lit(Value::Str(v)); }

ExprPtr MakeCompare(kernels::CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeLogical(Expr::Kind kind, ExprPtr l, ExprPtr r);
ExprPtr MakeIsNull(ExprPtr child, bool negated);
ExprPtr MakeArith(Expr::ArithOp op, ExprPtr l, ExprPtr r);

inline ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kEq, std::move(l), std::move(r));
}
inline ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kNe, std::move(l), std::move(r));
}
inline ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kLt, std::move(l), std::move(r));
}
inline ExprPtr Le(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kLe, std::move(l), std::move(r));
}
inline ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kGt, std::move(l), std::move(r));
}
inline ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return MakeCompare(kernels::CmpOp::kGe, std::move(l), std::move(r));
}
inline ExprPtr And(ExprPtr l, ExprPtr r) {
  return MakeLogical(Expr::Kind::kAnd, std::move(l), std::move(r));
}
inline ExprPtr Or(ExprPtr l, ExprPtr r) {
  return MakeLogical(Expr::Kind::kOr, std::move(l), std::move(r));
}
inline ExprPtr Not(ExprPtr child) {
  return MakeLogical(Expr::Kind::kNot, std::move(child), nullptr);
}
inline ExprPtr IsNull(ExprPtr column) {
  return MakeIsNull(std::move(column), false);
}
inline ExprPtr IsNotNull(ExprPtr column) {
  return MakeIsNull(std::move(column), true);
}
inline ExprPtr Add(ExprPtr l, ExprPtr r) {
  return MakeArith(Expr::ArithOp::kAdd, std::move(l), std::move(r));
}
inline ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return MakeArith(Expr::ArithOp::kSub, std::move(l), std::move(r));
}
inline ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return MakeArith(Expr::ArithOp::kMul, std::move(l), std::move(r));
}
inline ExprPtr Div(ExprPtr l, ExprPtr r) {
  return MakeArith(Expr::ArithOp::kDiv, std::move(l), std::move(r));
}

// --- Execution --------------------------------------------------------------

/// Evaluation knobs.
///
/// Determinism contract: results are bit-identical for every `num_threads`
/// value. Mask evaluation is block-parallel over 4096-row blocks — each
/// block writes disjoint mask words, so the finished bitmap is independent
/// of scheduling — and every terminal consumes the mask in a single serial
/// row-order pass, so floating-point accumulation order never varies.
struct ExecOptions {
  /// 0 = hardware concurrency, 1 = fully serial (no pool), n = n workers.
  size_t num_threads = 1;
};

/// Evaluates a predicate expression to a selection over `table`'s rows.
culinary::Result<Selection> EvaluateMask(const Table& table,
                                         const ExprPtr& pred,
                                         const ExecOptions& options = {});

/// Number of rows matching `pred` (fused: no row materialization).
culinary::Result<size_t> CountWhere(const Table& table, const ExprPtr& pred,
                                    const ExecOptions& options = {});

/// One aggregate over `column` restricted to rows matching `pred` (null
/// `pred` = all rows). Matches `GroupByAggregate` semantics: numeric cells
/// only, nulls skipped, `Value::Null()` when nothing aggregates, kCount
/// counts selected rows. kCountDistinct is not supported here.
culinary::Result<Value> AggregateWhere(const Table& table, AggKind kind,
                                       const std::string& column,
                                       const ExprPtr& pred,
                                       const ExecOptions& options = {});

/// Rows matching `pred`, as a table — the eager `Filter` endpoint of the
/// engine, bit-identical to `Filter` with an equivalent row predicate.
culinary::Result<Table> FilterWhere(const Table& table, const ExprPtr& pred,
                                    const ExecOptions& options = {});

/// Fused filter → group-by → aggregate: groups rows matching `pred` (null
/// `pred` = all rows) by the single key column `key` and computes `aggs`
/// per group, without materializing the filtered table. Output is
/// bit-identical to `GroupByAggregate(FilterWhere(table, pred), {key},
/// aggs)`: first-seen group order, null keys group together, numeric
/// aggregates skip nulls. Keys must be string (dictionary-code path) or
/// int64 (flat-hash path); aggregations must be kCount/kSum/kMean/kMin/kMax.
culinary::Result<Table> GroupByAggregateWhere(
    const Table& table, const std::string& key,
    const std::vector<Aggregation>& aggs, const ExprPtr& pred,
    const ExecOptions& options = {});

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_EXPR_H_
