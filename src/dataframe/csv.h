#ifndef CULINARYLAB_DATAFRAME_CSV_H_
#define CULINARYLAB_DATAFRAME_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dataframe/table.h"

namespace culinary::df {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// When true the first record supplies column names; otherwise columns are
  /// named "c0", "c1", ...
  bool has_header = true;
  /// When true column types are inferred (all-int64 → int64, otherwise
  /// all-double → double, otherwise string). When false every column is
  /// string.
  bool infer_types = true;
  /// Empty unquoted fields become nulls when true, empty strings otherwise.
  bool empty_as_null = true;
};

/// Options controlling CSV serialization.
struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
  /// Rendering for null cells.
  std::string null_literal;
};

/// Parses RFC-4180 CSV text (quoted fields, doubled-quote escapes, embedded
/// newlines inside quotes; accepts both \n and \r\n record separators).
/// Ragged rows are a ParseError.
culinary::Result<Table> ReadCsvString(std::string_view text,
                                      const CsvReadOptions& options = {});

/// Reads and parses a CSV file. IOError when the file cannot be read.
culinary::Result<Table> ReadCsvFile(const std::string& path,
                                    const CsvReadOptions& options = {});

/// Serializes `table` as CSV text. Fields containing the delimiter, quotes
/// or newlines are quoted; quotes are doubled.
std::string WriteCsvString(const Table& table,
                           const CsvWriteOptions& options = {});

/// Writes `table` to `path`. IOError when the file cannot be written.
culinary::Status WriteCsvFile(const Table& table, const std::string& path,
                              const CsvWriteOptions& options = {});

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_CSV_H_
