#ifndef CULINARYLAB_DATAFRAME_CSV_H_
#define CULINARYLAB_DATAFRAME_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dataframe/table.h"
#include "robustness/error_sink.h"
#include "robustness/retry.h"

namespace culinary::df {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// When true the first record supplies column names; otherwise columns are
  /// named "c0", "c1", ...
  bool has_header = true;
  /// When true column types are inferred (all-int64 → int64, otherwise
  /// all-double → double, otherwise string). When false every column is
  /// string.
  bool infer_types = true;
  /// Empty unquoted fields become nulls when true, empty strings otherwise.
  bool empty_as_null = true;

  /// How malformed records are handled (see robustness/error_sink.h):
  ///   * kStrict — the first malformed record fails the whole read with a
  ///     line/column-bearing ParseError (seed behaviour);
  ///   * kSkipAndReport — malformed records are quarantined (dropped) with
  ///     a diagnostic in `error_sink`, parsing continues;
  ///   * kBestEffort — additionally, ragged rows are padded with nulls /
  ///     truncated to the header width instead of dropped.
  robustness::ErrorPolicy error_policy = robustness::ErrorPolicy::kStrict;
  /// Receives per-record diagnostics under non-strict policies (may be
  /// null, in which case errors are counted only through `stats`).
  robustness::ErrorSink* error_sink = nullptr;
  /// Receives record-level accounting: total / kept / quarantined data
  /// records (may be null).
  robustness::IngestStats* stats = nullptr;
};

/// Options controlling CSV serialization.
struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
  /// Rendering for null cells.
  std::string null_literal;
  /// When true `WriteCsvFile` is crash-safe: it writes `<path>.tmp` and
  /// renames it over `path` only after a successful flush, so a crash
  /// mid-write leaves the previous file intact (the orphan temp file is
  /// the crash's only residue).
  bool atomic_write = false;
};

/// Parses RFC-4180 CSV text (quoted fields, doubled-quote escapes, embedded
/// newlines inside quotes; accepts both \n and \r\n record separators; a
/// final record without a trailing newline is still emitted).
/// Under `ErrorPolicy::kStrict`, ragged rows, garbage after a closing quote
/// and an unterminated quote at EOF are ParseErrors carrying line and
/// column; under the degraded policies such records are quarantined or
/// salvaged per `options` instead.
culinary::Result<Table> ReadCsvString(std::string_view text,
                                      const CsvReadOptions& options = {});

/// Reads and parses a CSV file. IOError when the file cannot be read.
/// Checks the `csv.open` / `csv.read` fault-injection sites (see
/// robustness/fault_injector.h), making every IO failure path testable.
culinary::Result<Table> ReadCsvFile(const std::string& path,
                                    const CsvReadOptions& options = {});

/// `ReadCsvFile` with transient IO failures retried under `retry`
/// (exponential backoff with deterministic jitter). Parse errors are never
/// retried.
culinary::Result<Table> ReadCsvFileRetry(const std::string& path,
                                         const CsvReadOptions& options,
                                         const robustness::RetryPolicy& retry);

/// Serializes `table` as CSV text. Fields containing the delimiter, quotes
/// or newlines are quoted; quotes are doubled.
std::string WriteCsvString(const Table& table,
                           const CsvWriteOptions& options = {});

/// Writes `table` to `path`. IOError when the file cannot be written. With
/// `options.atomic_write` the write is crash-safe (temp file + rename).
/// Checks the `csv.open_write` / `csv.write` / `csv.rename` fault-injection
/// sites.
culinary::Status WriteCsvFile(const Table& table, const std::string& path,
                              const CsvWriteOptions& options = {});

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_CSV_H_
