#include "dataframe/column.h"

namespace culinary::df {

Value Int64Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  return Value::Int(data_[i]);
}

culinary::Status Int64Column::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return culinary::Status::OK();
  }
  if (!value.is_int()) {
    return culinary::Status::InvalidArgument(
        "expected int64 value, got " + value.ToString());
  }
  Append(value.as_int());
  return culinary::Status::OK();
}

ColumnPtr Int64Column::Take(const std::vector<size_t>& indices) const {
  auto out = std::make_shared<Int64Column>();
  out->Reserve(indices.size());
  for (size_t i : indices) {
    if (IsNull(i)) {
      out->AppendNull();
    } else {
      out->Append(data_[i]);
    }
  }
  return out;
}

ColumnPtr Int64Column::CloneEmpty() const {
  return std::make_shared<Int64Column>();
}

Value DoubleColumn::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  return Value::Real(data_[i]);
}

culinary::Status DoubleColumn::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return culinary::Status::OK();
  }
  if (value.is_double()) {
    Append(value.as_double());
    return culinary::Status::OK();
  }
  if (value.is_int()) {
    Append(static_cast<double>(value.as_int()));  // implicit widening
    return culinary::Status::OK();
  }
  return culinary::Status::InvalidArgument(
      "expected double value, got " + value.ToString());
}

ColumnPtr DoubleColumn::Take(const std::vector<size_t>& indices) const {
  auto out = std::make_shared<DoubleColumn>();
  out->Reserve(indices.size());
  for (size_t i : indices) {
    if (IsNull(i)) {
      out->AppendNull();
    } else {
      out->Append(data_[i]);
    }
  }
  return out;
}

ColumnPtr DoubleColumn::CloneEmpty() const {
  return std::make_shared<DoubleColumn>();
}

Value StringColumn::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  return Value::Str(std::string(at(i)));
}

culinary::Status StringColumn::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return culinary::Status::OK();
  }
  if (!value.is_string()) {
    return culinary::Status::InvalidArgument(
        "expected string value, got " + value.ToString());
  }
  Append(value.as_string());
  return culinary::Status::OK();
}

void StringColumn::Append(std::string_view v) {
  int32_t code;
  auto it = index_.find(v);  // heterogeneous: no temporary std::string
  if (it != index_.end()) {
    code = it->second;
  } else {
    code = static_cast<int32_t>(dict_.size());
    dict_.emplace_back(v);
    index_.emplace(dict_.back(), code);
  }
  codes_.push_back(code);
  MarkValid();
}

ColumnPtr StringColumn::Take(const std::vector<size_t>& indices) const {
  auto out = std::make_shared<StringColumn>();
  out->Reserve(indices.size());
  // Remap codes instead of re-hashing strings per row. The remap assigns
  // dictionary slots in first-use order, which is exactly the dictionary an
  // Append-per-row rebuild would produce — Take stays bit-identical to the
  // eager path while skipping the hash probe on every gathered row.
  std::vector<int32_t> remap(dict_.size(), -1);
  for (size_t i : indices) {
    if (IsNull(i)) {
      out->AppendNull();
      continue;
    }
    const int32_t code = codes_[i];
    int32_t& mapped = remap[static_cast<size_t>(code)];
    if (mapped < 0) {
      mapped = static_cast<int32_t>(out->dict_.size());
      out->dict_.emplace_back(dict_[static_cast<size_t>(code)]);
      out->index_.emplace(out->dict_.back(), mapped);
    }
    out->codes_.push_back(mapped);
    out->MarkValid();
  }
  return out;
}

ColumnPtr StringColumn::CloneEmpty() const {
  return std::make_shared<StringColumn>();
}

ColumnPtr MakeColumn(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return std::make_shared<Int64Column>();
    case DataType::kDouble:
      return std::make_shared<DoubleColumn>();
    case DataType::kString:
      return std::make_shared<StringColumn>();
  }
  return nullptr;
}

}  // namespace culinary::df
