#include "dataframe/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/statistics.h"
#include "dataframe/expr.h"
#include "dataframe/kernels.h"

namespace culinary::df {

namespace {

/// Resolves column names to indices, or NotFound.
culinary::Result<std::vector<size_t>> ResolveColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    auto idx = table.schema().FieldIndex(name);
    if (!idx.has_value()) {
      return culinary::Status::NotFound("no column named '" + name + "'");
    }
    out.push_back(*idx);
  }
  return out;
}

/// Serializes the cells of `row` at `cols` into a collision-free byte key.
/// Each cell is tagged with its kind so (int 1) and (string "1") differ.
std::string EncodeRowKey(const Table& table, size_t row,
                         const std::vector<size_t>& cols) {
  std::string key;
  for (size_t c : cols) {
    Value v = table.GetValue(row, c);
    if (v.is_null()) {
      key.push_back('\x00');
    } else if (v.is_int()) {
      key.push_back('\x01');
      int64_t x = v.as_int();
      key.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else if (v.is_double()) {
      key.push_back('\x02');
      double x = v.as_double();
      key.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else {
      key.push_back('\x03');
      const std::string& s = v.as_string();
      uint32_t len = static_cast<uint32_t>(s.size());
      key.append(reinterpret_cast<const char*>(&len), sizeof(len));
      key.append(s);
    }
  }
  return key;
}

/// Total order on cell values: null < numeric < string; numerics compare by
/// value (ints and doubles inter-compare).
int CompareValues(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_string()) return 2;
    return 1;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;
  if (ra == 1) {
    double x = *a.AsNumeric();
    double y = *b.AsNumeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a.as_string().compare(b.as_string());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

culinary::Result<Table> Select(const Table& table,
                               const std::vector<std::string>& columns) {
  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            ResolveColumns(table, columns));
  std::vector<Field> fields;
  std::vector<ColumnPtr> cols;
  fields.reserve(idx.size());
  cols.reserve(idx.size());
  for (size_t i : idx) {
    fields.push_back(table.schema().field(i));
    cols.push_back(table.column(i));
  }
  return Table::Make(Schema(std::move(fields)), std::move(cols));
}

culinary::Result<Table> Filter(const Table& table, const RowPredicate& pred) {
  std::vector<size_t> keep;
  keep.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (pred(table, r)) keep.push_back(r);
  }
  return table.Take(keep);
}

culinary::Result<Table> SortBy(const Table& table,
                               const std::vector<SortKey>& keys) {
  if (keys.empty()) {
    return culinary::Status::InvalidArgument("SortBy requires at least one key");
  }
  std::vector<std::string> names;
  for (const SortKey& k : keys) names.push_back(k.column);
  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            ResolveColumns(table, names));

  std::vector<size_t> order(table.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < idx.size(); ++k) {
      int c = CompareValues(table.GetValue(a, idx[k]),
                            table.GetValue(b, idx[k]));
      if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return table.Take(order);
}

culinary::Result<Table> GroupByAggregate(const Table& table,
                                         const std::vector<std::string>& keys,
                                         const std::vector<Aggregation>& aggs) {
  if (keys.empty()) {
    return culinary::Status::InvalidArgument("GroupBy requires key columns");
  }

  // Fused fast path: a single string/int64 key with plain numeric
  // aggregates runs on the expression engine's dictionary-code / flat-hash
  // group-by, which is bit-identical to the row-at-a-time loop below (same
  // first-seen group order, same accumulation order) without boxing a
  // `Value` per cell or hashing an encoded string key per row.
  {
    bool fusable = keys.size() == 1;
    if (fusable) {
      auto idx = table.schema().FieldIndex(keys[0]);
      fusable = !idx.has_value() ||
                table.schema().field(*idx).type != DataType::kDouble;
    }
    for (const Aggregation& agg : aggs) {
      if (agg.kind == AggKind::kCountDistinct) fusable = false;
    }
    if (fusable) {
      return GroupByAggregateWhere(table, keys[0], aggs, nullptr);
    }
  }

  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                            ResolveColumns(table, keys));

  // Resolve aggregate source columns; kCount may reference no column.
  std::vector<std::optional<size_t>> agg_idx(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount && aggs[a].column.empty()) continue;
    auto idx = table.schema().FieldIndex(aggs[a].column);
    if (!idx.has_value()) {
      return culinary::Status::NotFound("no column named '" + aggs[a].column +
                                        "'");
    }
    if (aggs[a].kind != AggKind::kCount &&
        aggs[a].kind != AggKind::kCountDistinct &&
        table.schema().field(*idx).type == DataType::kString) {
      return culinary::Status::InvalidArgument(
          "aggregation over string column '" + aggs[a].column + "'");
    }
    agg_idx[a] = *idx;
  }

  // Group rows by encoded key, preserving first-seen order.
  std::unordered_map<std::string, size_t> group_of;
  std::vector<size_t> group_representative;
  std::vector<std::vector<size_t>> group_rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string key = EncodeRowKey(table, r, key_idx);
    auto [it, inserted] = group_of.emplace(std::move(key), group_rows.size());
    if (inserted) {
      group_representative.push_back(r);
      group_rows.emplace_back();
    }
    group_rows[it->second].push_back(r);
  }

  // Output schema: keys first, then aggregates.
  std::vector<Field> fields;
  for (size_t k = 0; k < keys.size(); ++k) {
    fields.push_back(table.schema().field(key_idx[k]));
  }
  for (const Aggregation& agg : aggs) {
    DataType t = (agg.kind == AggKind::kCount ||
                  agg.kind == AggKind::kCountDistinct)
                     ? DataType::kInt64
                     : DataType::kDouble;
    fields.push_back({agg.output_name, t});
  }
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(Schema(std::move(fields))));

  for (size_t g = 0; g < group_rows.size(); ++g) {
    std::vector<Value> row;
    for (size_t k : key_idx) {
      row.push_back(table.GetValue(group_representative[g], k));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Aggregation& agg = aggs[a];
      switch (agg.kind) {
        case AggKind::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(group_rows[g].size())));
          break;
        case AggKind::kCountDistinct: {
          std::unordered_map<std::string, bool> seen;
          for (size_t r : group_rows[g]) {
            Value v = table.GetValue(r, *agg_idx[a]);
            if (v.is_null()) continue;
            seen.emplace(EncodeRowKey(table, r, {*agg_idx[a]}), true);
          }
          row.push_back(Value::Int(static_cast<int64_t>(seen.size())));
          break;
        }
        case AggKind::kSum:
        case AggKind::kMean:
        case AggKind::kMin:
        case AggKind::kMax: {
          double sum = 0.0;
          double mn = std::numeric_limits<double>::infinity();
          double mx = -std::numeric_limits<double>::infinity();
          int64_t n = 0;
          for (size_t r : group_rows[g]) {
            Value v = table.GetValue(r, *agg_idx[a]);
            auto num = v.AsNumeric();
            if (!num.has_value()) continue;
            sum += *num;
            mn = std::min(mn, *num);
            mx = std::max(mx, *num);
            ++n;
          }
          if (n == 0) {
            row.push_back(Value::Null());
          } else if (agg.kind == AggKind::kSum) {
            row.push_back(Value::Real(sum));
          } else if (agg.kind == AggKind::kMean) {
            row.push_back(Value::Real(sum / static_cast<double>(n)));
          } else if (agg.kind == AggKind::kMin) {
            row.push_back(Value::Real(mn));
          } else {
            row.push_back(Value::Real(mx));
          }
          break;
        }
      }
    }
    CULINARY_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

culinary::Result<Table> HashJoin(const Table& left, const Table& right,
                                 const std::vector<std::string>& keys,
                                 JoinType type) {
  if (keys.empty()) {
    return culinary::Status::InvalidArgument("join requires key columns");
  }
  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> lkey,
                            ResolveColumns(left, keys));
  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> rkey,
                            ResolveColumns(right, keys));
  for (size_t k = 0; k < keys.size(); ++k) {
    if (left.schema().field(lkey[k]).type !=
        right.schema().field(rkey[k]).type) {
      return culinary::Status::InvalidArgument("join key type mismatch on '" +
                                               keys[k] + "'");
    }
  }

  // Non-key columns of each side.
  auto non_keys = [](const Table& t, const std::vector<size_t>& key_idx) {
    std::vector<size_t> out;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (std::find(key_idx.begin(), key_idx.end(), c) == key_idx.end()) {
        out.push_back(c);
      }
    }
    return out;
  };
  std::vector<size_t> lrest = non_keys(left, lkey);
  std::vector<size_t> rrest = non_keys(right, rkey);

  std::vector<Field> fields;
  for (size_t k = 0; k < keys.size(); ++k) {
    fields.push_back(left.schema().field(lkey[k]));
  }
  for (size_t c : lrest) fields.push_back(left.schema().field(c));
  for (size_t c : rrest) {
    Field f = right.schema().field(c);
    for (const Field& existing : fields) {
      if (existing.name == f.name) {
        f.name += "_right";
        break;
      }
    }
    fields.push_back(f);
  }
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(Schema(std::move(fields))));
  // Inner joins emit at most one row per match, left joins at least one per
  // left row; the left row count is the best cheap lower bound for both.
  out.Reserve(left.num_rows());

  // Build hash table on the right side. Null keys never participate.
  auto has_null_key = [](const Table& t, size_t r,
                         const std::vector<size_t>& key_idx) {
    for (size_t k : key_idx) {
      if (t.GetValue(r, k).is_null()) return true;
    }
    return false;
  };
  std::unordered_map<std::string, std::vector<size_t>> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (has_null_key(right, r, rkey)) continue;
    build[EncodeRowKey(right, r, rkey)].push_back(r);
  }

  for (size_t l = 0; l < left.num_rows(); ++l) {
    std::vector<size_t> matches;
    if (!has_null_key(left, l, lkey)) {
      auto it = build.find(EncodeRowKey(left, l, lkey));
      if (it != build.end()) matches = it->second;
    }
    if (matches.empty()) {
      if (type == JoinType::kInner) continue;
      std::vector<Value> row;
      for (size_t k : lkey) row.push_back(left.GetValue(l, k));
      for (size_t c : lrest) row.push_back(left.GetValue(l, c));
      for (size_t i = 0; i < rrest.size(); ++i) row.push_back(Value::Null());
      CULINARY_RETURN_IF_ERROR(out.AppendRow(row));
      continue;
    }
    for (size_t r : matches) {
      std::vector<Value> row;
      for (size_t k : lkey) row.push_back(left.GetValue(l, k));
      for (size_t c : lrest) row.push_back(left.GetValue(l, c));
      for (size_t c : rrest) row.push_back(right.GetValue(r, c));
      CULINARY_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

culinary::Result<Table> Distinct(const Table& table,
                                 const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  if (columns.empty()) {
    for (size_t c = 0; c < table.num_columns(); ++c) idx.push_back(c);
  } else {
    CULINARY_ASSIGN_OR_RETURN(idx, ResolveColumns(table, columns));
  }
  std::unordered_map<std::string, bool> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto [it, inserted] = seen.emplace(EncodeRowKey(table, r, idx), true);
    (void)it;
    if (inserted) keep.push_back(r);
  }
  return table.Take(keep);
}

culinary::Result<Table> ValueCounts(const Table& table,
                                    const std::string& column) {
  auto idx = table.schema().FieldIndex(column);
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + column + "'");
  }
  const Column* col = table.column(*idx).get();

  // Distinct values in first-seen order plus their counts. String columns
  // count straight into a dense per-code array (dictionary codes are
  // assigned in first-appearance order, so code order == first-seen order);
  // int64 columns go through the flat open-addressing group index. Doubles
  // keep the boxed-key path — they are not worth a typed kernel as a
  // grouping key.
  std::vector<int64_t> counts;
  std::vector<Value> distinct;
  if (col->type() == DataType::kString) {
    const auto* scol = static_cast<const StringColumn*>(col);
    const int32_t* codes = scol->codes();
    std::vector<int64_t> per_code(scol->dictionary_size(), 0);
    col->validity().ForEachSetBit(0, col->size(), [&](size_t r) {
      ++per_code[static_cast<size_t>(codes[r])];
    });
    for (size_t c = 0; c < per_code.size(); ++c) {
      if (per_code[c] == 0) continue;
      distinct.push_back(Value::Str(std::string(scol->dict_at(
          static_cast<int32_t>(c)))));
      counts.push_back(per_code[c]);
    }
  } else if (col->type() == DataType::kInt64) {
    const int64_t* data = static_cast<const Int64Column*>(col)->data();
    kernels::FlatGroupIndex index;
    col->validity().ForEachSetBit(0, col->size(), [&](size_t r) {
      const int32_t gid = index.GetOrAdd(data[r]);
      if (static_cast<size_t>(gid) == counts.size()) counts.push_back(0);
      ++counts[static_cast<size_t>(gid)];
    });
    distinct.reserve(counts.size());
    for (size_t g = 0; g < counts.size(); ++g) {
      distinct.push_back(Value::Int(index.key(static_cast<int32_t>(g))));
    }
  } else {
    std::unordered_map<std::string, size_t> group_of;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      Value v = table.GetValue(r, *idx);
      if (v.is_null()) continue;
      std::string key = EncodeRowKey(table, r, {*idx});
      auto [it, inserted] = group_of.emplace(std::move(key), counts.size());
      if (inserted) {
        distinct.push_back(std::move(v));
        counts.push_back(0);
      }
      ++counts[it->second];
    }
  }

  std::vector<size_t> order(counts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return counts[a] > counts[b]; });

  std::vector<Field> fields = {table.schema().field(*idx),
                               {"count", DataType::kInt64}};
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(Schema(std::move(fields))));
  out.Reserve(order.size());
  for (size_t g : order) {
    CULINARY_RETURN_IF_ERROR(
        out.AppendRow({distinct[g], Value::Int(counts[g])}));
  }
  return out;
}

culinary::Result<std::vector<double>> ToDoubleVector(const Table& table,
                                                     const std::string& column) {
  auto idx = table.schema().FieldIndex(column);
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + column + "'");
  }
  if (table.schema().field(*idx).type == DataType::kString) {
    return culinary::Status::InvalidArgument("column '" + column +
                                             "' is not numeric");
  }
  std::vector<double> out;
  const Column* col = table.column(*idx).get();
  out.reserve(col->size() - col->null_count());
  const uint64_t* valid = col->validity().words();
  if (col->type() == DataType::kInt64) {
    kernels::GatherNonNullAsDouble(
        valid, static_cast<const Int64Column*>(col)->data(), col->size(),
        &out);
  } else {
    kernels::GatherNonNullAsDouble(
        valid, static_cast<const DoubleColumn*>(col)->data(), col->size(),
        &out);
  }
  return out;
}

culinary::Result<Table> Concat(const std::vector<Table>& tables) {
  if (tables.empty()) {
    return culinary::Status::InvalidArgument("Concat requires tables");
  }
  for (const Table& t : tables) {
    if (!(t.schema() == tables[0].schema())) {
      return culinary::Status::InvalidArgument("Concat schemas differ");
    }
  }
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(tables[0].schema()));
  size_t total_rows = 0;
  for (const Table& t : tables) total_rows += t.num_rows();
  out.Reserve(total_rows);
  for (const Table& t : tables) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        row.push_back(t.GetValue(r, c));
      }
      CULINARY_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

culinary::Result<Table> Describe(const Table& table) {
  std::vector<size_t> numeric;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.schema().field(c).type != DataType::kString) numeric.push_back(c);
  }
  if (numeric.empty()) {
    return culinary::Status::InvalidArgument("table has no numeric columns");
  }
  df::Schema schema({{"column", DataType::kString},
                     {"count", DataType::kInt64},
                     {"nulls", DataType::kInt64},
                     {"mean", DataType::kDouble},
                     {"stddev", DataType::kDouble},
                     {"min", DataType::kDouble},
                     {"median", DataType::kDouble},
                     {"max", DataType::kDouble}});
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(schema));
  for (size_t c : numeric) {
    const std::string& name = table.schema().field(c).name;
    CULINARY_ASSIGN_OR_RETURN(std::vector<double> values,
                              ToDoubleVector(table, name));
    int64_t nulls = static_cast<int64_t>(table.column(c)->null_count());
    if (values.empty()) {
      CULINARY_RETURN_IF_ERROR(out.AppendRow(
          {Value::Str(name), Value::Int(0), Value::Int(nulls), Value::Null(),
           Value::Null(), Value::Null(), Value::Null(), Value::Null()}));
      continue;
    }
    double mn = values[0], mx = values[0];
    for (double v : values) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    CULINARY_RETURN_IF_ERROR(out.AppendRow(
        {Value::Str(name), Value::Int(static_cast<int64_t>(values.size())),
         Value::Int(nulls), Value::Real(culinary::Mean(values)),
         Value::Real(culinary::StdDev(values)), Value::Real(mn),
         Value::Real(culinary::Median(values)), Value::Real(mx)}));
  }
  return out;
}

culinary::Result<Table> RenameColumns(
    const Table& table,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<Field> fields = table.schema().fields();
  for (const auto& [from, to] : renames) {
    auto idx = table.schema().FieldIndex(from);
    if (!idx.has_value()) {
      return culinary::Status::NotFound("no column named '" + from + "'");
    }
    fields[*idx].name = to;
  }
  std::unordered_map<std::string, int> seen;
  for (const Field& f : fields) {
    if (++seen[f.name] > 1) {
      return culinary::Status::InvalidArgument("rename collides on '" +
                                               f.name + "'");
    }
  }
  std::vector<ColumnPtr> columns;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns.push_back(table.column(c));
  }
  return Table::Make(Schema(std::move(fields)), std::move(columns));
}

culinary::Result<Table> DropColumns(const Table& table,
                                    const std::vector<std::string>& columns) {
  CULINARY_ASSIGN_OR_RETURN(std::vector<size_t> drop,
                            ResolveColumns(table, columns));
  std::vector<std::string> keep;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (std::find(drop.begin(), drop.end(), c) == drop.end()) {
      keep.push_back(table.schema().field(c).name);
    }
  }
  if (keep.empty()) {
    return culinary::Status::InvalidArgument("cannot drop every column");
  }
  return Select(table, keep);
}

culinary::Result<Table> WithComputedColumn(const Table& table,
                                           const Field& field,
                                           const ValueGenerator& generator) {
  if (table.schema().HasField(field.name)) {
    return culinary::Status::AlreadyExists("column '" + field.name +
                                           "' already exists");
  }
  ColumnPtr column = MakeColumn(field.type);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    CULINARY_RETURN_IF_ERROR(column->AppendValue(generator(table, r)));
  }
  std::vector<Field> fields = table.schema().fields();
  fields.push_back(field);
  std::vector<ColumnPtr> columns;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns.push_back(table.column(c));
  }
  columns.push_back(std::move(column));
  return Table::Make(Schema(std::move(fields)), std::move(columns));
}

}  // namespace culinary::df
