#include "dataframe/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace culinary::df {

culinary::Result<Table> Table::Make(Schema schema) {
  if (schema.num_fields() == 0) {
    return culinary::Status::InvalidArgument("schema must have fields");
  }
  std::unordered_set<std::string> names;
  std::vector<ColumnPtr> columns;
  columns.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    if (!names.insert(f.name).second) {
      return culinary::Status::InvalidArgument("duplicate field name: " +
                                               f.name);
    }
    columns.push_back(MakeColumn(f.type));
  }
  return Table(std::move(schema), std::move(columns));
}

culinary::Result<Table> Table::Make(Schema schema,
                                    std::vector<ColumnPtr> columns) {
  if (schema.num_fields() != columns.size()) {
    return culinary::Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_fields()) +
        " fields but " + std::to_string(columns.size()) + " columns given");
  }
  if (columns.empty()) {
    return culinary::Status::InvalidArgument("table must have columns");
  }
  std::unordered_set<std::string> names;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return culinary::Status::InvalidArgument("null column pointer");
    }
    if (columns[i]->type() != schema.field(i).type) {
      return culinary::Status::InvalidArgument(
          "column " + std::to_string(i) + " type mismatch for field '" +
          schema.field(i).name + "'");
    }
    if (columns[i]->size() != columns[0]->size()) {
      return culinary::Status::InvalidArgument("columns have unequal length");
    }
    if (!names.insert(schema.field(i).name).second) {
      return culinary::Status::InvalidArgument("duplicate field name: " +
                                               schema.field(i).name);
    }
  }
  return Table(std::move(schema), std::move(columns));
}

culinary::Result<ColumnPtr> Table::ColumnByName(std::string_view name) const {
  auto idx = schema_.FieldIndex(name);
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + std::string(name) +
                                      "'");
  }
  return columns_[*idx];
}

culinary::Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return culinary::Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  // Validate first so a failed append leaves the table unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    DataType t = schema_.field(i).type;
    bool ok = (t == DataType::kInt64 && v.is_int()) ||
              (t == DataType::kDouble && (v.is_double() || v.is_int())) ||
              (t == DataType::kString && v.is_string());
    if (!ok) {
      return culinary::Status::InvalidArgument(
          "value " + v.ToString() + " does not match field '" +
          schema_.field(i).name + "' of type " +
          std::string(DataTypeToString(t)));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    culinary::Status s = columns_[i]->AppendValue(values[i]);
    if (!s.ok()) return culinary::Status::Internal("append failed after validation: " + s.ToString());
  }
  return culinary::Status::OK();
}

culinary::Result<Value> Table::GetValueChecked(size_t row,
                                               std::string_view column) const {
  auto idx = schema_.FieldIndex(column);
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" +
                                      std::string(column) + "'");
  }
  if (row >= num_rows()) {
    return culinary::Status::OutOfRange("row " + std::to_string(row) +
                                        " >= " + std::to_string(num_rows()));
  }
  return columns_[*idx]->GetValue(row);
}

culinary::Result<Table> Table::Take(const std::vector<size_t>& indices) const {
  const size_t n = num_rows();
  for (size_t i : indices) {
    if (i >= n) {
      return culinary::Status::OutOfRange("take index " + std::to_string(i) +
                                          " >= " + std::to_string(n));
    }
  }
  std::vector<ColumnPtr> out;
  out.reserve(columns_.size());
  for (const ColumnPtr& c : columns_) out.push_back(c->Take(indices));
  return Table(schema_, std::move(out));
}

std::string Table::ToString(size_t max_rows) const {
  const size_t rows = std::min(max_rows, num_rows());
  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths(num_columns(), 0);
  std::vector<std::string> header;
  for (size_t c = 0; c < num_columns(); ++c) {
    header.push_back(schema_.field(c).name);
    widths[c] = header.back().size();
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < num_columns(); ++c) {
      row.push_back(GetValue(r, c).ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    out += culinary::PadRight(header[c], widths[c]);
    out += (c + 1 < num_columns()) ? "  " : "\n";
  }
  for (const auto& row : cells) {
    for (size_t c = 0; c < num_columns(); ++c) {
      out += culinary::PadRight(row[c], widths[c]);
      out += (c + 1 < num_columns()) ? "  " : "\n";
    }
  }
  if (rows < num_rows()) {
    out += "... (" + std::to_string(num_rows() - rows) + " more rows)\n";
  }
  return out;
}

}  // namespace culinary::df
