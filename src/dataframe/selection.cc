#include "dataframe/selection.h"

namespace culinary::df {

std::vector<size_t> Selection::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  bits_.ForEachSetBit(0, bits_.num_bits(),
                      [&out](size_t row) { out.push_back(row); });
  return out;
}

}  // namespace culinary::df
