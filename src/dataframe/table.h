#ifndef CULINARYLAB_DATAFRAME_TABLE_H_
#define CULINARYLAB_DATAFRAME_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataframe/column.h"
#include "dataframe/types.h"

namespace culinary::df {

/// An in-memory columnar table: a schema plus one equal-length column per
/// field. The in-process equivalent of a pandas DataFrame for this project.
///
/// Tables are cheap to copy (columns are shared). Rows are appended through
/// `AppendRow`; bulk transformations live in ops.h and produce new tables.
class Table {
 public:
  /// Creates an empty table (no columns, no rows).
  Table() = default;

  /// Creates an empty table with the given schema. Fails when field names
  /// collide or the schema is empty.
  static culinary::Result<Table> Make(Schema schema);

  /// Creates a table from a schema and pre-built columns. Fails when counts
  /// or row lengths disagree, or a column type mismatches its field.
  static culinary::Result<Table> Make(Schema schema,
                                      std::vector<ColumnPtr> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  /// Column accessors. `column(i)` is bounds-unchecked; the name variant
  /// returns NotFound for unknown names.
  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  culinary::Result<ColumnPtr> ColumnByName(std::string_view name) const;

  /// Appends one row given as dynamically typed values, one per field.
  culinary::Status AppendRow(const std::vector<Value>& values);

  /// Pre-allocates every column for `rows` total rows.
  void Reserve(size_t rows) {
    for (const ColumnPtr& col : columns_) col->Reserve(rows);
  }

  /// Cell accessor: `GetValue(row, col)`; bounds-checked variant returns
  /// OutOfRange / NotFound as appropriate.
  Value GetValue(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }
  culinary::Result<Value> GetValueChecked(size_t row,
                                          std::string_view column) const;

  /// A new table containing the rows at `indices`, in that order. Indices
  /// may repeat. Fails on out-of-range indices.
  culinary::Result<Table> Take(const std::vector<size_t>& indices) const;

  /// Renders up to `max_rows` rows as an aligned text table (for debugging
  /// and examples).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Table(Schema schema, std::vector<ColumnPtr> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  Schema schema_;
  std::vector<ColumnPtr> columns_;
};

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_TABLE_H_
