#ifndef CULINARYLAB_DATAFRAME_SELECTION_H_
#define CULINARYLAB_DATAFRAME_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitmap.h"

namespace culinary::df {

/// A set of selected rows over a table of `num_rows()` rows, packed one bit
/// per row. This is the intermediate the expression engine materializes
/// instead of a filtered `Table`: predicates combine selections with
/// word-wise AND/OR/NOT, terminals popcount or iterate them, and only an
/// explicit `ToIndices` + `Table::Take` produces rows.
///
/// Invariant (inherited from `culinary::Bitmap`): bits at positions >=
/// `num_rows()` are zero, so whole-word popcounts and word-wise equality
/// are exact.
class Selection {
 public:
  Selection() = default;

  /// `num_rows` rows, all selected (`value` = true) or none.
  explicit Selection(size_t num_rows, bool value = false)
      : bits_(num_rows, value) {}

  /// Wraps an existing bitmap (bit i == row i selected).
  static Selection FromBitmap(culinary::Bitmap bits) {
    Selection s;
    s.bits_ = std::move(bits);
    return s;
  }

  size_t num_rows() const { return bits_.num_bits(); }
  bool Test(size_t row) const { return bits_.Test(row); }

  const culinary::Bitmap& bits() const { return bits_; }
  culinary::Bitmap& mutable_bits() { return bits_; }

  /// Number of selected rows (whole-selection popcount).
  size_t Count() const { return bits_.CountSet(); }

  /// Number of selected rows in [begin, end).
  size_t CountRange(size_t begin, size_t end) const {
    return bits_.CountSetRange(begin, end);
  }

  /// In-place set algebra with an equal-length selection.
  void And(const Selection& other) { bits_.AndWith(other.bits_); }
  void Or(const Selection& other) { bits_.OrWith(other.bits_); }
  void Not() { bits_.FlipAll(); }

  /// Selected row indices, ascending — the bridge to `Table::Take`.
  std::vector<size_t> ToIndices() const;

  /// Calls `fn(row)` for every selected row, ascending.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    bits_.ForEachSetBit(0, bits_.num_bits(), std::forward<Fn>(fn));
  }

  friend bool operator==(const Selection& a, const Selection& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const Selection& a, const Selection& b) {
    return !(a == b);
  }

 private:
  culinary::Bitmap bits_;
};

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_SELECTION_H_
