#include "dataframe/kernels.h"

#include <algorithm>

#if defined(CULINARYLAB_AVX2)
#include <immintrin.h>
#endif

namespace culinary::df::kernels {

namespace {

/// Fills the mask words covering [begin, end) from `pred(row)`, one packed
/// word per 64 rows. The full-word inner loop has a fixed trip count of 64
/// with no cross-iteration dependency except the OR-accumulate, which is the
/// shape compilers turn into a SIMD compare + movemask.
template <typename Pred>
inline void FillMask(size_t begin, size_t end, uint64_t* out, Pred pred) {
  size_t w = begin >> 6;
  size_t base = begin;
  for (; base + 64 <= end; base += 64, ++w) {
    uint64_t bits = 0;
    for (size_t b = 0; b < 64; ++b) {
      bits |= static_cast<uint64_t>(pred(base + b)) << b;
    }
    out[w] = bits;
  }
  if (base < end) {
    uint64_t bits = 0;
    for (size_t b = 0; base + b < end; ++b) {
      bits |= static_cast<uint64_t>(pred(base + b)) << b;
    }
    out[w] = bits;  // bits past `end` stay zero
  }
}

/// Dispatches `op` once, outside the row loop, so each instantiation is a
/// branch-free kernel.
template <typename Lhs>
inline void CompareDispatch(Lhs lhs, CmpOp op, size_t begin, size_t end,
                            uint64_t* out) {
  switch (op) {
    case CmpOp::kEq:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) == lhs.b(i); });
      return;
    case CmpOp::kNe:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) != lhs.b(i); });
      return;
    case CmpOp::kLt:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) < lhs.b(i); });
      return;
    case CmpOp::kLe:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) <= lhs.b(i); });
      return;
    case CmpOp::kGt:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) > lhs.b(i); });
      return;
    case CmpOp::kGe:
      FillMask(begin, end, out, [&](size_t i) { return lhs.a(i) >= lhs.b(i); });
      return;
  }
}

template <typename T, typename L>
struct ArrayVsLit {
  const T* data;
  L lit;
  T a(size_t i) const { return data[i]; }
  L b(size_t) const { return lit; }
};

struct Int64AsDoubleVsLit {
  const int64_t* data;
  double lit;
  double a(size_t i) const { return static_cast<double>(data[i]); }
  double b(size_t) const { return lit; }
};

struct ArrayVsArray {
  const double* lhs;
  const double* rhs;
  double a(size_t i) const { return lhs[i]; }
  double b(size_t i) const { return rhs[i]; }
};

/// Word index range [first, last) covering rows [begin, end).
inline void WordRange(size_t begin, size_t end, size_t* first, size_t* last) {
  *first = begin >> 6;
  *last = (end + 63) >> 6;
}

}  // namespace

void CompareInt64Lit(const int64_t* data, CmpOp op, int64_t lit, size_t begin,
                     size_t end, uint64_t* out) {
  CompareDispatch(ArrayVsLit<int64_t, int64_t>{data, lit}, op, begin, end, out);
}

void CompareDoubleLit(const double* data, CmpOp op, double lit, size_t begin,
                      size_t end, uint64_t* out) {
  CompareDispatch(ArrayVsLit<double, double>{data, lit}, op, begin, end, out);
}

void CompareInt64AsDoubleLit(const int64_t* data, CmpOp op, double lit,
                             size_t begin, size_t end, uint64_t* out) {
  CompareDispatch(Int64AsDoubleVsLit{data, lit}, op, begin, end, out);
}

void CompareDoubleDouble(const double* lhs, const double* rhs, CmpOp op,
                         size_t begin, size_t end, uint64_t* out) {
  CompareDispatch(ArrayVsArray{lhs, rhs}, op, begin, end, out);
}

void CompareCodeEqScalar(const int32_t* codes, int32_t code, bool negate,
                         size_t begin, size_t end, uint64_t* out) {
  if (negate) {
    FillMask(begin, end, out, [&](size_t i) { return codes[i] != code; });
  } else {
    FillMask(begin, end, out, [&](size_t i) { return codes[i] == code; });
  }
}

#if defined(CULINARYLAB_AVX2)

namespace {

/// One 64-bit mask word from 64 consecutive codes: eight 8-lane compares,
/// each movemask contributing 8 bits. cmpeq lanes are all-ones on match, so
/// the float movemask (sign bit per 32-bit lane) reads the compare result.
__attribute__((target("avx2"))) inline uint64_t CodeEqWord(
    const int32_t* codes, __m256i needle) {
  uint64_t bits = 0;
  for (int chunk = 0; chunk < 8; ++chunk) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(codes + chunk * 8));
    const __m256i eq = _mm256_cmpeq_epi32(v, needle);
    bits |= static_cast<uint64_t>(static_cast<unsigned>(
                _mm256_movemask_ps(_mm256_castsi256_ps(eq))))
            << (chunk * 8);
  }
  return bits;
}

__attribute__((target("avx2"))) void CompareCodeEqAvx2Impl(
    const int32_t* codes, int32_t code, bool negate, size_t begin, size_t end,
    uint64_t* out) {
  const __m256i needle = _mm256_set1_epi32(code);
  size_t w = begin >> 6;
  size_t base = begin;
  for (; base + 64 <= end; base += 64, ++w) {
    const uint64_t bits = CodeEqWord(codes + base, needle);
    // Full words only: flipping all 64 bits is exact Ne, no tail to mask.
    out[w] = negate ? ~bits : bits;
  }
}

}  // namespace

bool CompareCodeEqAvx2(const int32_t* codes, int32_t code, bool negate,
                       size_t begin, size_t end, uint64_t* out) {
  static const bool supported = __builtin_cpu_supports("avx2");
  if (!supported) return false;
  CompareCodeEqAvx2Impl(codes, code, negate, begin, end, out);
  // Sub-word tail: scalar, which also zeroes the bits past `end`.
  const size_t tail = begin + ((end - begin) & ~size_t{63});
  if (tail < end) CompareCodeEqScalar(codes, code, negate, tail, end, out);
  return true;
}

#else  // !CULINARYLAB_AVX2

bool CompareCodeEqAvx2(const int32_t*, int32_t, bool, size_t, size_t,
                       uint64_t*) {
  return false;
}

#endif  // CULINARYLAB_AVX2

void CompareCodeEq(const int32_t* codes, int32_t code, bool negate,
                   size_t begin, size_t end, uint64_t* out) {
  if (CompareCodeEqAvx2(codes, code, negate, begin, end, out)) return;
  CompareCodeEqScalar(codes, code, negate, begin, end, out);
}

void FillConstant(bool value, size_t begin, size_t end, uint64_t* out) {
  size_t first, last;
  WordRange(begin, end, &first, &last);
  const uint64_t fill = value ? ~uint64_t{0} : uint64_t{0};
  for (size_t w = first; w < last; ++w) out[w] = fill;
  if (value && (end & 63) != 0) {
    out[last - 1] &= ~uint64_t{0} >> (64 - (end & 63));
  }
}

void AndWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out) {
  size_t first, last;
  WordRange(begin, end, &first, &last);
  for (size_t w = first; w < last; ++w) out[w] &= src[w];
}

void OrWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out) {
  size_t first, last;
  WordRange(begin, end, &first, &last);
  for (size_t w = first; w < last; ++w) out[w] |= src[w];
}

void CopyWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out) {
  size_t first, last;
  WordRange(begin, end, &first, &last);
  for (size_t w = first; w < last; ++w) out[w] = src[w];
  if ((end & 63) != 0) {
    out[last - 1] &= ~uint64_t{0} >> (64 - (end & 63));
  }
}

void NotWords(size_t begin, size_t end, uint64_t* out) {
  size_t first, last;
  WordRange(begin, end, &first, &last);
  for (size_t w = first; w < last; ++w) out[w] = ~out[w];
  if ((end & 63) != 0) {
    out[last - 1] &= ~uint64_t{0} >> (64 - (end & 63));
  }
}

void IsNullMask(const uint64_t* valid, bool negate, size_t begin, size_t end,
                uint64_t* out) {
  if (negate) {
    CopyWords(valid, begin, end, out);
  } else {
    CopyWords(valid, begin, end, out);
    NotWords(begin, end, out);
  }
}

namespace {

template <typename T>
void AccumulateSelectedImpl(const uint64_t* sel, const uint64_t* valid,
                            const T* data, size_t num_rows,
                            NumericAggState* state) {
  const size_t num_words = culinary::Bitmap::WordsFor(num_rows);
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t word = sel[w] & valid[w];
    while (word != 0) {
      const size_t row = w * 64 + culinary::CountTrailingZeros64(word);
      word &= word - 1;
      state->Accumulate(static_cast<double>(data[row]));
    }
  }
}

template <typename T>
void GatherNonNullImpl(const uint64_t* valid, const T* data, size_t num_rows,
                       std::vector<double>* out) {
  culinary::Bitmap::ForEachSetBitInWords(
      valid, 0, num_rows,
      [&](size_t row) { out->push_back(static_cast<double>(data[row])); });
}

}  // namespace

void AccumulateSelectedDouble(const uint64_t* sel, const uint64_t* valid,
                              const double* data, size_t num_rows,
                              NumericAggState* state) {
  AccumulateSelectedImpl(sel, valid, data, num_rows, state);
}

void AccumulateSelectedInt64(const uint64_t* sel, const uint64_t* valid,
                             const int64_t* data, size_t num_rows,
                             NumericAggState* state) {
  AccumulateSelectedImpl(sel, valid, data, num_rows, state);
}

void GatherNonNullAsDouble(const uint64_t* valid, const double* data,
                           size_t num_rows, std::vector<double>* out) {
  GatherNonNullImpl(valid, data, num_rows, out);
}

void GatherNonNullAsDouble(const uint64_t* valid, const int64_t* data,
                           size_t num_rows, std::vector<double>* out) {
  GatherNonNullImpl(valid, data, num_rows, out);
}

FlatGroupIndex::FlatGroupIndex(size_t expected_keys) {
  size_t capacity = 16;
  // Size for ~70% max load.
  while (capacity < expected_keys + expected_keys / 2 + 1) capacity <<= 1;
  slot_keys_.assign(capacity, 0);
  slot_gids_.assign(capacity, -1);
  capacity_mask_ = capacity - 1;
}

int32_t FlatGroupIndex::GetOrAdd(int64_t key) {
  if (keys_.size() + 1 > (capacity_mask_ + 1) * 7 / 10) {
    Rehash((capacity_mask_ + 1) * 2);
  }
  size_t slot = HashKey(static_cast<uint64_t>(key)) & capacity_mask_;
  while (slot_gids_[slot] >= 0) {
    if (slot_keys_[slot] == key) return slot_gids_[slot];
    slot = (slot + 1) & capacity_mask_;
  }
  const int32_t gid = static_cast<int32_t>(keys_.size());
  slot_keys_[slot] = key;
  slot_gids_[slot] = gid;
  keys_.push_back(key);
  return gid;
}

int32_t FlatGroupIndex::Find(int64_t key) const {
  size_t slot = HashKey(static_cast<uint64_t>(key)) & capacity_mask_;
  while (slot_gids_[slot] >= 0) {
    if (slot_keys_[slot] == key) return slot_gids_[slot];
    slot = (slot + 1) & capacity_mask_;
  }
  return -1;
}

void FlatGroupIndex::Rehash(size_t new_capacity) {
  std::vector<int64_t> old_keys = std::move(slot_keys_);
  std::vector<int32_t> old_gids = std::move(slot_gids_);
  slot_keys_.assign(new_capacity, 0);
  slot_gids_.assign(new_capacity, -1);
  capacity_mask_ = new_capacity - 1;
  for (size_t s = 0; s < old_gids.size(); ++s) {
    if (old_gids[s] < 0) continue;
    size_t slot = HashKey(static_cast<uint64_t>(old_keys[s])) & capacity_mask_;
    while (slot_gids_[slot] >= 0) slot = (slot + 1) & capacity_mask_;
    slot_keys_[slot] = old_keys[s];
    slot_gids_[slot] = old_gids[s];
  }
}

}  // namespace culinary::df::kernels
