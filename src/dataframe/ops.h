#ifndef CULINARYLAB_DATAFRAME_OPS_H_
#define CULINARYLAB_DATAFRAME_OPS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dataframe/table.h"

namespace culinary::df {

/// A new table with only the named columns, in the given order.
culinary::Result<Table> Select(const Table& table,
                               const std::vector<std::string>& columns);

/// Row predicate receiving the source table and a row index.
using RowPredicate = std::function<bool(const Table&, size_t)>;

/// A new table with the rows for which `pred` returns true (stable order).
culinary::Result<Table> Filter(const Table& table, const RowPredicate& pred);

/// One sort key; rows compare by the named column.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// A new table with rows ordered by `keys` (lexicographic across keys,
/// stable). Nulls sort first in ascending order, last in descending.
culinary::Result<Table> SortBy(const Table& table,
                               const std::vector<SortKey>& keys);

/// Aggregation kinds supported by `GroupByAggregate`.
enum class AggKind {
  kCount,          ///< number of rows in the group (column may be empty)
  kCountDistinct,  ///< number of distinct non-null values
  kSum,            ///< sum of a numeric column (double result)
  kMean,           ///< mean of a numeric column (double result)
  kMin,            ///< minimum of a numeric column (double result)
  kMax,            ///< maximum of a numeric column (double result)
};

/// One aggregate to compute per group.
struct Aggregation {
  AggKind kind;
  std::string column;       ///< source column; ignored for kCount
  std::string output_name;  ///< name of the result column
};

/// Groups `table` by the `keys` columns and computes `aggs` per group. The
/// result has one row per distinct key combination (first-seen order), the
/// key columns first, then one column per aggregation. Null keys group
/// together. Numeric aggregates skip null cells.
culinary::Result<Table> GroupByAggregate(const Table& table,
                                         const std::vector<std::string>& keys,
                                         const std::vector<Aggregation>& aggs);

/// Join types supported by `HashJoin`.
enum class JoinType { kInner, kLeft };

/// Hash join of `left` and `right` on equality of the named key columns
/// (same names on both sides; key columns appear once in the output, then
/// remaining left columns, then remaining right columns — right columns that
/// collide with a left name get an "_right" suffix). Null keys never match.
culinary::Result<Table> HashJoin(const Table& left, const Table& right,
                                 const std::vector<std::string>& keys,
                                 JoinType type = JoinType::kInner);

/// A new table with duplicate rows (over the named columns, or all columns
/// when empty) removed, keeping the first occurrence.
culinary::Result<Table> Distinct(const Table& table,
                                 const std::vector<std::string>& columns = {});

/// Frequency table of the named column: columns `<name>` and `count`,
/// ordered by descending count (ties by first appearance). Nulls excluded.
culinary::Result<Table> ValueCounts(const Table& table,
                                    const std::string& column);

/// Extracts a numeric column (int64 widens to double); nulls are skipped.
culinary::Result<std::vector<double>> ToDoubleVector(const Table& table,
                                                     const std::string& column);

/// Vertically concatenates tables with identical schemas.
culinary::Result<Table> Concat(const std::vector<Table>& tables);

/// Summary statistics of every numeric column: one row per column with
/// count (non-null), nulls, mean, stddev, min, median, max. Fails when the
/// table has no numeric columns.
culinary::Result<Table> Describe(const Table& table);

/// A new table with columns renamed per (old, new) pairs. Unknown old
/// names are NotFound; collisions with surviving names are
/// InvalidArgument.
culinary::Result<Table> RenameColumns(
    const Table& table,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// A new table without the named columns (all must exist; dropping every
/// column is InvalidArgument).
culinary::Result<Table> DropColumns(const Table& table,
                                    const std::vector<std::string>& columns);

/// Cell generator for computed columns.
using ValueGenerator = std::function<Value(const Table&, size_t row)>;

/// A new table with one extra column computed row-by-row. The generator's
/// values must match `field.type` (nulls allowed); mismatches fail.
culinary::Result<Table> WithComputedColumn(const Table& table,
                                           const Field& field,
                                           const ValueGenerator& generator);

}  // namespace culinary::df

#endif  // CULINARYLAB_DATAFRAME_OPS_H_
