#include "dataframe/expr.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <thread>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace culinary::df {

namespace {

using kernels::CmpOp;
using kernels::kRowsPerBlock;

constexpr size_t kWordsPerBlock = kRowsPerBlock / 64;

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(Expr::ArithOp op) {
  switch (op) {
    case Expr::ArithOp::kAdd: return "+";
    case Expr::ArithOp::kSub: return "-";
    case Expr::ArithOp::kMul: return "*";
    case Expr::ArithOp::kDiv: return "/";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare:
      return "(" + lhs_->ToString() + " " + CmpOpName(cmp_) + " " +
             rhs_->ToString() + ")";
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs_->ToString() + ")";
    case Kind::kIsNull:
      return "(" + lhs_->ToString() +
             (negated_ ? " IS NOT NULL)" : " IS NULL)");
    case Kind::kArith:
      return "(" + lhs_->ToString() + " " + ArithOpName(arith_) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Expr::Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Lit(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Expr::Kind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr MakeCompare(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Expr::Kind::kCompare;
  e->cmp_ = op;
  e->lhs_ = std::move(l);
  e->rhs_ = std::move(r);
  return e;
}

ExprPtr MakeLogical(Expr::Kind kind, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->lhs_ = std::move(l);
  e->rhs_ = std::move(r);
  return e;
}

ExprPtr MakeIsNull(ExprPtr child, bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Expr::Kind::kIsNull;
  e->negated_ = negated;
  e->lhs_ = std::move(child);
  return e;
}

ExprPtr MakeArith(Expr::ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Expr::Kind::kArith;
  e->arith_ = op;
  e->lhs_ = std::move(l);
  e->rhs_ = std::move(r);
  return e;
}

namespace {

// ---------------------------------------------------------------------------
// Binding: resolve column names to raw array pointers and string literals to
// dictionary codes once, and pick the kernel for every node, so block
// evaluation does no name lookups, no hashing and no boxed Values.
// ---------------------------------------------------------------------------

enum class BKind {
  kConstMask,       // constant predicate (const_value)
  kCmpI64Lit,       // int64 column vs int64 literal, exact
  kCmpF64Lit,       // double column vs double literal
  kCmpI64AsF64Lit,  // int64 column widened vs double literal
  kCmpCodeEq,       // string column code vs resolved literal code (negate=Ne)
  kCmpGeneric,      // numeric-block lhs vs rhs
  kAnd,
  kOr,
  kNot,
  kIsNull,  // column validity (negate = IS NOT NULL)
  kNumCol,
  kNumLit,
  kNumArith,
};

struct BoundNode {
  BKind kind = BKind::kConstMask;
  CmpOp cmp = CmpOp::kEq;
  Expr::ArithOp arith = Expr::ArithOp::kAdd;
  bool negate = false;
  bool const_value = false;
  // Column leaf (exactly one data pointer set, plus validity words):
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const int32_t* codes = nullptr;
  const uint64_t* valid = nullptr;
  // Literal payloads:
  int64_t i64_lit = 0;
  double f64_lit = 0.0;
  int32_t code_lit = -1;
  bool lit_is_null = false;
  std::unique_ptr<BoundNode> lhs;
  std::unique_ptr<BoundNode> rhs;
};

culinary::Status NotAPredicate(const Expr& e) {
  return culinary::Status::InvalidArgument("expression '" + e.ToString() +
                                           "' is not a predicate");
}

culinary::Result<const Column*> ResolveColumn(const Table& table,
                                              const Expr& e, size_t* index) {
  auto idx = table.schema().FieldIndex(e.column_name());
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + e.column_name() +
                                      "'");
  }
  *index = *idx;
  return table.column(*idx).get();
}

culinary::Result<std::unique_ptr<BoundNode>> BindNumeric(const Table& table,
                                                         const Expr& e);

culinary::Result<std::unique_ptr<BoundNode>> BindPredicate(const Table& table,
                                                           const Expr& e);

culinary::Result<std::unique_ptr<BoundNode>> BindNumeric(const Table& table,
                                                         const Expr& e) {
  auto node = std::make_unique<BoundNode>();
  switch (e.kind()) {
    case Expr::Kind::kColumn: {
      size_t idx;
      CULINARY_ASSIGN_OR_RETURN(const Column* col,
                                ResolveColumn(table, e, &idx));
      node->kind = BKind::kNumCol;
      node->valid = col->validity().words();
      if (col->type() == DataType::kInt64) {
        node->i64 = static_cast<const Int64Column*>(col)->data();
      } else if (col->type() == DataType::kDouble) {
        node->f64 = static_cast<const DoubleColumn*>(col)->data();
      } else {
        return culinary::Status::InvalidArgument(
            "string column '" + e.column_name() + "' in a numeric expression");
      }
      return node;
    }
    case Expr::Kind::kLiteral: {
      const Value& v = e.literal();
      node->kind = BKind::kNumLit;
      if (v.is_null()) {
        node->lit_is_null = true;
      } else if (auto num = v.AsNumeric(); num.has_value()) {
        node->f64_lit = *num;
      } else {
        return culinary::Status::InvalidArgument(
            "string literal " + v.ToString() + " in a numeric expression");
      }
      return node;
    }
    case Expr::Kind::kArith: {
      node->kind = BKind::kNumArith;
      node->arith = e.arith_op();
      CULINARY_ASSIGN_OR_RETURN(node->lhs, BindNumeric(table, *e.lhs()));
      CULINARY_ASSIGN_OR_RETURN(node->rhs, BindNumeric(table, *e.rhs()));
      return node;
    }
    default:
      return culinary::Status::InvalidArgument(
          "predicate '" + e.ToString() + "' used as a numeric value");
  }
}

/// Binds a comparison where at least one side is string-typed: only
/// `column Eq/Ne literal` is defined, and the literal resolves to a
/// dictionary code here, once, never per row.
culinary::Result<std::unique_ptr<BoundNode>> BindStringCompare(
    const Table& table, const Expr& e, const Expr& col_side,
    const Expr& lit_side) {
  if (e.cmp_op() != CmpOp::kEq && e.cmp_op() != CmpOp::kNe) {
    return culinary::Status::InvalidArgument(
        "string comparison '" + e.ToString() + "' supports only == and !=");
  }
  if (col_side.kind() != Expr::Kind::kColumn ||
      lit_side.kind() != Expr::Kind::kLiteral) {
    return culinary::Status::InvalidArgument(
        "string comparison '" + e.ToString() +
        "' must compare a column against a literal");
  }
  size_t idx;
  CULINARY_ASSIGN_OR_RETURN(const Column* col,
                            ResolveColumn(table, col_side, &idx));
  if (col->type() != DataType::kString) {
    return culinary::Status::InvalidArgument(
        "type mismatch in '" + e.ToString() + "'");
  }
  auto node = std::make_unique<BoundNode>();
  const Value& lit = lit_side.literal();
  if (lit.is_null()) {
    node->kind = BKind::kConstMask;
    node->const_value = false;  // comparing against null never selects
    return node;
  }
  if (!lit.is_string()) {
    return culinary::Status::InvalidArgument(
        "type mismatch in '" + e.ToString() + "'");
  }
  const auto* scol = static_cast<const StringColumn*>(col);
  const int32_t code = scol->FindCode(lit.as_string());
  if (code < 0) {
    // Literal absent from the dictionary: == is constant-false; != selects
    // every non-null row, i.e. the validity bitmap itself.
    if (e.cmp_op() == CmpOp::kEq) {
      node->kind = BKind::kConstMask;
      node->const_value = false;
    } else {
      node->kind = BKind::kIsNull;
      node->negate = true;
      node->valid = col->validity().words();
    }
    return node;
  }
  node->kind = BKind::kCmpCodeEq;
  node->negate = e.cmp_op() == CmpOp::kNe;
  node->codes = scol->codes();
  node->code_lit = code;
  node->valid = col->validity().words();
  return node;
}

/// Mirrors ordered comparisons when the literal is on the left: `5 < col`
/// is bound as `col > 5`.
CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

culinary::Result<std::unique_ptr<BoundNode>> BindColumnVsLiteral(
    const Table& table, const Expr& col_side, const Expr& lit_side,
    CmpOp op) {
  size_t idx;
  CULINARY_ASSIGN_OR_RETURN(const Column* col,
                            ResolveColumn(table, col_side, &idx));
  const Value& lit = lit_side.literal();
  auto node = std::make_unique<BoundNode>();
  if (lit.is_null()) {
    node->kind = BKind::kConstMask;
    node->const_value = false;
    return node;
  }
  node->cmp = op;
  node->valid = col->validity().words();
  if (col->type() == DataType::kInt64) {
    node->i64 = static_cast<const Int64Column*>(col)->data();
    if (lit.is_int()) {
      node->kind = BKind::kCmpI64Lit;
      node->i64_lit = lit.as_int();
    } else {
      node->kind = BKind::kCmpI64AsF64Lit;
      node->f64_lit = lit.as_double();
    }
  } else {
    node->kind = BKind::kCmpF64Lit;
    node->f64 = static_cast<const DoubleColumn*>(col)->data();
    node->f64_lit = *lit.AsNumeric();
  }
  return node;
}

culinary::Result<std::unique_ptr<BoundNode>> BindCompare(const Table& table,
                                                         const Expr& e) {
  const Expr& l = *e.lhs();
  const Expr& r = *e.rhs();
  auto is_string_side = [&](const Expr& side) -> bool {
    if (side.kind() == Expr::Kind::kLiteral) {
      return side.literal().is_string();
    }
    if (side.kind() == Expr::Kind::kColumn) {
      auto idx = table.schema().FieldIndex(side.column_name());
      return idx.has_value() &&
             table.schema().field(*idx).type == DataType::kString;
    }
    return false;
  };
  if (is_string_side(l) || is_string_side(r)) {
    if (l.kind() == Expr::Kind::kColumn) return BindStringCompare(table, e, l, r);
    return BindStringCompare(table, e, r, l);
  }
  // Typed fast path: numeric column vs numeric literal (either order).
  const bool col_lit = l.kind() == Expr::Kind::kColumn &&
                       r.kind() == Expr::Kind::kLiteral;
  const bool lit_col = l.kind() == Expr::Kind::kLiteral &&
                       r.kind() == Expr::Kind::kColumn;
  if (col_lit) return BindColumnVsLiteral(table, l, r, e.cmp_op());
  if (lit_col) return BindColumnVsLiteral(table, r, l, FlipCmp(e.cmp_op()));
  // Generic path: evaluate both sides as numeric blocks and compare.
  auto node = std::make_unique<BoundNode>();
  node->kind = BKind::kCmpGeneric;
  node->cmp = e.cmp_op();
  CULINARY_ASSIGN_OR_RETURN(node->lhs, BindNumeric(table, l));
  CULINARY_ASSIGN_OR_RETURN(node->rhs, BindNumeric(table, r));
  return node;
}

culinary::Result<std::unique_ptr<BoundNode>> BindPredicate(const Table& table,
                                                           const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kCompare:
      return BindCompare(table, e);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      auto node = std::make_unique<BoundNode>();
      node->kind = e.kind() == Expr::Kind::kAnd ? BKind::kAnd : BKind::kOr;
      CULINARY_ASSIGN_OR_RETURN(node->lhs, BindPredicate(table, *e.lhs()));
      CULINARY_ASSIGN_OR_RETURN(node->rhs, BindPredicate(table, *e.rhs()));
      return node;
    }
    case Expr::Kind::kNot: {
      auto node = std::make_unique<BoundNode>();
      node->kind = BKind::kNot;
      CULINARY_ASSIGN_OR_RETURN(node->lhs, BindPredicate(table, *e.lhs()));
      return node;
    }
    case Expr::Kind::kIsNull: {
      if (e.lhs()->kind() != Expr::Kind::kColumn) {
        return culinary::Status::InvalidArgument(
            "IS NULL applies to a column, got '" + e.lhs()->ToString() + "'");
      }
      size_t idx;
      CULINARY_ASSIGN_OR_RETURN(const Column* col,
                                ResolveColumn(table, *e.lhs(), &idx));
      auto node = std::make_unique<BoundNode>();
      node->kind = BKind::kIsNull;
      node->negate = e.is_null_negated();
      node->valid = col->validity().words();
      return node;
    }
    default:
      return NotAPredicate(e);
  }
}

// ---------------------------------------------------------------------------
// Block evaluation. One block is up to kRowsPerBlock rows starting at a
// 4096-row boundary, so its mask occupies whole uint64 words and concurrent
// blocks never touch the same word. All kernels here take block-relative
// rows [0, len) and write `out[0 .. WordsFor(len))` with tail bits zero.
// ---------------------------------------------------------------------------

struct NumBlock {
  std::array<double, kRowsPerBlock> vals;
  std::array<uint64_t, kWordsPerBlock> valid;
};

/// Fills `out` with the numeric values and validity of rows
/// [begin, begin + len) of the bound numeric node.
void EvalNum(const BoundNode& n, size_t begin, size_t len, NumBlock* out) {
  const size_t words = culinary::Bitmap::WordsFor(len);
  switch (n.kind) {
    case BKind::kNumCol: {
      if (n.i64 != nullptr) {
        const int64_t* data = n.i64 + begin;
        for (size_t i = 0; i < len; ++i) {
          out->vals[i] = static_cast<double>(data[i]);
        }
      } else {
        std::memcpy(out->vals.data(), n.f64 + begin, len * sizeof(double));
      }
      std::memcpy(out->valid.data(), n.valid + (begin >> 6),
                  words * sizeof(uint64_t));
      return;
    }
    case BKind::kNumLit: {
      std::fill(out->vals.begin(), out->vals.begin() + len, n.f64_lit);
      std::fill(out->valid.begin(), out->valid.begin() + words,
                n.lit_is_null ? uint64_t{0} : ~uint64_t{0});
      return;
    }
    case BKind::kNumArith: {
      NumBlock rhs;
      EvalNum(*n.lhs, begin, len, out);
      EvalNum(*n.rhs, begin, len, &rhs);
      switch (n.arith) {
        case Expr::ArithOp::kAdd:
          for (size_t i = 0; i < len; ++i) out->vals[i] += rhs.vals[i];
          break;
        case Expr::ArithOp::kSub:
          for (size_t i = 0; i < len; ++i) out->vals[i] -= rhs.vals[i];
          break;
        case Expr::ArithOp::kMul:
          for (size_t i = 0; i < len; ++i) out->vals[i] *= rhs.vals[i];
          break;
        case Expr::ArithOp::kDiv:
          for (size_t i = 0; i < len; ++i) out->vals[i] /= rhs.vals[i];
          break;
      }
      for (size_t w = 0; w < words; ++w) out->valid[w] &= rhs.valid[w];
      return;
    }
    default:
      // Bind never produces predicate kinds in numeric position.
      return;
  }
}

/// Fills `out[0 .. WordsFor(len))` with the selection bits of rows
/// [begin, begin + len) of the bound predicate.
void EvalMask(const BoundNode& n, size_t begin, size_t len, uint64_t* out) {
  const size_t words = culinary::Bitmap::WordsFor(len);
  switch (n.kind) {
    case BKind::kConstMask:
      kernels::FillConstant(n.const_value, 0, len, out);
      return;
    case BKind::kCmpI64Lit:
      kernels::CompareInt64Lit(n.i64 + begin, n.cmp, n.i64_lit, 0, len, out);
      kernels::AndWords(n.valid + (begin >> 6), 0, len, out);
      return;
    case BKind::kCmpF64Lit:
      kernels::CompareDoubleLit(n.f64 + begin, n.cmp, n.f64_lit, 0, len, out);
      kernels::AndWords(n.valid + (begin >> 6), 0, len, out);
      return;
    case BKind::kCmpI64AsF64Lit:
      kernels::CompareInt64AsDoubleLit(n.i64 + begin, n.cmp, n.f64_lit, 0,
                                       len, out);
      kernels::AndWords(n.valid + (begin >> 6), 0, len, out);
      return;
    case BKind::kCmpCodeEq:
      kernels::CompareCodeEq(n.codes + begin, n.code_lit, n.negate, 0, len,
                             out);
      kernels::AndWords(n.valid + (begin >> 6), 0, len, out);
      return;
    case BKind::kCmpGeneric: {
      NumBlock lhs, rhs;
      EvalNum(*n.lhs, begin, len, &lhs);
      EvalNum(*n.rhs, begin, len, &rhs);
      kernels::CompareDoubleDouble(lhs.vals.data(), rhs.vals.data(), n.cmp, 0,
                                   len, out);
      for (size_t w = 0; w < words; ++w) {
        out[w] &= lhs.valid[w] & rhs.valid[w];
      }
      return;
    }
    case BKind::kAnd:
    case BKind::kOr: {
      std::array<uint64_t, kWordsPerBlock> scratch;
      EvalMask(*n.lhs, begin, len, out);
      EvalMask(*n.rhs, begin, len, scratch.data());
      if (n.kind == BKind::kAnd) {
        kernels::AndWords(scratch.data(), 0, len, out);
      } else {
        kernels::OrWords(scratch.data(), 0, len, out);
      }
      return;
    }
    case BKind::kNot:
      EvalMask(*n.lhs, begin, len, out);
      kernels::NotWords(0, len, out);
      return;
    case BKind::kIsNull:
      kernels::IsNullMask(n.valid + (begin >> 6), n.negate, 0, len, out);
      return;
    default:
      // Bind never produces numeric kinds in predicate position.
      kernels::FillConstant(false, 0, len, out);
      return;
  }
}

size_t ResolveThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Evaluates a bound predicate over all rows: block-parallel when asked,
/// bit-identical either way (disjoint mask words per block).
Selection EvaluateBound(const BoundNode& bound, size_t num_rows,
                        const ExecOptions& options) {
  Selection sel(num_rows, false);
  uint64_t* words = sel.mutable_bits().mutable_words();
  const size_t num_blocks = (num_rows + kRowsPerBlock - 1) / kRowsPerBlock;
  auto eval_block = [&](size_t b) {
    const size_t begin = b * kRowsPerBlock;
    const size_t len = std::min(kRowsPerBlock, num_rows - begin);
    EvalMask(bound, begin, len, words + (begin >> 6));
    CULINARY_OBS_COUNT("df.expr.blocks", 1);
  };
  const size_t threads = ResolveThreads(options.num_threads);
  if (threads <= 1 || num_blocks <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) eval_block(b);
  } else {
    culinary::ThreadPool pool(std::min(threads, num_blocks));
    pool.ParallelFor(num_blocks, eval_block);
  }
  CULINARY_OBS_COUNT("df.expr.mask_evals", 1);
  return sel;
}

/// All-rows selection for terminals called without a predicate.
Selection AllRows(size_t num_rows) { return Selection(num_rows, true); }

}  // namespace

culinary::Result<Selection> EvaluateMask(const Table& table,
                                         const ExprPtr& pred,
                                         const ExecOptions& options) {
  if (pred == nullptr) {
    return culinary::Status::InvalidArgument("null expression");
  }
  CULINARY_ASSIGN_OR_RETURN(std::unique_ptr<BoundNode> bound,
                            BindPredicate(table, *pred));
  return EvaluateBound(*bound, table.num_rows(), options);
}

culinary::Result<size_t> CountWhere(const Table& table, const ExprPtr& pred,
                                    const ExecOptions& options) {
  CULINARY_ASSIGN_OR_RETURN(Selection sel,
                            EvaluateMask(table, pred, options));
  return sel.Count();
}

culinary::Result<Value> AggregateWhere(const Table& table, AggKind kind,
                                       const std::string& column,
                                       const ExprPtr& pred,
                                       const ExecOptions& options) {
  Selection sel;
  if (pred != nullptr) {
    CULINARY_ASSIGN_OR_RETURN(sel, EvaluateMask(table, pred, options));
  } else {
    sel = AllRows(table.num_rows());
  }
  if (kind == AggKind::kCount) {
    return Value::Int(static_cast<int64_t>(sel.Count()));
  }
  if (kind == AggKind::kCountDistinct) {
    return culinary::Status::InvalidArgument(
        "AggregateWhere does not support CountDistinct");
  }
  auto idx = table.schema().FieldIndex(column);
  if (!idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + column + "'");
  }
  const Column* col = table.column(*idx).get();
  kernels::NumericAggState state;
  const uint64_t* valid = col->validity().words();
  if (col->type() == DataType::kInt64) {
    kernels::AccumulateSelectedInt64(sel.bits().words(), valid,
                                     static_cast<const Int64Column*>(col)->data(),
                                     table.num_rows(), &state);
  } else if (col->type() == DataType::kDouble) {
    kernels::AccumulateSelectedDouble(
        sel.bits().words(), valid,
        static_cast<const DoubleColumn*>(col)->data(), table.num_rows(),
        &state);
  } else {
    return culinary::Status::InvalidArgument("aggregation over string column '" +
                                             column + "'");
  }
  if (state.n == 0) return Value::Null();
  switch (kind) {
    case AggKind::kSum:
      return Value::Real(state.sum);
    case AggKind::kMean:
      return Value::Real(state.sum / static_cast<double>(state.n));
    case AggKind::kMin:
      return Value::Real(state.mn);
    case AggKind::kMax:
      return Value::Real(state.mx);
    default:
      return Value::Null();  // unreachable
  }
}

culinary::Result<Table> FilterWhere(const Table& table, const ExprPtr& pred,
                                    const ExecOptions& options) {
  CULINARY_ASSIGN_OR_RETURN(Selection sel,
                            EvaluateMask(table, pred, options));
  return table.Take(sel.ToIndices());
}

namespace {

/// Per-(group, aggregation) accumulators laid out group-major in one flat
/// vector — no per-group allocation in the hot loop.
struct GroupByState {
  size_t num_aggs = 0;
  std::vector<int64_t> group_rows;            // rows per group
  std::vector<kernels::NumericAggState> agg;  // group-major, num_aggs each

  size_t AddGroup() {
    group_rows.push_back(0);
    agg.resize(agg.size() + num_aggs);
    return group_rows.size() - 1;
  }
};

}  // namespace

culinary::Result<Table> GroupByAggregateWhere(
    const Table& table, const std::string& key,
    const std::vector<Aggregation>& aggs, const ExprPtr& pred,
    const ExecOptions& options) {
  auto key_idx = table.schema().FieldIndex(key);
  if (!key_idx.has_value()) {
    return culinary::Status::NotFound("no column named '" + key + "'");
  }
  const Column* key_col = table.column(*key_idx).get();
  if (key_col->type() == DataType::kDouble) {
    return culinary::Status::InvalidArgument(
        "GroupByAggregateWhere keys must be string or int64");
  }

  // Resolve aggregation sources. kCount ignores values (and may name no
  // column); everything else needs a numeric source.
  struct AggSource {
    const int64_t* i64 = nullptr;
    const double* f64 = nullptr;
    const uint64_t* valid = nullptr;
  };
  std::vector<AggSource> sources(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCountDistinct) {
      return culinary::Status::InvalidArgument(
          "GroupByAggregateWhere does not support CountDistinct");
    }
    if (aggs[a].kind == AggKind::kCount && aggs[a].column.empty()) continue;
    auto idx = table.schema().FieldIndex(aggs[a].column);
    if (!idx.has_value()) {
      return culinary::Status::NotFound("no column named '" + aggs[a].column +
                                        "'");
    }
    if (aggs[a].kind == AggKind::kCount) continue;
    const Column* col = table.column(*idx).get();
    if (col->type() == DataType::kString) {
      return culinary::Status::InvalidArgument(
          "aggregation over string column '" + aggs[a].column + "'");
    }
    sources[a].valid = col->validity().words();
    if (col->type() == DataType::kInt64) {
      sources[a].i64 = static_cast<const Int64Column*>(col)->data();
    } else {
      sources[a].f64 = static_cast<const DoubleColumn*>(col)->data();
    }
  }

  Selection sel;
  if (pred != nullptr) {
    CULINARY_ASSIGN_OR_RETURN(sel, EvaluateMask(table, pred, options));
  } else {
    sel = AllRows(table.num_rows());
  }

  GroupByState state;
  state.num_aggs = aggs.size();
  const uint64_t* key_valid = key_col->validity().words();
  auto key_is_null = [&](size_t r) {
    return ((key_valid[r >> 6] >> (r & 63)) & 1) == 0;
  };

  auto accumulate_row = [&](size_t gid, size_t r) {
    ++state.group_rows[gid];
    kernels::NumericAggState* accum = state.agg.data() + gid * state.num_aggs;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSource& src = sources[a];
      if (src.valid == nullptr) continue;  // kCount: rows only
      if (((src.valid[r >> 6] >> (r & 63)) & 1) == 0) continue;
      accum[a].Accumulate(src.i64 != nullptr
                              ? static_cast<double>(src.i64[r])
                              : src.f64[r]);
    }
  };

  // Key bookkeeping: group ids are assigned in first-seen (selected-row)
  // order, which is exactly the order `GroupByAggregate` over the filtered
  // table would produce. The null-key group is tracked separately.
  int64_t null_gid = -1;
  std::vector<int64_t> group_key_i64;     // int64 keys, by gid
  std::vector<int32_t> group_key_code;    // string keys (dict codes), by gid
  const bool string_key = key_col->type() == DataType::kString;

  if (string_key) {
    const auto* scol = static_cast<const StringColumn*>(key_col);
    const int32_t* codes = scol->codes();
    // Dictionary codes are dense, so the key "hash" is a flat array lookup.
    std::vector<int64_t> gid_of_code(scol->dictionary_size(), -1);
    sel.ForEachRow([&](size_t r) {
      int64_t gid;
      if (key_is_null(r)) {
        if (null_gid < 0) {
          null_gid = static_cast<int64_t>(state.AddGroup());
          group_key_code.push_back(-1);
          group_key_i64.push_back(0);
        }
        gid = null_gid;
      } else {
        int64_t& slot = gid_of_code[static_cast<size_t>(codes[r])];
        if (slot < 0) {
          slot = static_cast<int64_t>(state.AddGroup());
          group_key_code.push_back(codes[r]);
          group_key_i64.push_back(0);
        }
        gid = slot;
      }
      accumulate_row(static_cast<size_t>(gid), r);
    });
  } else {
    const int64_t* data = static_cast<const Int64Column*>(key_col)->data();
    kernels::FlatGroupIndex index;
    // The flat index assigns dense ids in first-insertion order, but the
    // null group must claim its slot in row order too, so group ids are
    // remapped through `gid_of_hash`.
    std::vector<int64_t> gid_of_hash;
    sel.ForEachRow([&](size_t r) {
      int64_t gid;
      if (key_is_null(r)) {
        if (null_gid < 0) {
          null_gid = static_cast<int64_t>(state.AddGroup());
          group_key_code.push_back(-1);
          group_key_i64.push_back(0);
        }
        gid = null_gid;
      } else {
        const int32_t hid = index.GetOrAdd(data[r]);
        if (static_cast<size_t>(hid) == gid_of_hash.size()) {
          gid_of_hash.push_back(static_cast<int64_t>(state.AddGroup()));
          group_key_code.push_back(0);
          group_key_i64.push_back(data[r]);
        }
        gid = gid_of_hash[static_cast<size_t>(hid)];
      }
      accumulate_row(static_cast<size_t>(gid), r);
    });
  }

  // Output schema mirrors GroupByAggregate: key field first, then one
  // column per aggregation (counts are int64, numeric aggregates double).
  std::vector<Field> fields;
  fields.push_back(table.schema().field(*key_idx));
  for (const Aggregation& agg : aggs) {
    DataType t =
        agg.kind == AggKind::kCount ? DataType::kInt64 : DataType::kDouble;
    fields.push_back({agg.output_name, t});
  }
  CULINARY_ASSIGN_OR_RETURN(Table out, Table::Make(Schema(std::move(fields))));
  const size_t num_groups = state.group_rows.size();
  out.Reserve(num_groups);
  const auto* scol =
      string_key ? static_cast<const StringColumn*>(key_col) : nullptr;
  std::vector<Value> row;
  for (size_t g = 0; g < num_groups; ++g) {
    row.clear();
    if (static_cast<int64_t>(g) == null_gid) {
      row.push_back(Value::Null());
    } else if (string_key) {
      row.push_back(Value::Str(std::string(scol->dict_at(group_key_code[g]))));
    } else {
      row.push_back(Value::Int(group_key_i64[g]));
    }
    const kernels::NumericAggState* accum =
        state.agg.data() + g * state.num_aggs;
    for (size_t a = 0; a < aggs.size(); ++a) {
      switch (aggs[a].kind) {
        case AggKind::kCount:
          row.push_back(Value::Int(state.group_rows[g]));
          break;
        case AggKind::kSum:
        case AggKind::kMean:
        case AggKind::kMin:
        case AggKind::kMax: {
          const kernels::NumericAggState& s = accum[a];
          if (s.n == 0) {
            row.push_back(Value::Null());
          } else if (aggs[a].kind == AggKind::kSum) {
            row.push_back(Value::Real(s.sum));
          } else if (aggs[a].kind == AggKind::kMean) {
            row.push_back(Value::Real(s.sum / static_cast<double>(s.n)));
          } else if (aggs[a].kind == AggKind::kMin) {
            row.push_back(Value::Real(s.mn));
          } else {
            row.push_back(Value::Real(s.mx));
          }
          break;
        }
        case AggKind::kCountDistinct:
          break;  // rejected above
      }
    }
    CULINARY_RETURN_IF_ERROR(out.AppendRow(row));
  }
  CULINARY_OBS_COUNT("df.expr.fused_groupby", 1);
  return out;
}

}  // namespace culinary::df
