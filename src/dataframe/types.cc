#include "dataframe/types.h"

#include "common/string_util.h"

namespace culinary::df {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::optional<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

std::optional<double> Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  return std::nullopt;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::string s = culinary::FormatDouble(as_double(), 6);
    // Trim trailing zeros but keep one decimal digit for readability.
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.push_back('0');
    return s;
  }
  return as_string();
}

}  // namespace culinary::df
