#ifndef CULINARYLAB_DATAFRAME_KERNELS_H_
#define CULINARYLAB_DATAFRAME_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitmap.h"

namespace culinary::df::kernels {

/// Comparison operators understood by the mask kernels.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Rows per evaluation block: 64 words of mask, so concurrent blocks write
/// disjoint uint64 words and parallel evaluation is race-free and bit-exact
/// without any merge step.
constexpr size_t kRowsPerBlock = 4096;
static_assert(kRowsPerBlock % culinary::Bitmap::kBitsPerWord == 0,
              "blocks must cover whole mask words");

// ---------------------------------------------------------------------------
// Mask kernels. Each fills bits [begin, end) of `out`, a word array indexed
// from row 0. `begin` must be a multiple of 64 (block alignment); bits at
// positions >= `end` in the last touched word are written as zero, so the
// whole-word consumers (popcount, AND/OR) never see garbage.
// ---------------------------------------------------------------------------

/// data[i] <op> lit over an int64 column, exact integer comparison.
void CompareInt64Lit(const int64_t* data, CmpOp op, int64_t lit, size_t begin,
                     size_t end, uint64_t* out);

/// data[i] <op> lit over a double column (IEEE semantics: NaN compares
/// false for everything except Ne).
void CompareDoubleLit(const double* data, CmpOp op, double lit, size_t begin,
                      size_t end, uint64_t* out);

/// static_cast<double>(data[i]) <op> lit — an int64 column against a real
/// literal, matching `Value::AsNumeric` widening.
void CompareInt64AsDoubleLit(const int64_t* data, CmpOp op, double lit,
                             size_t begin, size_t end, uint64_t* out);

/// lhs[i] <op> rhs[i] over two double runs (the generic numeric path).
void CompareDoubleDouble(const double* lhs, const double* rhs, CmpOp op,
                         size_t begin, size_t end, uint64_t* out);

/// codes[i] == code (or != when `negate`) over a dictionary column. The
/// string literal is resolved to `code` once by the caller; rows compare as
/// int32, never as strings. Null rows hold code -1 and the caller ANDs
/// validity afterwards. Dispatches to the AVX2 kernel when the binary was
/// built with CULINARYLAB_AVX2 and the CPU has it; otherwise scalar. Both
/// paths produce identical mask words (the comparison is exact integer
/// equality — there is nothing to reassociate), so dispatch never changes
/// results, only speed.
void CompareCodeEq(const int32_t* codes, int32_t code, bool negate,
                   size_t begin, size_t end, uint64_t* out);

/// The portable reference implementation of CompareCodeEq. Always
/// available; exposed so tests can diff the AVX2 path against it directly.
/// Like all kernels here, `begin` must be a multiple of 64: mask words are
/// written wholesale with bit 0 of out[begin/64] meaning row `begin`.
void CompareCodeEqScalar(const int32_t* codes, int32_t code, bool negate,
                         size_t begin, size_t end, uint64_t* out);

/// AVX2 CompareCodeEq: eight 8-lane compare+movemask chunks per 64-row
/// word. Returns false without touching `out` when the binary lacks the
/// kernel (built without CULINARYLAB_AVX2) or the CPU lacks AVX2 — the
/// caller falls back to scalar. The sub-word tail past the last full
/// 64-row block is filled by the scalar loop either way, with bits past
/// `end` zeroed. Requires 64-aligned `begin` (see CompareCodeEqScalar).
bool CompareCodeEqAvx2(const int32_t* codes, int32_t code, bool negate,
                       size_t begin, size_t end, uint64_t* out);

/// Every bit in [begin, end) set to `value` (constant-true / constant-false
/// predicates, e.g. a dictionary literal absent from the dictionary).
void FillConstant(bool value, size_t begin, size_t end, uint64_t* out);

/// out &= src over the words covering [begin, end) — e.g. ANDing a
/// column's validity into a freshly computed comparison mask.
void AndWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out);

/// out |= src over the words covering [begin, end).
void OrWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out);

/// Copies src's words covering [begin, end) into out, zeroing tail bits.
void CopyWords(const uint64_t* src, size_t begin, size_t end, uint64_t* out);

/// out = ~out over [begin, end), re-zeroing bits past `end`.
void NotWords(size_t begin, size_t end, uint64_t* out);

/// Null mask from a validity run: bit set iff the row is null (or non-null
/// when `negate`, i.e. IS NOT NULL).
void IsNullMask(const uint64_t* valid, bool negate, size_t begin, size_t end,
                uint64_t* out);

// ---------------------------------------------------------------------------
// Terminal kernels. These consume a finished selection mask serially in row
// order, which keeps floating-point accumulation bit-identical to the eager
// row loop and independent of how many threads built the mask.
// ---------------------------------------------------------------------------

/// Row-order numeric accumulator mirroring the eager aggregation loop in
/// ops.cc exactly (same operation order, same min/max idiom).
struct NumericAggState {
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  int64_t n = 0;

  void Accumulate(double v) {
    // std::min/std::max, not hand-rolled ternaries: the eager loop uses
    // them, and their NaN behavior (keep the first argument) must carry
    // over bit-for-bit.
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++n;
  }
};

/// Accumulates `data[row]` for every row selected in `sel` whose validity
/// bit is set, ascending row order. `sel` and `valid` are word runs covering
/// `num_rows` rows.
void AccumulateSelectedDouble(const uint64_t* sel, const uint64_t* valid,
                              const double* data, size_t num_rows,
                              NumericAggState* state);
void AccumulateSelectedInt64(const uint64_t* sel, const uint64_t* valid,
                             const int64_t* data, size_t num_rows,
                             NumericAggState* state);

/// Appends every non-null value as double in row order (the ToDoubleVector
/// hot loop: one word test per 64 rows instead of a boxed Value per cell).
void GatherNonNullAsDouble(const uint64_t* valid, const double* data,
                           size_t num_rows, std::vector<double>* out);
void GatherNonNullAsDouble(const uint64_t* valid, const int64_t* data,
                           size_t num_rows, std::vector<double>* out);

// ---------------------------------------------------------------------------
// Group index.
// ---------------------------------------------------------------------------

/// Flat open-addressing map from int64 key to a dense group id assigned in
/// first-insertion order. Power-of-two capacity, linear probing, splitmix64
/// finalizer — no per-node allocation, no std::string keys, built for the
/// group-by inner loop.
class FlatGroupIndex {
 public:
  /// `expected_keys` pre-sizes the table (grows automatically regardless).
  explicit FlatGroupIndex(size_t expected_keys = 0);

  /// Dense id of `key`, inserting it with the next id when unseen.
  int32_t GetOrAdd(int64_t key);

  /// Dense id of `key`, or -1 when unseen.
  int32_t Find(int64_t key) const;

  /// Number of distinct keys.
  size_t size() const { return keys_.size(); }

  /// Key of group `gid` (ids are dense: 0 <= gid < size()).
  int64_t key(int32_t gid) const { return keys_[static_cast<size_t>(gid)]; }

 private:
  static uint64_t HashKey(uint64_t x) {
    // splitmix64 finalizer: full avalanche in three shift-xor-multiplies.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void Rehash(size_t new_capacity);

  std::vector<int64_t> slot_keys_;
  std::vector<int32_t> slot_gids_;  // -1 = empty slot
  std::vector<int64_t> keys_;       // gid -> key
  size_t capacity_mask_ = 0;
};

}  // namespace culinary::df::kernels

#endif  // CULINARYLAB_DATAFRAME_KERNELS_H_
