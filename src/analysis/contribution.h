#ifndef CULINARYLAB_ANALYSIS_CONTRIBUTION_H_
#define CULINARYLAB_ANALYSIS_CONTRIBUTION_H_

#include <vector>

#include "analysis/pairing.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// The contribution χ_i of one ingredient to a cuisine's flavor sharing
/// (paper §IV.C): the percentage change in the cuisine's food-pairing score
/// in response to removing the ingredient from the cuisine.
///
/// Sign convention: χ_i > 0 means the ingredient *raises* N̄_s (removing it
/// lowers the score); χ_i < 0 means it pulls N̄_s down.
struct IngredientContribution {
  flavor::IngredientId id = flavor::kInvalidIngredient;
  /// χ_i = 100 · (N̄_s − N̄_s^{(−i)}) / |N̄_s|.
  double chi = 0.0;
};

/// N̄_s of the cuisine with ingredient `id` removed from every recipe.
/// Recipes reduced below two ingredients stop contributing to the average
/// (they can no longer form pairs). Computed incrementally: only recipes
/// containing `id` are re-scored.
double CuisineMeanPairingWithout(const PairingCache& cache,
                                 const recipe::Cuisine& cuisine,
                                 flavor::IngredientId id);

/// χ for one ingredient.
double IngredientChi(const PairingCache& cache, const recipe::Cuisine& cuisine,
                     flavor::IngredientId id);

/// χ for every ingredient of the cuisine, sorted by descending χ. Each
/// ingredient's leave-one-out re-score is independent, so the sweep fans
/// out across `options.num_threads` workers; per-ingredient results land in
/// index-fixed slots, making the output identical for any thread count.
///
/// When `options.cancel` / `options.deadline` stops the sweep, the returned
/// list is incomplete (skipped ingredients appear with χ = 0) and
/// `*sweep_status` — when provided — carries `kCancelled` /
/// `kDeadlineExceeded`; it is OK otherwise.
std::vector<IngredientContribution> AllContributions(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const AnalysisOptions& options = {},
    culinary::Status* sweep_status = nullptr);

/// Top `k` contributors. With `positive` true, the ingredients raising N̄_s
/// the most (Fig 5(a): cuisines with uniform pairing); otherwise the ones
/// lowering it the most (Fig 5(b): contrasting cuisines). Lifecycle stops
/// surface through `sweep_status` exactly as in `AllContributions`.
std::vector<IngredientContribution> TopContributors(
    const PairingCache& cache, const recipe::Cuisine& cuisine, size_t k,
    bool positive, const AnalysisOptions& options = {},
    culinary::Status* sweep_status = nullptr);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_CONTRIBUTION_H_
