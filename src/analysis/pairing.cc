#include "analysis/pairing.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/obs.h"

namespace culinary::analysis {

namespace {

/// Recipes are clipped to ≈30 ingredients by the corpus generator; scoring
/// keeps the sorted dense ids on the stack below this bound.
constexpr size_t kMaxStackRecipe = 64;

/// Ingredient-universe bound (in bits) for the stack bitmap below. Real
/// cuisines run a few hundred unique ingredients; caches beyond this fall
/// back to comparison deduplication.
constexpr size_t kMaxBitmapBits = 2048;

/// Collapses duplicate dense indices (each in [0, universe)) in place,
/// preserving first-occurrence order; returns the deduplicated count. One
/// test-and-set pass over a stack bitmap — duplicates are rare in real
/// recipes, so the branch predicts well.
size_t DedupResolved(size_t universe, int* ids, size_t m) {
  if (universe > kMaxBitmapBits) {
    std::sort(ids, ids + m);
    return static_cast<size_t>(std::unique(ids, ids + m) - ids);
  }
  uint64_t words[kMaxBitmapBits / 64];
  const size_t num_words = (universe + 63) / 64;
  for (size_t w = 0; w < num_words; ++w) words[w] = 0;
  size_t out = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t v = static_cast<size_t>(ids[i]);
    const uint64_t mask = uint64_t{1} << (v & 63);
    if ((words[v >> 6] & mask) == 0) {
      words[v >> 6] |= mask;
      ids[out++] = ids[i];
    }
  }
  return out;
}

/// Σ_{i<j} shared(ids[i], ids[j]) over *distinct* dense indices (any
/// order), plus the pair-count normalization. Reads the full symmetric
/// matrix, so the loop carries no per-pair branch, swap, or sort
/// prerequisite — every iteration is a multiply-free row read that the
/// out-of-order core can keep in flight. (An earlier triangle-walk variant
/// had to sort first; sorting a random ~10-element recipe mispredicts on
/// most comparisons and cost more than the reads themselves.)
double ScoreDistinctDense(const PairingCache& cache, const int* ids,
                          size_t m) {
  if (m < 2) return 0.0;
  const uint16_t* shared = cache.shared_matrix().data();
  const size_t n = cache.num_ingredients();
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < m; ++i) {
    const uint16_t* row = shared + static_cast<size_t>(ids[i]) * n;
    for (size_t j = i + 1; j < m; ++j) {
      total += row[static_cast<size_t>(ids[j])];
    }
  }
  return 2.0 * static_cast<double>(total) /
         (static_cast<double>(m) * static_cast<double>(m - 1));
}

/// Recipe-block granularity for the cuisine sweep. Fixed (never derived
/// from the thread count) so per-block partial statistics merge to
/// bit-identical results for any `num_threads`.
constexpr size_t kRecipesPerBlock = 1024;

}  // namespace

PairingCache::PairingCache(const flavor::FlavorRegistry& registry,
                           const std::vector<flavor::IngredientId>& ingredients,
                           const AnalysisOptions& options)
    : ids_(ingredients) {
  const size_t n = ids_.size();
  dense_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dense_[ids_[i]] = static_cast<int>(i);
  }
  // Pack every profile into a bitset over the registry's molecule universe
  // (grown to cover stray ids from hand-built profiles). Unknown
  // ingredients get empty bitsets.
  static const flavor::FlavorProfile kEmpty;
  bitsets_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const flavor::Ingredient* ing = registry.Find(ids_[i]);
    bitsets_.push_back(flavor::CompoundBitset::FromProfile(
        ing != nullptr ? ing->profile : kEmpty, registry.num_molecules()));
  }
  tri_.assign(n < 2 ? 0 : n * (n - 1) / 2, 0);
  full_.assign(n * n, 0);
  if (n < 2) return;
  CULINARY_OBS_SPAN(build_span, "pairing.cache_build", "pairing");
  const auto build_start = std::chrono::steady_clock::now();
  AnalysisOptions build_options = options;
  build_options.trace_label = "pairing.cache_build";
  // A half-built cache is unusable, so the build is an atomic unit: strip
  // the lifecycle knobs rather than honor a stop mid-construction. Callers
  // stop *between* sweeps, and the build is cheap next to the ensembles.
  build_options.cancel = {};
  build_options.deadline = {};
  // Each row of the triangle is an independent popcount sweep; rows write
  // disjoint triangle ranges, and each symmetric-matrix cell (x, y) is
  // written only by the block handling min(x, y), so the parallel build is
  // race-free and, being a pure function of the profiles, thread-count
  // invariant.
  ForEachBlock(n - 1, build_options, [this, n](size_t a) {
    const flavor::CompoundBitset& fa = bitsets_[a];
    uint16_t* row = tri_.data() + TriIndex(a, a + 1);
    size_t saturated = 0;
    for (size_t b = a + 1; b < n; ++b) {
      // uint16 storage saturates instead of wrapping: a shared count above
      // 65,535 (only reachable with synthetic wide profiles) clamps to
      // UINT16_MAX rather than silently aliasing a small count.
      const size_t exact = fa.IntersectionCount(bitsets_[b]);
      const uint16_t shared =
          static_cast<uint16_t>(std::min<size_t>(exact, UINT16_MAX));
      saturated += exact > UINT16_MAX ? 1 : 0;
      row[b - a - 1] = shared;
      full_[a * n + b] = shared;
      full_[b * n + a] = shared;
    }
    if (saturated != 0) {
      CULINARY_OBS_COUNT("pairing.saturated_pairs", saturated);
    }
  });
  CULINARY_OBS_COUNT("pairing.cache_builds", 1);
  CULINARY_OBS_COUNT("pairing.pairs_computed", n * (n - 1) / 2);
  CULINARY_OBS_GAUGE_SET("pairing.cache_ingredients", static_cast<double>(n));
  CULINARY_OBS_OBSERVE("pairing.cache_build_ms",
                       (std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - build_start)
                            .count()));
}

culinary::Result<PairingCache> PairingCache::FromPrecomputed(
    const flavor::FlavorRegistry& registry,
    std::vector<flavor::IngredientId> ingredients, const uint16_t* triangle,
    size_t triangle_len) {
  const size_t n = ingredients.size();
  const size_t expected = n < 2 ? 0 : n * (n - 1) / 2;
  // kFailedPrecondition, not kInvalidArgument: a mismatched triangle means
  // the precomputed data does not belong to these ingredients (a truncated
  // or stale snapshot section), which the snapshot degradation policy must
  // classify as corruption (quarantine + rebuild) rather than a programming
  // error. Validated before the memcpy below — a short buffer must never be
  // read past its end.
  if (triangle_len != expected) {
    return culinary::Status::FailedPrecondition(
        "precomputed triangle has " + std::to_string(triangle_len) +
        " entries; " + std::to_string(n) + " ingredients need " +
        std::to_string(expected));
  }
  if (expected > 0 && triangle == nullptr) {
    return culinary::Status::FailedPrecondition(
        "precomputed triangle is null for a non-empty cache");
  }
  // The triangle was computed over these ids against this registry; an id
  // outside the registry's slot range proves the pair never matched (e.g. a
  // pairing section spliced onto a smaller registry) and would silently
  // score everything against an empty profile.
  const auto slots = static_cast<flavor::IngredientId>(
      registry.num_ingredient_slots());
  for (size_t i = 0; i < n; ++i) {
    const flavor::IngredientId id = ingredients[i];
    if (id < 0 || id >= slots) {
      return culinary::Status::FailedPrecondition(
          "precomputed triangle covers ingredient id " + std::to_string(id) +
          " outside the registry's " + std::to_string(slots) + " slots");
    }
  }
  PairingCache cache;
  cache.ids_ = std::move(ingredients);
  cache.dense_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cache.dense_[cache.ids_[i]] = static_cast<int>(i);
  }
  static const flavor::FlavorProfile kEmpty;
  cache.bitsets_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const flavor::Ingredient* ing = registry.Find(cache.ids_[i]);
    cache.bitsets_.push_back(flavor::CompoundBitset::FromProfile(
        ing != nullptr ? ing->profile : kEmpty, registry.num_molecules()));
  }
  cache.tri_.resize(expected);
  if (expected > 0) {
    std::memcpy(cache.tri_.data(), triangle, expected * sizeof(uint16_t));
  }
  // Mirror the triangle into the full symmetric matrix — sequential stores,
  // no popcounts.
  cache.full_.assign(n * n, 0);
  size_t k = 0;
  for (size_t a = 0; a + 1 < n; ++a) {
    for (size_t b = a + 1; b < n; ++b, ++k) {
      const uint16_t shared = cache.tri_[k];
      cache.full_[a * n + b] = shared;
      cache.full_[b * n + a] = shared;
    }
  }
  CULINARY_OBS_COUNT("pairing.cache_rehydrated", 1);
  return cache;
}

int PairingCache::DenseIndex(flavor::IngredientId id) const {
  auto it = dense_.find(id);
  return it == dense_.end() ? -1 : it->second;
}

uint32_t PairingCache::Shared(flavor::IngredientId a,
                              flavor::IngredientId b) const {
  int da = DenseIndex(a);
  int db = DenseIndex(b);
  if (da < 0 || db < 0 || da == db) return 0;
  return SharedByDense(static_cast<size_t>(da), static_cast<size_t>(db));
}

double RecipePairingScoreDense(const PairingCache& cache,
                               const std::vector<int>& dense_ids) {
  // Keep the resolved (non-negative) ids.
  int stack[kMaxStackRecipe];
  std::vector<int> heap;
  int* resolved = stack;
  if (dense_ids.size() > kMaxStackRecipe) {
    heap.resize(dense_ids.size());
    resolved = heap.data();
  }
  size_t m = 0;
  for (int d : dense_ids) {
    if (d >= 0) resolved[m++] = d;
  }
  // A recipe is an ingredient *set*: collapse duplicates so self-pairs
  // neither score nor inflate the normalization.
  m = DedupResolved(cache.num_ingredients(), resolved, m);
  return ScoreDistinctDense(cache, resolved, m);
}

double RecipePairingScoreDistinct(const PairingCache& cache,
                                  const int* dense_ids, size_t m) {
  return ScoreDistinctDense(cache, dense_ids, m);
}

double RecipePairingScore(const PairingCache& cache,
                          const std::vector<flavor::IngredientId>& ids) {
  int stack[kMaxStackRecipe];
  std::vector<int> heap;
  int* resolved = stack;
  if (ids.size() > kMaxStackRecipe) {
    heap.resize(ids.size());
    resolved = heap.data();
  }
  size_t m = 0;
  for (flavor::IngredientId id : ids) {
    int d = cache.DenseIndex(id);
    if (d >= 0) resolved[m++] = d;
  }
  m = DedupResolved(cache.num_ingredients(), resolved, m);
  return ScoreDistinctDense(cache, resolved, m);
}

culinary::RunningStats CuisinePairingStats(const PairingCache& cache,
                                           const recipe::Cuisine& cuisine,
                                           const AnalysisOptions& options) {
  const std::vector<recipe::Recipe>& recipes = cuisine.recipes();
  const size_t num_blocks =
      (recipes.size() + kRecipesPerBlock - 1) / kRecipesPerBlock;
  std::vector<culinary::RunningStats> partials(num_blocks);
  AnalysisOptions sweep_options = options;
  sweep_options.trace_label = "pairing.cuisine_stats";
  // The real-recipe mean must never be computed from a subset — a partial
  // mean would silently skew every z-score downstream — so this sweep is
  // also an atomic unit; lifecycle stops apply between sweeps.
  sweep_options.cancel = {};
  sweep_options.deadline = {};
  CULINARY_OBS_COUNT("pairing.recipes_scored", recipes.size());
  ForEachBlock(num_blocks, sweep_options, [&](size_t block) {
    const size_t begin = block * kRecipesPerBlock;
    const size_t end = std::min(recipes.size(), begin + kRecipesPerBlock);
    culinary::RunningStats stats;
    for (size_t i = begin; i < end; ++i) {
      const recipe::Recipe& r = recipes[i];
      if (!r.IsPairable()) continue;
      stats.Add(RecipePairingScore(cache, r.ingredients));
    }
    partials[block] = stats;
  });
  culinary::RunningStats stats;
  for (const culinary::RunningStats& partial : partials) stats.Merge(partial);
  return stats;
}

double CuisineMeanPairing(const PairingCache& cache,
                          const recipe::Cuisine& cuisine,
                          const AnalysisOptions& options) {
  return CuisinePairingStats(cache, cuisine, options).mean();
}

}  // namespace culinary::analysis
