#include "analysis/pairing.h"

#include <utility>

namespace culinary::analysis {

PairingCache::PairingCache(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& ingredients)
    : ids_(ingredients) {
  const size_t n = ids_.size();
  dense_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dense_[ids_[i]] = static_cast<int>(i);
  }
  // Collect borrowed profiles once (empty profile for unknown ids).
  static const flavor::FlavorProfile& kEmpty = *new flavor::FlavorProfile();
  std::vector<const flavor::FlavorProfile*> profiles(n, &kEmpty);
  for (size_t i = 0; i < n; ++i) {
    const flavor::Ingredient* ing = registry.Find(ids_[i]);
    if (ing != nullptr) profiles[i] = &ing->profile;
  }
  tri_.assign(n < 2 ? 0 : n * (n - 1) / 2, 0);
  for (size_t a = 0; a + 1 < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      tri_[TriIndex(a, b)] =
          static_cast<uint32_t>(profiles[a]->SharedCompounds(*profiles[b]));
    }
  }
}

size_t PairingCache::TriIndex(size_t a, size_t b) const {
  // Requires a < b < n. Row-major strict upper triangle:
  // offset(a) = a*n - a(a+1)/2, index = offset(a) + (b - a - 1).
  const size_t n = ids_.size();
  return a * n - a * (a + 1) / 2 + (b - a - 1);
}

int PairingCache::DenseIndex(flavor::IngredientId id) const {
  auto it = dense_.find(id);
  return it == dense_.end() ? -1 : it->second;
}

uint32_t PairingCache::SharedByDense(size_t a, size_t b) const {
  if (a == b) return 0;
  if (a > b) std::swap(a, b);
  return tri_[TriIndex(a, b)];
}

uint32_t PairingCache::Shared(flavor::IngredientId a,
                              flavor::IngredientId b) const {
  int da = DenseIndex(a);
  int db = DenseIndex(b);
  if (da < 0 || db < 0 || da == db) return 0;
  return SharedByDense(static_cast<size_t>(da), static_cast<size_t>(db));
}

double RecipePairingScoreDense(const PairingCache& cache,
                               const std::vector<int>& dense_ids) {
  const size_t n = dense_ids.size();
  if (n < 2) return 0.0;
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    if (dense_ids[i] < 0) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (dense_ids[j] < 0) continue;
      total += cache.SharedByDense(static_cast<size_t>(dense_ids[i]),
                                   static_cast<size_t>(dense_ids[j]));
    }
  }
  return 2.0 * static_cast<double>(total) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double RecipePairingScore(const PairingCache& cache,
                          const std::vector<flavor::IngredientId>& ids) {
  std::vector<int> dense;
  dense.reserve(ids.size());
  for (flavor::IngredientId id : ids) dense.push_back(cache.DenseIndex(id));
  return RecipePairingScoreDense(cache, dense);
}

culinary::RunningStats CuisinePairingStats(const PairingCache& cache,
                                           const recipe::Cuisine& cuisine) {
  culinary::RunningStats stats;
  for (const recipe::Recipe& r : cuisine.recipes()) {
    if (!r.IsPairable()) continue;
    stats.Add(RecipePairingScore(cache, r.ingredients));
  }
  return stats;
}

double CuisineMeanPairing(const PairingCache& cache,
                          const recipe::Cuisine& cuisine) {
  return CuisinePairingStats(cache, cuisine).mean();
}

}  // namespace culinary::analysis
