#ifndef CULINARYLAB_ANALYSIS_OPTIONS_H_
#define CULINARYLAB_ANALYSIS_OPTIONS_H_

#include <cstddef>
#include <functional>

namespace culinary::analysis {

/// Execution knobs shared by every parallel analysis sweep (pairing-cache
/// construction, null-model ensembles, contribution sweeps, similarity
/// matrices).
///
/// Determinism contract: for a fixed seed, every analysis result is
/// bit-identical for any `num_threads` value. Sweeps achieve this by
/// partitioning work into blocks whose boundaries and RNG streams (see
/// `DeriveStreamSeed`) depend only on the input size — never on the thread
/// count — and by reducing per-block partials in block order on the calling
/// thread. `num_threads` therefore only decides whether the blocks run on a
/// pool or inline.
struct AnalysisOptions {
  /// Worker threads for analysis sweeps. 0 means "use hardware
  /// concurrency"; 1 degrades to the fully serial path (no pool is
  /// created).
  size_t num_threads = 0;

  /// Name under which `ForEachBlock` reports this sweep to the
  /// observability layer (trace span + per-block wall-time histogram
  /// `<label>.block_ms`). Purely diagnostic: it never influences block
  /// boundaries, RNG streams or scheduling, so the determinism contract
  /// above is unaffected. Must point at storage outliving the sweep
  /// (string literals in practice); nullptr uses "analysis.sweep".
  const char* trace_label = nullptr;
};

/// Resolves the `num_threads` knob: 0 → `std::thread::hardware_concurrency`
/// (itself clamped to at least 1); explicit requests are capped at the
/// hardware concurrency, since oversubscribing a CPU-bound sweep only adds
/// scheduling overhead and cannot change results.
size_t ResolveNumThreads(size_t num_threads);

/// Runs `body(block)` for every block in [0, num_blocks): inline on the
/// calling thread when the resolved thread count (capped at `num_blocks`)
/// is 1, otherwise across a transient `ThreadPool` via `ParallelFor`.
/// Exceptions propagate to the caller on both paths. `body` must make each
/// block's effect independent of execution order (e.g. write to
/// block-indexed slots) — that, plus an order-fixed reduction by the
/// caller, is what keeps results thread-count invariant.
void ForEachBlock(size_t num_blocks, const AnalysisOptions& options,
                  const std::function<void(size_t)>& body);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_OPTIONS_H_
