#ifndef CULINARYLAB_ANALYSIS_OPTIONS_H_
#define CULINARYLAB_ANALYSIS_OPTIONS_H_

#include <cstddef>
#include <functional>

#include "common/cancellation.h"
#include "common/status.h"

namespace culinary::analysis {

/// Execution knobs shared by every parallel analysis sweep (pairing-cache
/// construction, null-model ensembles, contribution sweeps, similarity
/// matrices).
///
/// Determinism contract: for a fixed seed, every analysis result is
/// bit-identical for any `num_threads` value. Sweeps achieve this by
/// partitioning work into blocks whose boundaries and RNG streams (see
/// `DeriveStreamSeed`) depend only on the input size — never on the thread
/// count — and by reducing per-block partials in block order on the calling
/// thread. `num_threads` therefore only decides whether the blocks run on a
/// pool or inline.
///
/// Lifecycle contract: `cancel` and `deadline` are checked cooperatively
/// before every block, on the serial and pooled paths alike. A stop never
/// tears a block — each block either runs to completion or never starts —
/// so stop latency is bounded by one block's runtime, and the set of
/// completed blocks is always well-defined (which is what makes
/// checkpoint/resume of ensembles exact; see null_models.h). Like
/// `trace_label`, neither knob ever influences block boundaries, RNG
/// streams or scheduling, so a sweep that runs to completion is
/// bit-identical with or without them.
struct AnalysisOptions {
  /// Worker threads for analysis sweeps. 0 means "use hardware
  /// concurrency"; 1 degrades to the fully serial path (no pool is
  /// created).
  size_t num_threads = 0;

  /// Name under which `ForEachBlock` reports this sweep to the
  /// observability layer (trace span + per-block wall-time histogram
  /// `<label>.block_ms`). Purely diagnostic: it never influences block
  /// boundaries, RNG streams or scheduling, so the determinism contract
  /// above is unaffected. Must point at storage outliving the sweep
  /// (string literals in practice); nullptr uses "analysis.sweep".
  const char* trace_label = nullptr;

  /// Cooperative cancellation: when the connected `CancellationSource`
  /// fires, the sweep stops scheduling blocks and `ForEachBlock` returns
  /// `kCancelled`. The default token is null (never cancels, free to
  /// check).
  culinary::CancellationToken cancel{};

  /// Wall-clock budget: once expired, the sweep stops scheduling blocks and
  /// `ForEachBlock` returns `kDeadlineExceeded`. Default is infinite.
  culinary::Deadline deadline{};

  /// True when either lifecycle knob could ever stop a sweep — the gate for
  /// paying the per-block stop check at all.
  bool stoppable() const {
    return cancel.cancellable() || deadline.has_deadline();
  }

  /// The cooperative stop verdict right now: OK, `kCancelled`, or
  /// `kDeadlineExceeded` (cancellation wins when both hold).
  culinary::Status StopStatus() const {
    return culinary::CheckStop(cancel, deadline);
  }
};

/// Resolves the `num_threads` knob: 0 → `std::thread::hardware_concurrency`
/// (itself clamped to at least 1); explicit requests are capped at the
/// hardware concurrency, since oversubscribing a CPU-bound sweep only adds
/// scheduling overhead and cannot change results.
size_t ResolveNumThreads(size_t num_threads);

/// Runs `body(block)` for every block in [0, num_blocks): inline on the
/// calling thread when the resolved thread count (capped at `num_blocks`)
/// is 1, otherwise across a transient `ThreadPool` via `ParallelFor`.
/// Exceptions propagate to the caller on both paths. `body` must make each
/// block's effect independent of execution order (e.g. write to
/// block-indexed slots) — that, plus an order-fixed reduction by the
/// caller, is what keeps results thread-count invariant.
///
/// Returns OK when every block ran. When `options.cancel` fires or
/// `options.deadline` expires mid-sweep, blocks not yet started are
/// skipped and the corresponding `kCancelled` / `kDeadlineExceeded` status
/// is returned; blocks already running finish normally, so the caller's
/// per-block outputs are each either complete or untouched.
culinary::Status ForEachBlock(size_t num_blocks, const AnalysisOptions& options,
                              const std::function<void(size_t)>& body);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_OPTIONS_H_
