#ifndef CULINARYLAB_ANALYSIS_NTUPLE_H_
#define CULINARYLAB_ANALYSIS_NTUPLE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Higher-order flavor sharing (the paper's future-work question: "What are
/// the patterns at higher order n-tuples — triples and quadruples?").
///
/// The order-k score of a recipe generalizes N_s from pairs to k-tuples:
///
///   N_s^(k)(R) = C(n_R, k)^{-1} · Σ_{|T| = k, T ⊆ R} |∩_{i ∈ T} F_i|
///
/// i.e. the mean number of flavor compounds shared by *all* members of a
/// k-subset, averaged over every k-subset of the recipe. k = 2 recovers the
/// classic pairing score.

/// N_s^(k) for one recipe. Returns 0 for recipes with fewer than k
/// ingredients or k < 2. Profiles are resolved through `registry`.
double RecipeTupleScore(const flavor::FlavorRegistry& registry,
                        const std::vector<flavor::IngredientId>& ids,
                        size_t k);

/// Mean N_s^(k) over the cuisine's recipes with at least k ingredients.
culinary::RunningStats CuisineTupleStats(const flavor::FlavorRegistry& registry,
                                         const recipe::Cuisine& cuisine,
                                         size_t k);

/// Result of the order-k uniform-random null comparison.
struct TupleComparison {
  size_t k = 0;
  double real_mean = 0.0;
  double null_mean = 0.0;
  double null_stddev = 0.0;
  int64_t null_count = 0;
  double z_score = 0.0;
};

/// Compares order-k sharing of `cuisine` against a uniform random cuisine
/// preserving ingredient set and size distribution (the paper's Random
/// Cuisine, evaluated at order k). Recipes shorter than k are skipped on
/// both sides.
culinary::Result<TupleComparison> CompareTupleAgainstRandom(
    const flavor::FlavorRegistry& registry, const recipe::Cuisine& cuisine,
    size_t k, size_t num_null_recipes = 20000, uint64_t seed = 0xC0FFEE);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_NTUPLE_H_
