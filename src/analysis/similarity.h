#ifndef CULINARYLAB_ANALYSIS_SIMILARITY_H_
#define CULINARYLAB_ANALYSIS_SIMILARITY_H_

#include <utility>
#include <vector>

#include "analysis/options.h"
#include "common/result.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Cuisine–cuisine similarity measures.
///
/// The paper frames regional cuisines as languages — "flavor molecules,
/// ingredients, and recipes are for a cuisine what letters, words, and
/// sentences are for a language". These measures quantify how close two
/// culinary "languages" are at the vocabulary (ingredient) level.
enum class CuisineSimilarity : int {
  /// Jaccard index of the unique-ingredient sets.
  kIngredientJaccard = 0,
  /// Cosine similarity of the ingredient usage-frequency vectors.
  kUsageCosine = 1,
};

/// Jaccard similarity of the two cuisines' ingredient sets (0 when both
/// are empty).
double CuisineIngredientJaccard(const recipe::Cuisine& a,
                                const recipe::Cuisine& b);

/// Cosine similarity of usage-frequency vectors over the union of
/// ingredients (0 when either cuisine is empty).
double CuisineUsageCosine(const recipe::Cuisine& a, const recipe::Cuisine& b);

/// Dispatch on the metric.
double CuisineSimilarityScore(const recipe::Cuisine& a,
                              const recipe::Cuisine& b,
                              CuisineSimilarity metric);

/// Full symmetric similarity matrix (diagonal = 1 for non-empty cuisines).
/// Rows are independent pure functions of the cuisine pair, so the upper
/// triangle fans out across `options.num_threads` workers; the result is
/// identical for any thread count.
///
/// When `options.cancel` / `options.deadline` stops the sweep,
/// `*sweep_status` — when provided — carries `kCancelled` /
/// `kDeadlineExceeded` (it is OK otherwise) and the matrix comes back
/// partially filled: a completed row is fully written, but because row i
/// also mirrors its values into column i of the rows below it, a *skipped*
/// row holds a mix of mirrored values and zeros. Callers must treat the
/// whole matrix as unusable unless the sweep status is OK. Passing nullptr
/// keeps the historical fire-and-forget signature.
std::vector<std::vector<double>> CuisineSimilarityMatrix(
    const std::vector<recipe::Cuisine>& cuisines, CuisineSimilarity metric,
    const AnalysisOptions& options = {},
    culinary::Status* sweep_status = nullptr);

/// The `k` most similar cuisines to `cuisines[target]`, best first.
/// InvalidArgument for an out-of-range target.
culinary::Result<std::vector<std::pair<recipe::Region, double>>>
NearestCuisines(const std::vector<recipe::Cuisine>& cuisines, size_t target,
                size_t k, CuisineSimilarity metric);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_SIMILARITY_H_
