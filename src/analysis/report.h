#ifndef CULINARYLAB_ANALYSIS_REPORT_H_
#define CULINARYLAB_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "recipe/database.h"
#include "robustness/error_sink.h"

namespace culinary::analysis {

/// Minimal aligned-text table renderer used by the experiment binaries to
/// print the paper's tables and figure series as plain text.
class TextTable {
 public:
  /// Column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

  /// Renders with space-aligned columns and a dashed header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an (x, y) series as a fixed-width two-column block, optionally
/// with a unicode bar sketch for quick visual inspection in terminal output.
std::string RenderSeries(const std::string& x_label, const std::string& y_label,
                         const std::vector<double>& ys, size_t first_x = 0,
                         bool with_bars = true);

/// Renders record-level ingestion accounting — total / kept / quarantined
/// records and the data-coverage fraction — plus, when `sink` is non-null
/// and non-empty, its error summary and the first few stored diagnostics.
/// Experiment drivers print this block whenever they ran on degraded data,
/// so a reader can always tell how much corpus backed the numbers.
std::string RenderIngestStats(const std::string& source_label,
                              const robustness::IngestStats& stats,
                              const robustness::ErrorSink* sink = nullptr,
                              size_t max_diagnostics = 5);

/// `RenderIngestStats` for a full recipe-database ingestion report
/// (includes row-resolution quarantines and dropped ingredient names).
std::string RenderIngestReport(const std::string& source_label,
                               const recipe::IngestReport& report,
                               const robustness::ErrorSink* sink = nullptr,
                               size_t max_diagnostics = 5);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_REPORT_H_
