#ifndef CULINARYLAB_ANALYSIS_PAIRING_H_
#define CULINARYLAB_ANALYSIS_PAIRING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/statistics.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Memoised pairwise shared-compound counts for a fixed ingredient set.
///
/// The food-pairing score N_s(R) needs |F_i ∩ F_j| for every ingredient
/// pair of every recipe — and the null models need it again for 100,000
/// synthetic recipes per model. The cache maps the cuisine's ingredient ids
/// onto dense indices [0, n) and stores the strict upper triangle of the
/// n×n shared-compound matrix, making each lookup O(1).
class PairingCache {
 public:
  /// Builds the cache for `ingredients` (typically
  /// `cuisine.unique_ingredients()`), resolving profiles via `registry`.
  /// Ids unknown to the registry get empty profiles.
  PairingCache(const flavor::FlavorRegistry& registry,
               const std::vector<flavor::IngredientId>& ingredients);

  /// Number of ingredients covered.
  size_t num_ingredients() const { return ids_.size(); }

  /// Dense index of `id`, or -1 when the cache does not cover it.
  int DenseIndex(flavor::IngredientId id) const;

  /// Ingredient id at dense index `i`.
  flavor::IngredientId IdAt(size_t i) const { return ids_[i]; }

  /// |F_a ∩ F_b| by dense indices (a != b; symmetric).
  uint32_t SharedByDense(size_t a, size_t b) const;

  /// |F_a ∩ F_b| by ingredient id; 0 when either id is uncovered.
  uint32_t Shared(flavor::IngredientId a, flavor::IngredientId b) const;

 private:
  size_t TriIndex(size_t a, size_t b) const;

  std::vector<flavor::IngredientId> ids_;
  std::unordered_map<flavor::IngredientId, int> dense_;
  std::vector<uint32_t> tri_;  ///< strict upper triangle, row-major
};

/// N_s(R) for a recipe given as dense indices into `cache`:
///   N_s = 2 / (n (n-1)) * Σ_{i<j} |F_i ∩ F_j|.
/// Returns 0 for recipes with fewer than two ingredients.
double RecipePairingScoreDense(const PairingCache& cache,
                               const std::vector<int>& dense_ids);

/// N_s(R) for a recipe given as ingredient ids (ids not covered by the
/// cache contribute empty profiles but still count towards n).
double RecipePairingScore(const PairingCache& cache,
                          const std::vector<flavor::IngredientId>& ids);

/// Distribution of N_s over the pairable recipes of `cuisine`; the mean is
/// the paper's average flavor sharing N̄_s of the cuisine.
culinary::RunningStats CuisinePairingStats(const PairingCache& cache,
                                           const recipe::Cuisine& cuisine);

/// Convenience: N̄_s of a cuisine.
double CuisineMeanPairing(const PairingCache& cache,
                          const recipe::Cuisine& cuisine);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_PAIRING_H_
