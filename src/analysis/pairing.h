#ifndef CULINARYLAB_ANALYSIS_PAIRING_H_
#define CULINARYLAB_ANALYSIS_PAIRING_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/options.h"
#include "common/result.h"
#include "common/statistics.h"
#include "flavor/bitset.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Memoised pairwise shared-compound counts for a fixed ingredient set.
///
/// The food-pairing score N_s(R) needs |F_i ∩ F_j| for every ingredient
/// pair of every recipe — and the null models need it again for 100,000
/// synthetic recipes per model. The cache maps the cuisine's ingredient ids
/// onto dense indices [0, n) and stores the strict upper triangle of the
/// n×n shared-compound matrix, making each lookup O(1).
///
/// Construction is the bitset kernel's showcase: every profile is packed
/// once into a `flavor::CompoundBitset` over the registry's molecule
/// universe, and the triangle rows are filled with popcount intersections —
/// in parallel across `options.num_threads` workers, since every entry is
/// an independent pure function of two bitsets.
class PairingCache {
 public:
  /// Builds the cache for `ingredients` (typically
  /// `cuisine.unique_ingredients()`), resolving profiles via `registry`.
  /// Ids unknown to the registry get empty profiles.
  PairingCache(const flavor::FlavorRegistry& registry,
               const std::vector<flavor::IngredientId>& ingredients,
               const AnalysisOptions& options = {});

  /// Rehydrates a cache from a previously computed strict upper triangle
  /// (the snapshot load path): the triangle and its mirror are memcpy'd
  /// rather than recomputed, and only the per-ingredient bitsets are
  /// repacked from `registry` — O(n) packing instead of O(n²) popcounts.
  /// `triangle_len` must equal n(n-1)/2 for n = `ingredients.size()`, and
  /// every id must fall inside the registry's slot range; either mismatch is
  /// kFailedPrecondition (validated *before* any copy, and classified as
  /// snapshot corruption by the degradation policy). The caller still
  /// vouches that the triangle's *values* were computed over the same
  /// ids/registry — that part is gated by snapshot checksums and the
  /// world-inputs digest.
  static culinary::Result<PairingCache> FromPrecomputed(
      const flavor::FlavorRegistry& registry,
      std::vector<flavor::IngredientId> ingredients, const uint16_t* triangle,
      size_t triangle_len);

  /// Number of ingredients covered.
  size_t num_ingredients() const { return ids_.size(); }

  /// Dense index of `id`, or -1 when the cache does not cover it.
  int DenseIndex(flavor::IngredientId id) const;

  /// Ingredient id at dense index `i`.
  flavor::IngredientId IdAt(size_t i) const { return ids_[i]; }

  /// Packed flavor profile of the ingredient at dense index `i` (empty for
  /// ids unknown to the registry). The bitsets are retained so downstream
  /// analyses can run further popcount queries without re-packing.
  const flavor::CompoundBitset& BitsetAt(size_t i) const {
    return bitsets_[i];
  }

  /// |F_a ∩ F_b| by dense indices (a != b; symmetric).
  uint32_t SharedByDense(size_t a, size_t b) const {
    if (a == b) return 0;
    if (a > b) std::swap(a, b);
    return tri_[TriIndex(a, b)];
  }

  /// |F_a ∩ F_b| by ingredient id; 0 when either id is uncovered.
  uint32_t Shared(flavor::IngredientId a, flavor::IngredientId b) const;

  /// Raw triangle offset of row `a`: for sorted dense indices a < b the
  /// shared count lives at `triangle()[RowBase(a) + b]`. Exposed so the
  /// recipe-scoring inner loop can hoist the row computation out of its
  /// O(pairs) loop.
  size_t RowBase(size_t a) const {
    const size_t n = ids_.size();
    return a * n - a * (a + 1) / 2 - a - 1;
  }

  /// Strict upper triangle of shared-compound counts, row-major. Stored as
  /// uint16_t: recipe scoring is bound by random reads into these tables,
  /// and halving them keeps a ~450-ingredient cuisine close to the fast
  /// cache levels. Counts are bounded by the smaller profile size (tens of
  /// molecules against a ~2,200-molecule universe); values above 65,535
  /// would need a profile larger than any registry holds and are saturated
  /// at construction.
  const std::vector<uint16_t>& triangle() const { return tri_; }

  /// Full symmetric n×n mirror of `triangle()` (zero diagonal), row-major.
  /// Recipe scoring reads this instead of the triangle: unordered index
  /// pairs address it directly, so the hot loop needs no sort, swap, or
  /// branch per pair. Costs 2× the triangle's memory — still a few hundred
  /// KB for real cuisines — in exchange for mispredict-free scoring.
  const std::vector<uint16_t>& shared_matrix() const { return full_; }

 private:
  PairingCache() = default;

  size_t TriIndex(size_t a, size_t b) const {
    // Requires a < b < n. Row-major strict upper triangle:
    // offset(a) = a*n - a(a+1)/2, index = offset(a) + (b - a - 1).
    return RowBase(a) + b;
  }

  std::vector<flavor::IngredientId> ids_;
  std::unordered_map<flavor::IngredientId, int> dense_;
  std::vector<flavor::CompoundBitset> bitsets_;
  std::vector<uint16_t> tri_;   ///< strict upper triangle, row-major
  std::vector<uint16_t> full_;  ///< symmetric n×n mirror, zero diagonal
};

/// N_s(R) for a recipe given as dense indices into `cache`:
///   N_s = 2 / (m (m-1)) * Σ_{i<j} |F_i ∩ F_j|
/// where m is the number of *resolved* ingredients (dense id >= 0).
/// Unresolved ingredients (-1 entries) are excluded from both the pair sum
/// and the normalization, so recipes with unknown ingredients are scored
/// over the ingredients that actually have profiles instead of being
/// silently diluted. Returns 0 when fewer than two ingredients resolve.
double RecipePairingScoreDense(const PairingCache& cache,
                               const std::vector<int>& dense_ids);

/// N_s(R) for a recipe given as ingredient ids (ids not covered by the
/// cache are excluded from scoring and normalization, as above).
double RecipePairingScore(const PairingCache& cache,
                          const std::vector<flavor::IngredientId>& ids);

/// Hot-loop variant of `RecipePairingScoreDense` for trusted buffers:
/// requires every entry to be a distinct, valid dense index of `cache`.
/// Skips the resolve/dedup preprocessing entirely and scores straight off
/// the symmetric shared matrix, so the inner loop carries no branches to
/// mispredict. The null-model ensembles call this millions of times per
/// sweep; sampler output satisfies the precondition by construction.
/// Returns the same value `RecipePairingScoreDense` would.
double RecipePairingScoreDistinct(const PairingCache& cache,
                                  const int* dense_ids, size_t m);

/// Distribution of N_s over the pairable recipes of `cuisine`; the mean is
/// the paper's average flavor sharing N̄_s of the cuisine. Recipes are
/// scored in fixed-size blocks that run across `options.num_threads`
/// workers and merge in block order, so the result does not depend on the
/// thread count.
culinary::RunningStats CuisinePairingStats(const PairingCache& cache,
                                           const recipe::Cuisine& cuisine,
                                           const AnalysisOptions& options = {});

/// Convenience: N̄_s of a cuisine.
double CuisineMeanPairing(const PairingCache& cache,
                          const recipe::Cuisine& cuisine,
                          const AnalysisOptions& options = {});

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_PAIRING_H_
