#ifndef CULINARYLAB_ANALYSIS_PERTURB_H_
#define CULINARYLAB_ANALYSIS_PERTURB_H_

#include "common/random.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Data-perturbation operators answering the paper's robustness question
/// ("How robust are the patterns to changes in recipes data and flavor
/// profiles?"). Used by `bench_ablation_robustness` and available as
/// library primitives for sensitivity studies.

/// A copy of `cuisine` keeping each recipe independently with probability
/// `keep` (clamped to [0, 1]).
recipe::Cuisine SubsampleCuisine(const recipe::Cuisine& cuisine, double keep,
                                 culinary::Rng& rng);

/// A structural copy of `registry` whose ingredient profiles lose each
/// molecule independently with probability `drop` (clamped to [0, 1]).
/// Molecule ids, ingredient ids (including tombstone gaps), names,
/// synonyms, kinds and constituents are preserved exactly, so recipes and
/// caches built against the original resolve identically.
flavor::FlavorRegistry DiluteProfiles(const flavor::FlavorRegistry& registry,
                                      double drop, culinary::Rng& rng);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_PERTURB_H_
