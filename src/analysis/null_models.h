#ifndef CULINARYLAB_ANALYSIS_NULL_MODELS_H_
#define CULINARYLAB_ANALYSIS_NULL_MODELS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "analysis/options.h"
#include "analysis/pairing.h"
#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// The four randomized-cuisine models of paper §IV.B. All preserve the
/// cuisine's exact ingredient set and its recipe-size distribution.
enum class NullModelKind : int {
  /// Ingredients chosen uniformly from the cuisine's ingredient set.
  kRandom = 0,
  /// Ingredients chosen with probability proportional to their empirical
  /// frequency of use in the cuisine.
  kFrequency = 1,
  /// The category multiset of a (uniformly sampled) real recipe is kept;
  /// each slot is filled uniformly from that category's ingredients.
  kCategory = 2,
  /// Category multiset kept; each slot filled from its category with
  /// frequency-proportional probability.
  kFrequencyCategory = 3,
};

/// Display name ("Random", "Frequency", "Category", "Frequency+Category").
std::string_view NullModelKindToString(NullModelKind kind);

/// Filesystem-safe slug ("random", "frequency", "category", "freqcat");
/// names the per-model checkpoint file under a checkpoint prefix.
std::string_view NullModelKindSlug(NullModelKind kind);

/// Progress / partial-result report for one ensemble sweep, filled whether
/// the sweep completes, is stopped, or faults. The well-defined partial
/// result of an interrupted ensemble: every counted block ran to
/// completion (a stop never tears a block), and `partial_stats` merges the
/// completed blocks in block-index order.
struct EnsembleProgress {
  size_t blocks_total = 0;
  /// Blocks whose partials exist, resumed ones included.
  size_t blocks_completed = 0;
  /// Blocks restored from the checkpoint instead of recomputed.
  size_t blocks_resumed = 0;
  /// True when a checkpoint was present but unusable (signature mismatch,
  /// corrupt header) and the run restarted clean.
  bool checkpoint_discarded = false;
  /// Human-readable note about checkpoint anomalies (dropped records,
  /// discard reason); empty when nothing noteworthy happened.
  std::string checkpoint_note;
  /// Null-score accumulator over the completed blocks, merged in block
  /// order. For `CompareAgainstAllModels` this is the most recently run
  /// kind's accumulator (the kinds sample distinct null distributions and
  /// are never merged), while the block counters aggregate across all four
  /// kinds with `blocks_total` fixed up front at 4x the per-kind count.
  culinary::RunningStats partial_stats;
};

/// Options for null-model generation.
///
/// The ensemble is partitioned into fixed-size blocks; block `b` draws from
/// its own generator `Rng(DeriveStreamSeed(base, b))` and accumulates a
/// partial `RunningStats`, and the partials merge in block order. Because
/// neither the block boundaries nor the stream seeds depend on
/// `exec.num_threads`, the resulting mean/stddev/z-score are bit-identical
/// for any thread count — 1 thread simply runs the same blocks inline.
struct NullModelOptions {
  /// Number of randomized recipes ("100,000 recipes were generated for the
  /// random control and models").
  size_t num_recipes = 100000;
  /// PRNG seed; fixed default for reproducible benches.
  uint64_t seed = 0xC0FFEE;
  /// Execution knobs for the sweep (thread count, cancellation, deadline;
  /// see AnalysisOptions).
  AnalysisOptions exec;

  /// When non-empty, completed blocks are appended to the crash-safe
  /// checkpoint file `<checkpoint_prefix>.<kind slug>.ckpt` as the sweep
  /// runs (one per model kind, so `CompareAgainstAllModels` never mixes
  /// ensembles in one file).
  std::string checkpoint_prefix;

  /// With `checkpoint_prefix` set: restore completed blocks from an
  /// existing checkpoint and recompute only the missing ones. Because each
  /// block owns a SplitMix-derived RNG stream and partials round-trip the
  /// file bit-exactly, a resumed ensemble is bit-identical to an
  /// uninterrupted one at any thread count. A missing, mismatched or
  /// corrupt checkpoint degrades to a clean restart, reported via
  /// `EnsembleProgress`. Mismatch detection covers everything that
  /// determines a block's value: the header signature pins seed, ensemble
  /// size, block granularity, model kind, region, *and* a content digest
  /// of the cuisine's recipes and the registry data they reference — so a
  /// checkpoint from a different synthetic world, recipes file, or edited
  /// registry is discarded rather than resumed.
  bool resume = false;

  /// Optional out-param: filled with the sweep's progress and partial
  /// results whether it completes or stops early.
  EnsembleProgress* progress = nullptr;
};

/// Draws randomized recipes from one null model of one cuisine.
///
/// Construction precomputes the samplers (recipe-size alias table,
/// frequency alias table, per-category pools); each `SampleRecipe` is then
/// O(recipe size) expected.
class NullModelSampler {
 public:
  /// Fails (FailedPrecondition) when the cuisine is degenerate: no recipes,
  /// fewer than two ingredients, or — for category models — empty category
  /// pools.
  static culinary::Result<NullModelSampler> Make(
      NullModelKind kind, const recipe::Cuisine& cuisine,
      const flavor::FlavorRegistry& registry);

  /// Draws one randomized recipe as dense indices into a `PairingCache`
  /// built over `cuisine.unique_ingredients()` (which is exactly the index
  /// space this sampler emits). Ingredients within one recipe are distinct.
  std::vector<int> SampleRecipe(culinary::Rng& rng) const;

  /// Allocation-free variant: writes the recipe into `out` (cleared first,
  /// capacity kept). The sweep loop reuses one buffer for its entire block
  /// instead of allocating 100,000 vectors. Thread-safe: samplers are
  /// immutable after construction, all mutable state lives in `rng`/`out`.
  void SampleRecipeInto(culinary::Rng& rng, std::vector<int>& out) const;

  NullModelKind kind() const { return kind_; }

 private:
  NullModelSampler() = default;

  /// Fills `out` with `count` distinct draws from `sampler` (alias table
  /// over all ingredients), rejecting duplicates.
  void SampleDistinct(const culinary::AliasSampler& sampler, size_t count,
                      culinary::Rng& rng, std::vector<int>& out) const;

  NullModelKind kind_ = NullModelKind::kRandom;
  size_t num_ingredients_ = 0;

  /// Sizes observed in the cuisine with their multiplicities.
  std::vector<int64_t> sizes_;
  std::optional<culinary::AliasSampler> size_sampler_;

  /// Frequency-proportional sampler over all ingredients (dense indices).
  std::optional<culinary::AliasSampler> frequency_sampler_;

  /// For category models: each real recipe's slots as category indices, and
  /// per-category ingredient pools (dense indices) with optional
  /// frequency-weighted samplers.
  std::vector<std::vector<int>> recipe_category_slots_;
  std::vector<std::vector<int>> category_pool_;
  std::vector<std::optional<culinary::AliasSampler>> category_sampler_;
};

/// Result of comparing a cuisine against one null model.
struct FoodPairingResult {
  NullModelKind kind = NullModelKind::kRandom;
  double real_mean = 0.0;        ///< N̄_s of the actual cuisine
  double null_mean = 0.0;        ///< N̄_s of the randomized cuisine
  double null_stddev = 0.0;      ///< σ over randomized recipes
  int64_t null_count = 0;        ///< number of randomized recipes
  double z_score = 0.0;          ///< (real − null) / (σ/√N)
};

/// Generates `options.num_recipes` randomized recipes for (cuisine, kind),
/// scores them against `cache` (which must be built over
/// `cuisine.unique_ingredients()`), and returns the comparison with the
/// cuisine's real N̄_s.
culinary::Result<FoodPairingResult> CompareAgainstNullModel(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, NullModelKind kind,
    const NullModelOptions& options = {});

/// Runs all four models. Per-model failures (degenerate cuisines) propagate.
culinary::Result<std::vector<FoodPairingResult>> CompareAgainstAllModels(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry,
    const NullModelOptions& options = {});

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_NULL_MODELS_H_
