#include "analysis/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace culinary::analysis {

CuisineClassifier::CuisineClassifier(
    const std::vector<recipe::Cuisine>& cuisines, double smoothing)
    : smoothing_(smoothing > 0.0 ? smoothing : 1.0) {
  std::unordered_set<flavor::IngredientId> universe;
  int64_t total_recipes = 0;
  for (const recipe::Cuisine& c : cuisines) {
    if (c.num_recipes() == 0) continue;
    CuisineModel model;
    model.region = c.region();
    model.frequency = c.frequency();
    model.num_recipes = static_cast<int64_t>(c.num_recipes());
    model.recipes = c.recipes();
    total_recipes += model.num_recipes;
    for (flavor::IngredientId id : c.unique_ingredients()) {
      universe.insert(id);
    }
    cuisines_.push_back(std::move(model));
  }
  universe_size_ = std::max<size_t>(universe.size(), 1);
  for (CuisineModel& model : cuisines_) {
    model.log_prior =
        std::log(static_cast<double>(model.num_recipes) /
                 static_cast<double>(std::max<int64_t>(total_recipes, 1)));
  }
}

double CuisineClassifier::ScoreAgainst(
    const CuisineModel& model,
    const std::vector<flavor::IngredientId>& ingredients,
    const recipe::Recipe* holdout) const {
  int64_t num_recipes = model.num_recipes;
  bool adjust = holdout != nullptr && holdout->region == model.region;
  if (adjust) num_recipes = std::max<int64_t>(num_recipes - 1, 0);

  double denom = static_cast<double>(num_recipes) +
                 smoothing_ * static_cast<double>(universe_size_);
  double score = model.log_prior;
  for (flavor::IngredientId id : ingredients) {
    auto it = model.frequency.find(id);
    double count = it == model.frequency.end()
                       ? 0.0
                       : static_cast<double>(it->second);
    if (adjust &&
        std::binary_search(holdout->ingredients.begin(),
                           holdout->ingredients.end(), id)) {
      count = std::max(count - 1.0, 0.0);
    }
    score += std::log((count + smoothing_) / denom);
  }
  return score;
}

std::vector<std::pair<recipe::Region, double>> CuisineClassifier::Scores(
    const std::vector<flavor::IngredientId>& ingredients) const {
  std::vector<std::pair<recipe::Region, double>> out;
  out.reserve(cuisines_.size());
  for (const CuisineModel& model : cuisines_) {
    out.emplace_back(model.region, ScoreAgainst(model, ingredients, nullptr));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

recipe::Region CuisineClassifier::Classify(
    const std::vector<flavor::IngredientId>& ingredients) const {
  auto scores = Scores(ingredients);
  return scores.empty() ? recipe::Region::kWorld : scores.front().first;
}

recipe::Region CuisineClassifier::ClassifyLeaveOneOut(
    const recipe::Recipe& r) const {
  recipe::Region best = recipe::Region::kWorld;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const CuisineModel& model : cuisines_) {
    double score = ScoreAgainst(model, r.ingredients, &r);
    if (score > best_score) {
      best_score = score;
      best = model.region;
    }
  }
  return best;
}

CuisineClassifier::Evaluation CuisineClassifier::EvaluateLeaveOneOut(
    size_t max_recipes_per_region) const {
  Evaluation eval;
  for (const CuisineModel& model : cuisines_) {
    size_t n = std::min(max_recipes_per_region, model.recipes.size());
    size_t correct = 0;
    for (size_t i = 0; i < n; ++i) {
      // Deterministic stratified stride over the cuisine's recipes.
      size_t idx = model.recipes.size() * i / std::max<size_t>(n, 1);
      if (ClassifyLeaveOneOut(model.recipes[idx]) == model.region) {
        ++correct;
      }
    }
    eval.total += n;
    eval.correct += correct;
    eval.per_region_accuracy.emplace_back(
        model.region,
        n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n));
  }
  return eval;
}

}  // namespace culinary::analysis
