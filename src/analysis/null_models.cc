#include "analysis/null_models.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "common/statistics.h"
#include "obs/obs.h"
#include "robustness/checkpoint.h"
#include "robustness/fault_injector.h"

namespace culinary::analysis {

std::string_view NullModelKindToString(NullModelKind kind) {
  switch (kind) {
    case NullModelKind::kRandom:
      return "Random";
    case NullModelKind::kFrequency:
      return "Frequency";
    case NullModelKind::kCategory:
      return "Category";
    case NullModelKind::kFrequencyCategory:
      return "Frequency+Category";
  }
  return "Unknown";
}

std::string_view NullModelKindSlug(NullModelKind kind) {
  switch (kind) {
    case NullModelKind::kRandom:
      return "random";
    case NullModelKind::kFrequency:
      return "frequency";
    case NullModelKind::kCategory:
      return "category";
    case NullModelKind::kFrequencyCategory:
      return "freqcat";
  }
  return "unknown";
}

culinary::Result<NullModelSampler> NullModelSampler::Make(
    NullModelKind kind, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry) {
  if (cuisine.num_recipes() == 0) {
    return culinary::Status::FailedPrecondition("cuisine has no recipes");
  }
  const std::vector<flavor::IngredientId>& ingredients =
      cuisine.unique_ingredients();
  if (ingredients.size() < 2) {
    return culinary::Status::FailedPrecondition(
        "cuisine has fewer than two ingredients");
  }

  NullModelSampler s;
  s.kind_ = kind;
  s.num_ingredients_ = ingredients.size();

  // Dense index per ingredient id — matches the order of
  // cuisine.unique_ingredients(), which is the PairingCache convention.
  std::unordered_map<flavor::IngredientId, int> dense;
  for (size_t i = 0; i < ingredients.size(); ++i) {
    dense[ingredients[i]] = static_cast<int>(i);
  }

  if (kind == NullModelKind::kRandom || kind == NullModelKind::kFrequency) {
    // Empirical recipe-size distribution.
    const culinary::Histogram& hist = cuisine.size_histogram();
    std::vector<double> weights;
    int64_t max_size = hist.max_value();
    for (int64_t v = 0; v <= max_size; ++v) {
      s.sizes_.push_back(v);
      weights.push_back(static_cast<double>(hist.CountAt(v)));
    }
    s.size_sampler_.emplace(weights);
    if (!s.size_sampler_->valid()) {
      return culinary::Status::Internal("size sampler construction failed");
    }
  }

  if (kind == NullModelKind::kFrequency) {
    std::vector<double> freq(ingredients.size(), 0.0);
    for (size_t i = 0; i < ingredients.size(); ++i) {
      freq[i] = static_cast<double>(cuisine.FrequencyOf(ingredients[i]));
    }
    s.frequency_sampler_.emplace(freq);
    if (!s.frequency_sampler_->valid()) {
      return culinary::Status::Internal("frequency sampler construction failed");
    }
  }

  if (kind == NullModelKind::kCategory ||
      kind == NullModelKind::kFrequencyCategory) {
    // Per-category pools over the cuisine's ingredient set.
    s.category_pool_.assign(flavor::kNumCategories, {});
    std::vector<std::vector<double>> pool_weights(flavor::kNumCategories);
    for (size_t i = 0; i < ingredients.size(); ++i) {
      const flavor::Ingredient* ing = registry.Find(ingredients[i]);
      if (ing == nullptr) {
        return culinary::Status::FailedPrecondition(
            "ingredient id " + std::to_string(ingredients[i]) +
            " unknown to registry");
      }
      int cat = static_cast<int>(ing->category);
      s.category_pool_[cat].push_back(static_cast<int>(i));
      pool_weights[cat].push_back(
          static_cast<double>(cuisine.FrequencyOf(ingredients[i])));
    }
    s.category_sampler_.assign(flavor::kNumCategories, std::nullopt);
    if (kind == NullModelKind::kFrequencyCategory) {
      for (int c = 0; c < flavor::kNumCategories; ++c) {
        if (!pool_weights[c].empty()) {
          s.category_sampler_[c].emplace(pool_weights[c]);
        }
      }
    }
    // Category slots of every real recipe.
    s.recipe_category_slots_.reserve(cuisine.num_recipes());
    for (const recipe::Recipe& r : cuisine.recipes()) {
      std::vector<int> slots;
      slots.reserve(r.ingredients.size());
      for (flavor::IngredientId id : r.ingredients) {
        const flavor::Ingredient* ing = registry.Find(id);
        if (ing != nullptr) slots.push_back(static_cast<int>(ing->category));
      }
      if (!slots.empty()) s.recipe_category_slots_.push_back(std::move(slots));
    }
    if (s.recipe_category_slots_.empty()) {
      return culinary::Status::FailedPrecondition(
          "no usable recipes for category model");
    }
  }
  return s;
}

void NullModelSampler::SampleDistinct(const culinary::AliasSampler& sampler,
                                      size_t count, culinary::Rng& rng,
                                      std::vector<int>& out) const {
  // Rejection sampling; recipe sizes (<~30) are far below the ingredient
  // count (hundreds), so collisions are rare. A retry cap guards degenerate
  // weight vectors (e.g. one dominant ingredient).
  const size_t max_attempts = 200 * count + 1000;
  size_t attempts = 0;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    int candidate = static_cast<int>(sampler.Sample(rng));
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
}

std::vector<int> NullModelSampler::SampleRecipe(culinary::Rng& rng) const {
  std::vector<int> out;
  SampleRecipeInto(rng, out);
  return out;
}

void NullModelSampler::SampleRecipeInto(culinary::Rng& rng,
                                        std::vector<int>& out) const {
  out.clear();
  switch (kind_) {
    case NullModelKind::kRandom: {
      size_t size = static_cast<size_t>(sizes_[size_sampler_->Sample(rng)]);
      size = std::min(size, num_ingredients_);
      if (size == 0) break;
      out.reserve(size);
      // Floyd's algorithm (same draw sequence as
      // Rng::SampleWithoutReplacement), writing dense ints directly so the
      // hot loop needs no size_t staging buffer.
      for (size_t j = num_ingredients_ - size; j < num_ingredients_; ++j) {
        int t = static_cast<int>(rng.NextBounded(j + 1));
        bool taken =
            std::find(out.begin(), out.end(), t) != out.end();
        out.push_back(taken ? static_cast<int>(j) : t);
      }
      break;
    }
    case NullModelKind::kFrequency: {
      size_t size = static_cast<size_t>(sizes_[size_sampler_->Sample(rng)]);
      size = std::min(size, num_ingredients_);
      out.reserve(size);
      SampleDistinct(*frequency_sampler_, size, rng, out);
      break;
    }
    case NullModelKind::kCategory:
    case NullModelKind::kFrequencyCategory: {
      const std::vector<int>& slots = recipe_category_slots_[static_cast<size_t>(
          rng.NextBounded(recipe_category_slots_.size()))];
      out.reserve(slots.size());
      for (int cat : slots) {
        const std::vector<int>& pool = category_pool_[static_cast<size_t>(cat)];
        if (pool.empty()) continue;
        // Draw until distinct or the pool is plausibly exhausted.
        int candidate = -1;
        for (int attempt = 0; attempt < 64; ++attempt) {
          if (kind_ == NullModelKind::kFrequencyCategory &&
              category_sampler_[static_cast<size_t>(cat)].has_value()) {
            candidate = pool[category_sampler_[static_cast<size_t>(cat)]->Sample(rng)];
          } else {
            candidate = pool[static_cast<size_t>(rng.NextBounded(pool.size()))];
          }
          if (std::find(out.begin(), out.end(), candidate) == out.end()) break;
          candidate = -1;
        }
        if (candidate >= 0) out.push_back(candidate);
      }
      break;
    }
  }
}

namespace {

/// Ensemble-block granularity. Fixed — never derived from the thread count
/// — so the block boundaries, the per-block RNG streams and the block-order
/// merge are identical whether the sweep runs on 1 thread or 64.
constexpr size_t kNullRecipesPerBlock = 2048;

}  // namespace

namespace {

/// Content digest of the data the ensemble actually samples and scores:
/// every recipe's ingredient-id list (the size distribution, usage
/// frequencies and category slots all derive from it) and, for each
/// ingredient the cuisine uses, its registry category and flavor-profile
/// molecule ids (categories steer the category models; profiles determine
/// every pairing score). A different synthetic-world seed, a different
/// recipes file, or an edited registry all change this digest.
uint64_t EnsembleInputsDigest(const recipe::Cuisine& cuisine,
                              const flavor::FlavorRegistry& registry) {
  uint64_t digest = culinary::DeriveStreamSeed(0x696e707574ULL,  // "input"
                                               cuisine.num_recipes());
  for (const recipe::Recipe& r : cuisine.recipes()) {
    digest = culinary::DeriveStreamSeed(digest, r.ingredients.size());
    for (flavor::IngredientId id : r.ingredients) {
      digest = culinary::DeriveStreamSeed(digest, static_cast<uint64_t>(id));
    }
  }
  for (flavor::IngredientId id : cuisine.unique_ingredients()) {
    digest = culinary::DeriveStreamSeed(digest, static_cast<uint64_t>(id));
    const flavor::Ingredient* ing = registry.Find(id);
    if (ing == nullptr) continue;  // Make() rejects such cuisines anyway
    digest = culinary::DeriveStreamSeed(digest,
                                        static_cast<uint64_t>(ing->category));
    digest = culinary::DeriveStreamSeed(digest, ing->profile.size());
    for (flavor::MoleculeId mol : ing->profile.ids()) {
      digest = culinary::DeriveStreamSeed(digest, static_cast<uint64_t>(mol));
    }
  }
  return digest;
}

/// The signature pinning everything that determines a block's value: a run
/// may only resume from a checkpoint written with the same seed, ensemble
/// size, block granularity, model kind, region and — via
/// `EnsembleInputsDigest` — the same cuisine and registry content;
/// otherwise the restored partials would be partials of a *different*
/// ensemble. Chained through `DeriveStreamSeed` so every ingredient
/// permutes the whole word.
uint64_t EnsembleSignature(const NullModelOptions& options, NullModelKind kind,
                           const recipe::Cuisine& cuisine,
                           const flavor::FlavorRegistry& registry) {
  uint64_t sig =
      culinary::DeriveStreamSeed(options.seed, 0x636b7074ULL);  // "ckpt"
  sig = culinary::DeriveStreamSeed(sig, options.num_recipes);
  sig = culinary::DeriveStreamSeed(sig, kNullRecipesPerBlock);
  sig = culinary::DeriveStreamSeed(sig, static_cast<uint64_t>(kind));
  sig = culinary::DeriveStreamSeed(sig,
                                   static_cast<uint64_t>(cuisine.region()));
  sig = culinary::DeriveStreamSeed(sig,
                                   EnsembleInputsDigest(cuisine, registry));
  return sig;
}

std::string CheckpointPath(const NullModelOptions& options,
                           NullModelKind kind) {
  return options.checkpoint_prefix + "." + std::string(NullModelKindSlug(kind)) +
         ".ckpt";
}

/// What the writer should do with the checkpoint file after a restore
/// attempt.
enum class RestoreOutcome {
  /// Nothing restored (missing, corrupt, or mismatched file): start fresh.
  kNoCheckpoint,
  /// Every record intact; appending in place is safe.
  kCleanAppend,
  /// Records restored, but the file ends in a torn/corrupt tail. The file
  /// must be rewritten from the restored records: appending after the torn
  /// line would glue the first new record onto it, making that record and
  /// everything after it unloadable on the *next* resume.
  kRewrite,
};

/// Restores completed blocks from `path` into `partials` / `have`. Discard
/// reasons and dropped-record counts are reported through `progress`.
RestoreOutcome RestoreFromCheckpoint(
    const std::string& path, uint64_t signature, size_t num_blocks,
    std::vector<culinary::RunningStats>& partials, std::vector<char>& have,
    EnsembleProgress& progress) {
  culinary::Result<robustness::CheckpointContents> loaded =
      robustness::LoadBlockCheckpoint(path);
  if (!loaded.ok()) {
    if (loaded.status().code() != culinary::StatusCode::kNotFound) {
      // Truncated header, corrupt file, injected read fault: degrade to a
      // clean restart rather than failing the sweep, but say so.
      progress.checkpoint_discarded = true;
      progress.checkpoint_note =
          "checkpoint discarded: " + loaded.status().message();
    }
    return RestoreOutcome::kNoCheckpoint;
  }
  const robustness::CheckpointContents& contents = loaded.value();
  if (contents.signature != signature ||
      contents.num_blocks != static_cast<uint64_t>(num_blocks)) {
    progress.checkpoint_discarded = true;
    progress.checkpoint_note =
        "checkpoint discarded: signature/shape mismatch (different seed, "
        "ensemble size, model, or input data)";
    return RestoreOutcome::kNoCheckpoint;
  }
  for (const robustness::CheckpointBlock& record : contents.blocks) {
    const size_t block = static_cast<size_t>(record.block);
    if (block >= num_blocks || have[block]) continue;
    partials[block] = record.stats;
    have[block] = 1;
    ++progress.blocks_resumed;
  }
  if (contents.records_dropped > 0) {
    progress.checkpoint_note =
        "checkpoint tail dropped: " +
        std::to_string(contents.records_dropped) +
        " torn/corrupt record(s); those blocks will be recomputed";
    return RestoreOutcome::kRewrite;
  }
  return RestoreOutcome::kCleanAppend;
}

/// Shared implementation: `real_mean` is the cuisine's N̄_s, computed once
/// by the caller (the four-model comparison reuses one value rather than
/// re-scoring every real recipe per model).
culinary::Result<FoodPairingResult> CompareWithRealMean(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, NullModelKind kind,
    const NullModelOptions& options, double real_mean) {
  if (options.num_recipes == 0) {
    return culinary::Status::InvalidArgument("num_recipes must be positive");
  }
  CULINARY_ASSIGN_OR_RETURN(NullModelSampler sampler,
                            NullModelSampler::Make(kind, cuisine, registry));
#if !defined(CULINARYLAB_OBS_DISABLED)
  // Span name carries the model kind; only built when recording.
  std::string span_name;
  if (obs::Enabled()) {
    span_name = "null_model.sweep/" + std::string(NullModelKindToString(kind));
  }
  obs::TraceSpan ensemble_span(span_name.empty() ? "null_model.sweep"
                                                 : span_name,
                               "null_model");
#endif
  CULINARY_OBS_COUNT("null_model.ensembles", 1);
  CULINARY_OBS_COUNT("null_model.samples_requested", options.num_recipes);
  const uint64_t base_seed = options.seed ^
                             (static_cast<uint64_t>(kind) << 32) ^
                             static_cast<uint64_t>(cuisine.region());
  const size_t num_blocks =
      (options.num_recipes + kNullRecipesPerBlock - 1) / kNullRecipesPerBlock;
  std::vector<culinary::RunningStats> partials(num_blocks);
  /// Per-block completion flags. Distinct slots, so concurrent block bodies
  /// never touch the same byte.
  std::vector<char> have(num_blocks, 0);

  EnsembleProgress local_progress;
  EnsembleProgress& progress =
      options.progress != nullptr ? *options.progress : local_progress;
  progress = EnsembleProgress{};
  progress.blocks_total = num_blocks;

  // ---- Checkpoint restore + writer setup -------------------------------
  std::optional<robustness::BlockCheckpointWriter> writer;
  if (!options.checkpoint_prefix.empty()) {
    const std::string path = CheckpointPath(options, kind);
    const uint64_t signature =
        EnsembleSignature(options, kind, cuisine, registry);
    RestoreOutcome restored = RestoreOutcome::kNoCheckpoint;
    if (options.resume) {
      restored = RestoreFromCheckpoint(path, signature, num_blocks, partials,
                                       have, progress);
      if (progress.blocks_resumed > 0) {
        CULINARY_OBS_COUNT("sweep.blocks_resumed", progress.blocks_resumed);
      }
    }
    if (restored == RestoreOutcome::kRewrite) {
      // Atomically publish the restored blocks as a fresh file, then append
      // to it. The atomic publish (vs re-appending into a truncating
      // `Create`) means a crash mid-rewrite keeps the previous checkpoint —
      // with its torn tail, but every intact record — instead of losing the
      // restored records altogether.
      std::vector<robustness::CheckpointBlock> restored_blocks;
      for (size_t block = 0; block < num_blocks; ++block) {
        if (!have[block]) continue;
        restored_blocks.push_back(
            robustness::CheckpointBlock{block, partials[block]});
      }
      culinary::Status published = robustness::WriteCheckpointFile(
          path, signature, num_blocks, restored_blocks);
      if (!published.ok()) {
        return published.WithContext("rewriting restored checkpoint blocks");
      }
    }
    culinary::Result<robustness::BlockCheckpointWriter> opened =
        restored == RestoreOutcome::kNoCheckpoint
            ? robustness::BlockCheckpointWriter::Create(path, signature,
                                                        num_blocks)
            : robustness::BlockCheckpointWriter::OpenForAppend(path, signature,
                                                               num_blocks);
    if (!opened.ok()) {
      return opened.status().WithContext("opening ensemble checkpoint");
    }
    writer.emplace(std::move(opened).value());
  }

  // Blocks still to compute (all of them on a fresh run). Scheduling over
  // this list instead of [0, num_blocks) is what makes resume cheap; each
  // block's RNG stream is still derived from its *original* index, so the
  // recomputed partials are bit-identical to a fresh run's.
  std::vector<size_t> pending;
  pending.reserve(num_blocks);
  for (size_t block = 0; block < num_blocks; ++block) {
    if (!have[block]) pending.push_back(block);
  }

  // First failure injected into a block (or raised appending its
  // checkpoint record). Later blocks become cheap no-ops; completed blocks
  // stay valid, which is exactly the crash the checkpoint protects.
  std::atomic<bool> faulted{false};
  std::mutex fault_mutex;
  culinary::Status fault_status;
  auto record_fault = [&](culinary::Status status) {
    std::lock_guard<std::mutex> lock(fault_mutex);
    if (fault_status.ok()) fault_status = std::move(status);
    faulted.store(true, std::memory_order_release);
  };

  AnalysisOptions sweep_exec = options.exec;
  sweep_exec.trace_label = "null_model.sweep";
  culinary::Status sweep_status =
      ForEachBlock(pending.size(), sweep_exec, [&](size_t i) {
        if (faulted.load(std::memory_order_acquire)) return;
        culinary::Status injected = robustness::FaultInjector::Global().Check(
            robustness::kFaultAnalysisBlock);
        if (!injected.ok()) {
          record_fault(std::move(injected));
          return;
        }
        const size_t block = pending[i];
        culinary::Rng rng(culinary::DeriveStreamSeed(base_seed, block));
        const size_t begin = block * kNullRecipesPerBlock;
        const size_t end =
            std::min(options.num_recipes, begin + kNullRecipesPerBlock);
        culinary::RunningStats stats;
        std::vector<int> dense;
        for (size_t i2 = begin; i2 < end; ++i2) {
          sampler.SampleRecipeInto(rng, dense);
          if (dense.size() < 2) continue;
          // Samplers emit distinct in-range dense indices by construction,
          // so the ensemble can take the trusted in-place scoring path.
          stats.Add(
              RecipePairingScoreDistinct(cache, dense.data(), dense.size()));
        }
        if (writer.has_value()) {
          culinary::Status appended = writer->AppendBlock(block, stats);
          if (!appended.ok()) {
            // The block computed fine but its record may not survive a
            // crash; stop rather than silently lose durability.
            record_fault(std::move(appended));
            return;
          }
        }
        partials[block] = stats;
        have[block] = 1;
      });

  // ---- Partial-result accounting (well-defined even when stopped) ------
  culinary::RunningStats null_stats;
  size_t completed = 0;
  for (size_t block = 0; block < num_blocks; ++block) {
    if (!have[block]) continue;
    ++completed;
    null_stats.Merge(partials[block]);
  }
  progress.blocks_completed = completed;
  progress.partial_stats = null_stats;

  const std::string blocks_context = std::to_string(completed) + " of " +
                                     std::to_string(num_blocks) +
                                     " blocks completed";
  {
    std::lock_guard<std::mutex> lock(fault_mutex);
    if (!fault_status.ok()) {
      return fault_status.WithContext("ensemble aborted mid-sweep; " +
                                      blocks_context);
    }
  }
  if (!sweep_status.ok()) {
    return sweep_status.WithContext("ensemble stopped; " + blocks_context);
  }

  CULINARY_OBS_COUNT("null_model.samples_scored",
                     static_cast<uint64_t>(null_stats.count()));
  if (null_stats.count() == 0) {
    return culinary::Status::FailedPrecondition(
        "null model produced no pairable recipes");
  }

  FoodPairingResult result;
  result.kind = kind;
  result.real_mean = real_mean;
  result.null_mean = null_stats.mean();
  result.null_stddev = null_stats.stddev();
  result.null_count = null_stats.count();
  result.z_score = culinary::ZScore(result.real_mean, result.null_mean,
                                    result.null_stddev, result.null_count);
  return result;
}

}  // namespace

culinary::Result<FoodPairingResult> CompareAgainstNullModel(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, NullModelKind kind,
    const NullModelOptions& options) {
  return CompareWithRealMean(cache, cuisine, registry, kind, options,
                             CuisineMeanPairing(cache, cuisine, options.exec));
}

culinary::Result<std::vector<FoodPairingResult>> CompareAgainstAllModels(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, const NullModelOptions& options) {
  // One real-mean sweep serves all four models; only the null ensembles
  // differ between them.
  const double real_mean = CuisineMeanPairing(cache, cuisine, options.exec);
  // Each per-kind sweep resets its progress struct, so the four runs report
  // into a local one and the caller's (if any) sees the aggregate:
  // completed/resumed counts summed, notes concatenated — including the
  // partially-run kind when a sweep stops early, so the caller can report
  // how far the command got.
  EnsembleProgress* caller_progress = options.progress;
  EnsembleProgress aggregate;
  // All four kinds share one block count, so the command-wide denominator
  // is known up front and stays stable however early the loop stops.
  aggregate.blocks_total =
      4 * ((options.num_recipes + kNullRecipesPerBlock - 1) /
           kNullRecipesPerBlock);
  NullModelOptions per_kind = options;
  std::vector<FoodPairingResult> results;
  for (NullModelKind kind :
       {NullModelKind::kRandom, NullModelKind::kFrequency,
        NullModelKind::kCategory, NullModelKind::kFrequencyCategory}) {
    EnsembleProgress kind_progress;
    per_kind.progress = caller_progress ? &kind_progress : nullptr;
    auto r = CompareWithRealMean(cache, cuisine, registry, kind, per_kind,
                                 real_mean);
    if (caller_progress) {
      aggregate.blocks_completed += kind_progress.blocks_completed;
      aggregate.blocks_resumed += kind_progress.blocks_resumed;
      aggregate.checkpoint_discarded |= kind_progress.checkpoint_discarded;
      if (!kind_progress.checkpoint_note.empty()) {
        if (!aggregate.checkpoint_note.empty()) {
          aggregate.checkpoint_note += "; ";
        }
        aggregate.checkpoint_note += std::string(NullModelKindSlug(kind)) +
                                     ": " + kind_progress.checkpoint_note;
      }
      // The most recent kind's accumulator, not a merge: the four kinds
      // sample distinct null distributions, so merging their stats would
      // describe no ensemble at all.
      aggregate.partial_stats = kind_progress.partial_stats;
      *caller_progress = aggregate;
    }
    if (!r.ok()) return r.status();
    results.push_back(*r);
  }
  return results;
}

}  // namespace culinary::analysis
