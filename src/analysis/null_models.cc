#include "analysis/null_models.h"

#include <algorithm>
#include <string>

#include "common/statistics.h"
#include "obs/obs.h"

namespace culinary::analysis {

std::string_view NullModelKindToString(NullModelKind kind) {
  switch (kind) {
    case NullModelKind::kRandom:
      return "Random";
    case NullModelKind::kFrequency:
      return "Frequency";
    case NullModelKind::kCategory:
      return "Category";
    case NullModelKind::kFrequencyCategory:
      return "Frequency+Category";
  }
  return "Unknown";
}

culinary::Result<NullModelSampler> NullModelSampler::Make(
    NullModelKind kind, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry) {
  if (cuisine.num_recipes() == 0) {
    return culinary::Status::FailedPrecondition("cuisine has no recipes");
  }
  const std::vector<flavor::IngredientId>& ingredients =
      cuisine.unique_ingredients();
  if (ingredients.size() < 2) {
    return culinary::Status::FailedPrecondition(
        "cuisine has fewer than two ingredients");
  }

  NullModelSampler s;
  s.kind_ = kind;
  s.num_ingredients_ = ingredients.size();

  // Dense index per ingredient id — matches the order of
  // cuisine.unique_ingredients(), which is the PairingCache convention.
  std::unordered_map<flavor::IngredientId, int> dense;
  for (size_t i = 0; i < ingredients.size(); ++i) {
    dense[ingredients[i]] = static_cast<int>(i);
  }

  if (kind == NullModelKind::kRandom || kind == NullModelKind::kFrequency) {
    // Empirical recipe-size distribution.
    const culinary::Histogram& hist = cuisine.size_histogram();
    std::vector<double> weights;
    int64_t max_size = hist.max_value();
    for (int64_t v = 0; v <= max_size; ++v) {
      s.sizes_.push_back(v);
      weights.push_back(static_cast<double>(hist.CountAt(v)));
    }
    s.size_sampler_.emplace(weights);
    if (!s.size_sampler_->valid()) {
      return culinary::Status::Internal("size sampler construction failed");
    }
  }

  if (kind == NullModelKind::kFrequency) {
    std::vector<double> freq(ingredients.size(), 0.0);
    for (size_t i = 0; i < ingredients.size(); ++i) {
      freq[i] = static_cast<double>(cuisine.FrequencyOf(ingredients[i]));
    }
    s.frequency_sampler_.emplace(freq);
    if (!s.frequency_sampler_->valid()) {
      return culinary::Status::Internal("frequency sampler construction failed");
    }
  }

  if (kind == NullModelKind::kCategory ||
      kind == NullModelKind::kFrequencyCategory) {
    // Per-category pools over the cuisine's ingredient set.
    s.category_pool_.assign(flavor::kNumCategories, {});
    std::vector<std::vector<double>> pool_weights(flavor::kNumCategories);
    for (size_t i = 0; i < ingredients.size(); ++i) {
      const flavor::Ingredient* ing = registry.Find(ingredients[i]);
      if (ing == nullptr) {
        return culinary::Status::FailedPrecondition(
            "ingredient id " + std::to_string(ingredients[i]) +
            " unknown to registry");
      }
      int cat = static_cast<int>(ing->category);
      s.category_pool_[cat].push_back(static_cast<int>(i));
      pool_weights[cat].push_back(
          static_cast<double>(cuisine.FrequencyOf(ingredients[i])));
    }
    s.category_sampler_.assign(flavor::kNumCategories, std::nullopt);
    if (kind == NullModelKind::kFrequencyCategory) {
      for (int c = 0; c < flavor::kNumCategories; ++c) {
        if (!pool_weights[c].empty()) {
          s.category_sampler_[c].emplace(pool_weights[c]);
        }
      }
    }
    // Category slots of every real recipe.
    s.recipe_category_slots_.reserve(cuisine.num_recipes());
    for (const recipe::Recipe& r : cuisine.recipes()) {
      std::vector<int> slots;
      slots.reserve(r.ingredients.size());
      for (flavor::IngredientId id : r.ingredients) {
        const flavor::Ingredient* ing = registry.Find(id);
        if (ing != nullptr) slots.push_back(static_cast<int>(ing->category));
      }
      if (!slots.empty()) s.recipe_category_slots_.push_back(std::move(slots));
    }
    if (s.recipe_category_slots_.empty()) {
      return culinary::Status::FailedPrecondition(
          "no usable recipes for category model");
    }
  }
  return s;
}

void NullModelSampler::SampleDistinct(const culinary::AliasSampler& sampler,
                                      size_t count, culinary::Rng& rng,
                                      std::vector<int>& out) const {
  // Rejection sampling; recipe sizes (<~30) are far below the ingredient
  // count (hundreds), so collisions are rare. A retry cap guards degenerate
  // weight vectors (e.g. one dominant ingredient).
  const size_t max_attempts = 200 * count + 1000;
  size_t attempts = 0;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    int candidate = static_cast<int>(sampler.Sample(rng));
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
}

std::vector<int> NullModelSampler::SampleRecipe(culinary::Rng& rng) const {
  std::vector<int> out;
  SampleRecipeInto(rng, out);
  return out;
}

void NullModelSampler::SampleRecipeInto(culinary::Rng& rng,
                                        std::vector<int>& out) const {
  out.clear();
  switch (kind_) {
    case NullModelKind::kRandom: {
      size_t size = static_cast<size_t>(sizes_[size_sampler_->Sample(rng)]);
      size = std::min(size, num_ingredients_);
      if (size == 0) break;
      out.reserve(size);
      // Floyd's algorithm (same draw sequence as
      // Rng::SampleWithoutReplacement), writing dense ints directly so the
      // hot loop needs no size_t staging buffer.
      for (size_t j = num_ingredients_ - size; j < num_ingredients_; ++j) {
        int t = static_cast<int>(rng.NextBounded(j + 1));
        bool taken =
            std::find(out.begin(), out.end(), t) != out.end();
        out.push_back(taken ? static_cast<int>(j) : t);
      }
      break;
    }
    case NullModelKind::kFrequency: {
      size_t size = static_cast<size_t>(sizes_[size_sampler_->Sample(rng)]);
      size = std::min(size, num_ingredients_);
      out.reserve(size);
      SampleDistinct(*frequency_sampler_, size, rng, out);
      break;
    }
    case NullModelKind::kCategory:
    case NullModelKind::kFrequencyCategory: {
      const std::vector<int>& slots = recipe_category_slots_[static_cast<size_t>(
          rng.NextBounded(recipe_category_slots_.size()))];
      out.reserve(slots.size());
      for (int cat : slots) {
        const std::vector<int>& pool = category_pool_[static_cast<size_t>(cat)];
        if (pool.empty()) continue;
        // Draw until distinct or the pool is plausibly exhausted.
        int candidate = -1;
        for (int attempt = 0; attempt < 64; ++attempt) {
          if (kind_ == NullModelKind::kFrequencyCategory &&
              category_sampler_[static_cast<size_t>(cat)].has_value()) {
            candidate = pool[category_sampler_[static_cast<size_t>(cat)]->Sample(rng)];
          } else {
            candidate = pool[static_cast<size_t>(rng.NextBounded(pool.size()))];
          }
          if (std::find(out.begin(), out.end(), candidate) == out.end()) break;
          candidate = -1;
        }
        if (candidate >= 0) out.push_back(candidate);
      }
      break;
    }
  }
}

namespace {

/// Ensemble-block granularity. Fixed — never derived from the thread count
/// — so the block boundaries, the per-block RNG streams and the block-order
/// merge are identical whether the sweep runs on 1 thread or 64.
constexpr size_t kNullRecipesPerBlock = 2048;

}  // namespace

namespace {

/// Shared implementation: `real_mean` is the cuisine's N̄_s, computed once
/// by the caller (the four-model comparison reuses one value rather than
/// re-scoring every real recipe per model).
culinary::Result<FoodPairingResult> CompareWithRealMean(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, NullModelKind kind,
    const NullModelOptions& options, double real_mean) {
  if (options.num_recipes == 0) {
    return culinary::Status::InvalidArgument("num_recipes must be positive");
  }
  CULINARY_ASSIGN_OR_RETURN(NullModelSampler sampler,
                            NullModelSampler::Make(kind, cuisine, registry));
#if !defined(CULINARYLAB_OBS_DISABLED)
  // Span name carries the model kind; only built when recording.
  std::string span_name;
  if (obs::Enabled()) {
    span_name = "null_model.sweep/" + std::string(NullModelKindToString(kind));
  }
  obs::TraceSpan ensemble_span(span_name.empty() ? "null_model.sweep"
                                                 : span_name,
                               "null_model");
#endif
  CULINARY_OBS_COUNT("null_model.ensembles", 1);
  CULINARY_OBS_COUNT("null_model.samples_requested", options.num_recipes);
  const uint64_t base_seed = options.seed ^
                             (static_cast<uint64_t>(kind) << 32) ^
                             static_cast<uint64_t>(cuisine.region());
  const size_t num_blocks =
      (options.num_recipes + kNullRecipesPerBlock - 1) / kNullRecipesPerBlock;
  std::vector<culinary::RunningStats> partials(num_blocks);
  AnalysisOptions sweep_exec = options.exec;
  sweep_exec.trace_label = "null_model.sweep";
  ForEachBlock(num_blocks, sweep_exec, [&](size_t block) {
    culinary::Rng rng(culinary::DeriveStreamSeed(base_seed, block));
    const size_t begin = block * kNullRecipesPerBlock;
    const size_t end =
        std::min(options.num_recipes, begin + kNullRecipesPerBlock);
    culinary::RunningStats stats;
    std::vector<int> dense;
    for (size_t i = begin; i < end; ++i) {
      sampler.SampleRecipeInto(rng, dense);
      if (dense.size() < 2) continue;
      // Samplers emit distinct in-range dense indices by construction, so
      // the ensemble can take the trusted in-place scoring path.
      stats.Add(
          RecipePairingScoreDistinct(cache, dense.data(), dense.size()));
    }
    partials[block] = stats;
  });
  culinary::RunningStats null_stats;
  for (const culinary::RunningStats& partial : partials) {
    null_stats.Merge(partial);
  }
  CULINARY_OBS_COUNT("null_model.samples_scored",
                     static_cast<uint64_t>(null_stats.count()));
  if (null_stats.count() == 0) {
    return culinary::Status::FailedPrecondition(
        "null model produced no pairable recipes");
  }

  FoodPairingResult result;
  result.kind = kind;
  result.real_mean = real_mean;
  result.null_mean = null_stats.mean();
  result.null_stddev = null_stats.stddev();
  result.null_count = null_stats.count();
  result.z_score = culinary::ZScore(result.real_mean, result.null_mean,
                                    result.null_stddev, result.null_count);
  return result;
}

}  // namespace

culinary::Result<FoodPairingResult> CompareAgainstNullModel(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, NullModelKind kind,
    const NullModelOptions& options) {
  return CompareWithRealMean(cache, cuisine, registry, kind, options,
                             CuisineMeanPairing(cache, cuisine, options.exec));
}

culinary::Result<std::vector<FoodPairingResult>> CompareAgainstAllModels(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const flavor::FlavorRegistry& registry, const NullModelOptions& options) {
  // One real-mean sweep serves all four models; only the null ensembles
  // differ between them.
  const double real_mean = CuisineMeanPairing(cache, cuisine, options.exec);
  std::vector<FoodPairingResult> results;
  for (NullModelKind kind :
       {NullModelKind::kRandom, NullModelKind::kFrequency,
        NullModelKind::kCategory, NullModelKind::kFrequencyCategory}) {
    CULINARY_ASSIGN_OR_RETURN(
        FoodPairingResult r,
        CompareWithRealMean(cache, cuisine, registry, kind, options,
                            real_mean));
    results.push_back(r);
  }
  return results;
}

}  // namespace culinary::analysis
