#include "analysis/molecules.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/pairing.h"

namespace culinary::analysis {

namespace {

/// Accumulates per-molecule counts weighted by ingredient multiplicity.
std::unordered_map<flavor::MoleculeId, int64_t> CountMolecules(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry,
    bool per_use) {
  std::unordered_map<flavor::MoleculeId, int64_t> counts;
  if (per_use) {
    for (const recipe::Recipe& r : cuisine.recipes()) {
      for (flavor::IngredientId id : r.ingredients) {
        const flavor::Ingredient* ing = registry.Find(id);
        if (ing == nullptr) continue;
        for (flavor::MoleculeId m : ing->profile.ids()) ++counts[m];
      }
    }
  } else {
    for (flavor::IngredientId id : cuisine.unique_ingredients()) {
      const flavor::Ingredient* ing = registry.Find(id);
      if (ing == nullptr) continue;
      for (flavor::MoleculeId m : ing->profile.ids()) ++counts[m];
    }
  }
  return counts;
}

std::vector<std::pair<flavor::MoleculeId, int64_t>> SortDescending(
    const std::unordered_map<flavor::MoleculeId, int64_t>& counts) {
  std::vector<std::pair<flavor::MoleculeId, int64_t>> out(counts.begin(),
                                                          counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace

std::vector<std::pair<flavor::MoleculeId, int64_t>> MoleculeUsage(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry) {
  return SortDescending(CountMolecules(cuisine, registry, /*per_use=*/true));
}

std::vector<std::pair<flavor::MoleculeId, int64_t>> MoleculeBreadth(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry) {
  return SortDescending(CountMolecules(cuisine, registry, /*per_use=*/false));
}

culinary::Result<std::vector<SignatureMolecule>> TopSignatureMolecules(
    const std::vector<recipe::Cuisine>& cuisines,
    const flavor::FlavorRegistry& registry, size_t target, size_t k) {
  if (target >= cuisines.size()) {
    return culinary::Status::InvalidArgument("target index out of range");
  }
  if (cuisines.size() < 2) {
    return culinary::Status::InvalidArgument(
        "signature needs at least two cuisines");
  }

  // Usage share per molecule per cuisine.
  auto share_map = [&](const recipe::Cuisine& c) {
    auto counts = CountMolecules(c, registry, /*per_use=*/true);
    int64_t total = 0;
    for (const auto& [m, n] : counts) total += n;
    std::unordered_map<flavor::MoleculeId, double> shares;
    if (total > 0) {
      for (const auto& [m, n] : counts) {
        shares[m] = static_cast<double>(n) / static_cast<double>(total);
      }
    }
    return shares;
  };

  auto mine = share_map(cuisines[target]);
  if (mine.empty()) {
    return culinary::Status::FailedPrecondition(
        "target cuisine has no molecule uses");
  }
  std::vector<std::unordered_map<flavor::MoleculeId, double>> others;
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (c == target || cuisines[c].num_recipes() == 0) continue;
    others.push_back(share_map(cuisines[c]));
  }

  std::vector<SignatureMolecule> scored;
  scored.reserve(mine.size());
  for (const auto& [m, share] : mine) {
    double other_sum = 0.0;
    for (const auto& other : others) {
      auto it = other.find(m);
      if (it != other.end()) other_sum += it->second;
    }
    double other_mean =
        others.empty() ? 0.0 : other_sum / static_cast<double>(others.size());
    scored.push_back({m, share, share - other_mean});
  }
  std::sort(scored.begin(), scored.end(),
            [](const SignatureMolecule& a, const SignatureMolecule& b) {
              if (a.signature != b.signature) return a.signature > b.signature;
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

culinary::Histogram SharedCompoundSpectrum(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry) {
  culinary::Histogram spectrum;
  PairingCache cache(registry, cuisine.unique_ingredients());
  const size_t n = cache.num_ingredients();
  for (size_t a = 0; a + 1 < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      spectrum.Add(static_cast<int64_t>(cache.SharedByDense(a, b)));
    }
  }
  return spectrum;
}

}  // namespace culinary::analysis
