#include "analysis/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace culinary::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += culinary::PadRight(headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "\n";
  }
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += culinary::PadRight(row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "\n";
    }
  }
  return out;
}

std::string RenderSeries(const std::string& x_label, const std::string& y_label,
                         const std::vector<double>& ys, size_t first_x,
                         bool with_bars) {
  double max_y = 0.0;
  for (double y : ys) max_y = std::max(max_y, y);
  std::string out = culinary::PadRight(x_label, 8) + "  " +
                    culinary::PadRight(y_label, 10) + "\n";
  for (size_t i = 0; i < ys.size(); ++i) {
    out += culinary::PadRight(std::to_string(first_x + i), 8);
    out += "  ";
    out += culinary::PadRight(culinary::FormatDouble(ys[i], 4), 10);
    if (with_bars && max_y > 0.0) {
      size_t bar = static_cast<size_t>(40.0 * ys[i] / max_y + 0.5);
      out += "  ";
      out.append(bar, '#');
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

void AppendDiagnostics(std::string& out, const robustness::ErrorSink* sink,
                       size_t max_diagnostics) {
  if (sink == nullptr || sink->empty()) return;
  out += "errors: " + sink->Summary() + "\n";
  size_t shown = 0;
  for (const robustness::Diagnostic& d : sink->diagnostics()) {
    if (shown >= max_diagnostics) break;
    out += "  " + d.ToString() + "\n";
    ++shown;
  }
  if (sink->diagnostics().size() > shown) {
    out += "  ... and " + std::to_string(sink->diagnostics().size() - shown) +
           " more stored\n";
  }
}

}  // namespace

std::string RenderIngestStats(const std::string& source_label,
                              const robustness::IngestStats& stats,
                              const robustness::ErrorSink* sink,
                              size_t max_diagnostics) {
  std::string out = "=== Ingestion: " + source_label + " ===\n";
  out += "records total:       " + std::to_string(stats.records_total) + "\n";
  out += "records kept:        " + std::to_string(stats.records_ok) + "\n";
  out += "records quarantined: " +
         std::to_string(stats.records_quarantined) + "\n";
  out += "coverage:            " +
         culinary::FormatDouble(stats.coverage(), 3) + "\n";
  AppendDiagnostics(out, sink, max_diagnostics);
  return out;
}

std::string RenderIngestReport(const std::string& source_label,
                               const recipe::IngestReport& report,
                               const robustness::ErrorSink* sink,
                               size_t max_diagnostics) {
  std::string out = "=== Ingestion: " + source_label + " ===\n";
  out += "records total:       " +
         std::to_string(report.records.records_total) + "\n";
  out += "recipes loaded:      " + std::to_string(report.rows_loaded) + "\n";
  out += "csv quarantined:     " +
         std::to_string(report.records.records_quarantined) + "\n";
  out += "rows quarantined:    " + std::to_string(report.rows_quarantined) +
         "\n";
  out += "unknown ingredients: " +
         std::to_string(report.ingredient_names_dropped) + "\n";
  out += "coverage:            " +
         culinary::FormatDouble(report.coverage(), 3) + "\n";
  AppendDiagnostics(out, sink, max_diagnostics);
  return out;
}

}  // namespace culinary::analysis
