#ifndef CULINARYLAB_ANALYSIS_FINGERPRINT_H_
#define CULINARYLAB_ANALYSIS_FINGERPRINT_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "flavor/ingredient.h"
#include "recipe/cuisine.h"
#include "recipe/recipe.h"
#include "recipe/region.h"

namespace culinary::analysis {

/// A "culinary fingerprint" classifier: assigns a recipe (an ingredient
/// set) to the regional cuisine whose signature ingredient-usage pattern
/// it most plausibly came from.
///
/// The paper frames cuisines as having "signature ingredient combinations
/// ... that characterize a cuisine" — its culinary fingerprint. This
/// module operationalizes that as a naive-Bayes model over per-cuisine
/// ingredient usage frequencies with Laplace smoothing:
///
///   score(R | C) = log P(C) + Σ_{i ∈ R} log (n_i(C) + α) / (N_C + α·V)
///
/// where n_i(C) is the number of C's recipes using ingredient i, N_C is
/// C's recipe count, V the ingredient-universe size and α the smoothing
/// constant.
class CuisineClassifier {
 public:
  /// Builds the model from cuisines (empty cuisines are skipped).
  /// `smoothing` must be positive.
  explicit CuisineClassifier(const std::vector<recipe::Cuisine>& cuisines,
                             double smoothing = 1.0);

  /// Number of cuisines in the model.
  size_t num_cuisines() const { return cuisines_.size(); }

  /// Log-likelihood score per region for an ingredient set, best first.
  std::vector<std::pair<recipe::Region, double>> Scores(
      const std::vector<flavor::IngredientId>& ingredients) const;

  /// Best region (kWorld when the model is empty).
  recipe::Region Classify(
      const std::vector<flavor::IngredientId>& ingredients) const;

  /// Classifies `r` with its own contribution removed from its true
  /// cuisine's counts (leave-one-out), eliminating training leakage.
  recipe::Region ClassifyLeaveOneOut(const recipe::Recipe& r) const;

  /// Leave-one-out evaluation summary.
  struct Evaluation {
    size_t total = 0;
    size_t correct = 0;
    /// accuracy per evaluated region, in evaluation order.
    std::vector<std::pair<recipe::Region, double>> per_region_accuracy;

    double accuracy() const {
      return total == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(total);
    }
  };

  /// Evaluates leave-one-out top-1 accuracy over up to
  /// `max_recipes_per_region` recipes of every modeled cuisine.
  Evaluation EvaluateLeaveOneOut(size_t max_recipes_per_region = 50) const;

 private:
  struct CuisineModel {
    recipe::Region region = recipe::Region::kWorld;
    std::unordered_map<flavor::IngredientId, int64_t> frequency;
    int64_t num_recipes = 0;
    double log_prior = 0.0;
    /// Recipes kept for leave-one-out evaluation.
    std::vector<recipe::Recipe> recipes;
  };

  /// Score of one ingredient set under one cuisine, with optional
  /// leave-one-out adjustment (`holdout` non-null ⇒ subtract its counts).
  double ScoreAgainst(const CuisineModel& model,
                      const std::vector<flavor::IngredientId>& ingredients,
                      const recipe::Recipe* holdout) const;

  std::vector<CuisineModel> cuisines_;
  double smoothing_;
  size_t universe_size_ = 0;
};

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_FINGERPRINT_H_
