#include "analysis/options.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace culinary::analysis {

size_t ResolveNumThreads(size_t num_threads) {
  const size_t hardware =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  if (num_threads == 0) return hardware;
  // Oversubscribing a CPU-bound sweep never helps; capping keeps a
  // `num_threads=8` request cheap on smaller machines. Results are
  // unaffected either way (see the determinism contract in options.h).
  return std::min(num_threads, hardware);
}

void ForEachBlock(size_t num_blocks, const AnalysisOptions& options,
                  const std::function<void(size_t)>& body) {
  if (num_blocks == 0) return;
  const size_t threads =
      std::min(ResolveNumThreads(options.num_threads), num_blocks);
#if !defined(CULINARYLAB_OBS_DISABLED)
  if (obs::Enabled()) {
    // Instrumented path: identical block boundaries and execution structure
    // — the wrapper only stamps the clock around each block, it never
    // reorders, splits or skips work, so results match the bare path
    // bit-for-bit.
    const char* label =
        options.trace_label != nullptr ? options.trace_label : "analysis.sweep";
    const std::string hist_name = std::string(label) + ".block_ms";
    obs::HistogramMetric& block_hist =
        obs::MetricsRegistry::Default().GetHistogram(hist_name);
    obs::Counter& blocks_counter =
        obs::MetricsRegistry::Default().GetCounter("analysis.blocks_executed");
    obs::TraceSpan sweep_span(label, "analysis");
    CULINARY_OBS_GAUGE_SET("analysis.sweep_threads",
                           static_cast<double>(threads));
    auto timed_body = [&](size_t block) {
      const auto t0 = std::chrono::steady_clock::now();
      body(block);
      block_hist.ObserveUnchecked(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      blocks_counter.IncrementUnchecked(1);
    };
    if (threads <= 1) {
      for (size_t b = 0; b < num_blocks; ++b) timed_body(b);
      return;
    }
    ThreadPool pool(threads);
    pool.ParallelFor(num_blocks, timed_body);
    return;
  }
#endif
  if (threads <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(num_blocks, body);
}

}  // namespace culinary::analysis
