#include "analysis/options.h"

#include <algorithm>
#include <thread>

#include "common/thread_pool.h"

namespace culinary::analysis {

size_t ResolveNumThreads(size_t num_threads) {
  const size_t hardware =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  if (num_threads == 0) return hardware;
  // Oversubscribing a CPU-bound sweep never helps; capping keeps a
  // `num_threads=8` request cheap on smaller machines. Results are
  // unaffected either way (see the determinism contract in options.h).
  return std::min(num_threads, hardware);
}

void ForEachBlock(size_t num_blocks, const AnalysisOptions& options,
                  const std::function<void(size_t)>& body) {
  if (num_blocks == 0) return;
  const size_t threads =
      std::min(ResolveNumThreads(options.num_threads), num_blocks);
  if (threads <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(num_blocks, body);
}

}  // namespace culinary::analysis
