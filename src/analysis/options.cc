#include "analysis/options.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace culinary::analysis {

size_t ResolveNumThreads(size_t num_threads) {
  const size_t hardware =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  if (num_threads == 0) return hardware;
  // Oversubscribing a CPU-bound sweep never helps; capping keeps a
  // `num_threads=8` request cheap on smaller machines. Results are
  // unaffected either way (see the determinism contract in options.h).
  return std::min(num_threads, hardware);
}

namespace {

/// Counts a non-OK sweep verdict for the dashboards; the caller decides
/// what to do with the status itself.
void NoteSweepStopped(const culinary::Status& status) {
  if (status.IsCancelled()) {
    CULINARY_OBS_COUNT("sweep.cancelled", 1);
  } else if (status.IsDeadlineExceeded()) {
    CULINARY_OBS_COUNT("sweep.deadline_exceeded", 1);
  }
}

/// Serial path shared by the bare and instrumented branches: checks the
/// lifecycle knobs between blocks exactly as the pooled path does.
culinary::Status RunBlocksInline(size_t num_blocks,
                                 const AnalysisOptions& options,
                                 const std::function<void(size_t)>& body) {
  const bool stoppable = options.stoppable();
  for (size_t b = 0; b < num_blocks; ++b) {
    if (stoppable) {
      culinary::Status stop = options.StopStatus();
      if (!stop.ok()) return stop;
    }
    body(b);
  }
  return culinary::Status::OK();
}

}  // namespace

culinary::Status ForEachBlock(size_t num_blocks,
                              const AnalysisOptions& options,
                              const std::function<void(size_t)>& body) {
  if (num_blocks == 0) return culinary::Status::OK();
  const size_t threads =
      std::min(ResolveNumThreads(options.num_threads), num_blocks);
  // Built once per sweep: null when the sweep carries no lifecycle knobs,
  // so the common case pays nothing per block.
  culinary::StopCheck stop_check;
  if (options.stoppable()) {
    stop_check = [&options]() { return options.StopStatus(); };
  }
  culinary::Status verdict;
#if !defined(CULINARYLAB_OBS_DISABLED)
  if (obs::Enabled()) {
    // Instrumented path: identical block boundaries and execution structure
    // — the wrapper only stamps the clock around each block, it never
    // reorders, splits or skips work, so results match the bare path
    // bit-for-bit.
    const char* label =
        options.trace_label != nullptr ? options.trace_label : "analysis.sweep";
    const std::string hist_name = std::string(label) + ".block_ms";
    obs::HistogramMetric& block_hist =
        obs::MetricsRegistry::Default().GetHistogram(hist_name);
    obs::Counter& blocks_counter =
        obs::MetricsRegistry::Default().GetCounter("analysis.blocks_executed");
    obs::TraceSpan sweep_span(label, "analysis");
    CULINARY_OBS_GAUGE_SET("analysis.sweep_threads",
                           static_cast<double>(threads));
    auto timed_body = [&](size_t block) {
      const auto t0 = std::chrono::steady_clock::now();
      body(block);
      block_hist.ObserveUnchecked(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      blocks_counter.IncrementUnchecked(1);
    };
    if (threads <= 1) {
      verdict = RunBlocksInline(num_blocks, options, timed_body);
    } else {
      ThreadPool pool(threads);
      verdict = pool.ParallelFor(num_blocks, timed_body, stop_check);
    }
    NoteSweepStopped(verdict);
    return verdict;
  }
#endif
  if (threads <= 1) {
    verdict = RunBlocksInline(num_blocks, options, body);
  } else {
    ThreadPool pool(threads);
    verdict = pool.ParallelFor(num_blocks, body, stop_check);
  }
  NoteSweepStopped(verdict);
  return verdict;
}

}  // namespace culinary::analysis
