#include "analysis/contribution.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace culinary::analysis {

namespace {

/// Base sum of N_s over pairable recipes and their count.
struct BaseScores {
  std::vector<double> per_recipe;  ///< N_s per recipe (0 for unpairable)
  double sum = 0.0;
  int64_t count = 0;
};

BaseScores ComputeBase(const PairingCache& cache,
                       const recipe::Cuisine& cuisine) {
  BaseScores base;
  base.per_recipe.reserve(cuisine.num_recipes());
  for (const recipe::Recipe& r : cuisine.recipes()) {
    double score = 0.0;
    if (r.IsPairable()) {
      score = RecipePairingScore(cache, r.ingredients);
      base.sum += score;
      ++base.count;
    }
    base.per_recipe.push_back(score);
  }
  return base;
}

double MeanWithoutGivenBase(const PairingCache& cache,
                            const recipe::Cuisine& cuisine,
                            const BaseScores& base, flavor::IngredientId id) {
  double sum = base.sum;
  int64_t count = base.count;
  const std::vector<recipe::Recipe>& recipes = cuisine.recipes();
  for (size_t i = 0; i < recipes.size(); ++i) {
    const recipe::Recipe& r = recipes[i];
    if (!r.IsPairable()) continue;
    if (!std::binary_search(r.ingredients.begin(), r.ingredients.end(), id)) {
      continue;
    }
    // Remove the recipe's old score, add the reduced recipe's score.
    sum -= base.per_recipe[i];
    --count;
    std::vector<flavor::IngredientId> reduced;
    reduced.reserve(r.ingredients.size() - 1);
    for (flavor::IngredientId x : r.ingredients) {
      if (x != id) reduced.push_back(x);
    }
    if (reduced.size() >= 2) {
      sum += RecipePairingScore(cache, reduced);
      ++count;
    }
  }
  if (count <= 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace

double CuisineMeanPairingWithout(const PairingCache& cache,
                                 const recipe::Cuisine& cuisine,
                                 flavor::IngredientId id) {
  BaseScores base = ComputeBase(cache, cuisine);
  return MeanWithoutGivenBase(cache, cuisine, base, id);
}

double IngredientChi(const PairingCache& cache, const recipe::Cuisine& cuisine,
                     flavor::IngredientId id) {
  BaseScores base = ComputeBase(cache, cuisine);
  if (base.count == 0) return 0.0;
  double mean = base.sum / static_cast<double>(base.count);
  if (mean == 0.0) return 0.0;
  double without = MeanWithoutGivenBase(cache, cuisine, base, id);
  return 100.0 * (mean - without) / std::abs(mean);
}

std::vector<IngredientContribution> AllContributions(
    const PairingCache& cache, const recipe::Cuisine& cuisine,
    const AnalysisOptions& options, culinary::Status* sweep_status) {
  if (sweep_status != nullptr) *sweep_status = culinary::Status::OK();
  std::vector<IngredientContribution> out;
  BaseScores base = ComputeBase(cache, cuisine);
  if (base.count == 0) return out;
  double mean = base.sum / static_cast<double>(base.count);
  if (mean == 0.0) return out;
  const std::vector<flavor::IngredientId>& ingredients =
      cuisine.unique_ingredients();
  out.resize(ingredients.size());
  // One leave-one-out re-score per ingredient, written to its own slot:
  // embarrassingly parallel and order-independent.
  culinary::Status status = ForEachBlock(ingredients.size(), options,
                                         [&](size_t i) {
    flavor::IngredientId id = ingredients[i];
    double without = MeanWithoutGivenBase(cache, cuisine, base, id);
    out[i] = {id, 100.0 * (mean - without) / std::abs(mean)};
  });
  if (sweep_status != nullptr) *sweep_status = std::move(status);
  std::sort(out.begin(), out.end(),
            [](const IngredientContribution& a, const IngredientContribution& b) {
              if (a.chi != b.chi) return a.chi > b.chi;
              return a.id < b.id;
            });
  return out;
}

std::vector<IngredientContribution> TopContributors(
    const PairingCache& cache, const recipe::Cuisine& cuisine, size_t k,
    bool positive, const AnalysisOptions& options,
    culinary::Status* sweep_status) {
  std::vector<IngredientContribution> all =
      AllContributions(cache, cuisine, options, sweep_status);
  std::vector<IngredientContribution> out;
  if (positive) {
    for (size_t i = 0; i < all.size() && out.size() < k; ++i) {
      if (all[i].chi > 0) out.push_back(all[i]);
    }
  } else {
    for (size_t i = all.size(); i > 0 && out.size() < k; --i) {
      if (all[i - 1].chi < 0) out.push_back(all[i - 1]);
    }
  }
  return out;
}

}  // namespace culinary::analysis
