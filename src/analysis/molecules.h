#ifndef CULINARYLAB_ANALYSIS_MOLECULES_H_
#define CULINARYLAB_ANALYSIS_MOLECULES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Molecule-level analyses — the third level of the paper's framework
/// ("flavor molecules, ingredients, and recipes are for a cuisine what
/// letters, words, and sentences are for a language"). These operate on
/// the molecules that reach recipes *through* ingredient profiles.

/// How often each molecule occurs across a cuisine's recipes: a molecule
/// counts once per (recipe, ingredient) use whose profile contains it.
/// Returns (molecule id, count) sorted by descending count (ties by id).
std::vector<std::pair<flavor::MoleculeId, int64_t>> MoleculeUsage(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry);

/// Molecule "breadth": the number of distinct ingredients (within the
/// cuisine) whose profiles contain each molecule. Sorted descending.
std::vector<std::pair<flavor::MoleculeId, int64_t>> MoleculeBreadth(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry);

/// Signature molecules of a cuisine: usage share within the cuisine minus
/// the mean usage share across the other cuisines (the molecule-level
/// analogue of ingredient authenticity).
struct SignatureMolecule {
  flavor::MoleculeId id = -1;
  double share = 0.0;      ///< fraction of the cuisine's molecule uses
  double signature = 0.0;  ///< share − mean share elsewhere
};

/// Top-`k` signature molecules of `cuisines[target]`. InvalidArgument for
/// an out-of-range target or fewer than two cuisines; FailedPrecondition
/// when the target cuisine has no molecule uses.
culinary::Result<std::vector<SignatureMolecule>> TopSignatureMolecules(
    const std::vector<recipe::Cuisine>& cuisines,
    const flavor::FlavorRegistry& registry, size_t target, size_t k);

/// Distribution of pairwise shared-compound counts |F_i ∩ F_j| over all
/// ingredient pairs of the cuisine — the raw material of the food-pairing
/// analysis. Useful for inspecting how overlap mass is distributed
/// (many-zero vs broad overlap spectra).
culinary::Histogram SharedCompoundSpectrum(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_MOLECULES_H_
