#include "analysis/composition.h"

#include <algorithm>
#include <cmath>

namespace culinary::analysis {

std::array<double, flavor::kNumCategories> CategoryComposition(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry) {
  std::array<double, flavor::kNumCategories> shares{};
  int64_t total = 0;
  for (const recipe::Recipe& r : cuisine.recipes()) {
    for (flavor::IngredientId id : r.ingredients) {
      const flavor::Ingredient* ing = registry.Find(id);
      if (ing == nullptr) continue;
      shares[static_cast<size_t>(ing->category)] += 1.0;
      ++total;
    }
  }
  if (total > 0) {
    for (double& s : shares) s /= static_cast<double>(total);
  }
  return shares;
}

std::vector<double> RecipeSizePmf(const recipe::Cuisine& cuisine) {
  return cuisine.size_histogram().DensePmf();
}

std::vector<double> RecipeSizeCdf(const recipe::Cuisine& cuisine) {
  std::vector<double> pmf = RecipeSizePmf(cuisine);
  double acc = 0.0;
  for (double& p : pmf) {
    acc += p;
    p = acc;
  }
  return pmf;
}

std::vector<double> NormalizedPopularity(const recipe::Cuisine& cuisine) {
  auto ranked = cuisine.ByPopularity();
  std::vector<double> out;
  if (ranked.empty() || ranked[0].second <= 0) return out;
  double top = static_cast<double>(ranked[0].second);
  out.reserve(ranked.size());
  for (const auto& [id, freq] : ranked) {
    out.push_back(static_cast<double>(freq) / top);
  }
  return out;
}

std::vector<double> CumulativePopularityShare(const recipe::Cuisine& cuisine) {
  auto ranked = cuisine.ByPopularity();
  std::vector<double> out;
  double total = 0.0;
  for (const auto& [id, freq] : ranked) total += static_cast<double>(freq);
  if (total <= 0.0) return out;
  out.reserve(ranked.size());
  double acc = 0.0;
  for (const auto& [id, freq] : ranked) {
    acc += static_cast<double>(freq);
    out.push_back(acc / total);
  }
  return out;
}

std::pair<double, double> FitZipfMandelbrot(const recipe::Cuisine& cuisine) {
  std::vector<double> pop = NormalizedPopularity(cuisine);
  if (pop.size() < 3) return {0.0, 0.0};

  double best_s = 0.0, best_q = 0.0;
  double best_sse = std::numeric_limits<double>::infinity();
  for (double q = 0.0; q <= 20.0; q += 0.5) {
    // Least squares of log f = a - s log(r+q).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int64_t n = 0;
    for (size_t r = 0; r < pop.size(); ++r) {
      if (pop[r] <= 0.0) continue;
      double x = std::log(static_cast<double>(r + 1) + q);
      double y = std::log(pop[r]);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++n;
    }
    if (n < 3) continue;
    double denom = static_cast<double>(n) * sxx - sx * sx;
    if (std::abs(denom) < 1e-12) continue;
    double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
    double intercept = (sy - slope * sx) / static_cast<double>(n);
    // Sum of squared residuals.
    double sse = 0.0;
    for (size_t r = 0; r < pop.size(); ++r) {
      if (pop[r] <= 0.0) continue;
      double x = std::log(static_cast<double>(r + 1) + q);
      double resid = std::log(pop[r]) - (intercept + slope * x);
      sse += resid * resid;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_s = -slope;
      best_q = q;
    }
  }
  return {best_s, best_q};
}

}  // namespace culinary::analysis
