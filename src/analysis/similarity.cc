#include "analysis/similarity.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace culinary::analysis {

double CuisineIngredientJaccard(const recipe::Cuisine& a,
                                const recipe::Cuisine& b) {
  const auto& xs = a.unique_ingredients();  // both sorted ascending
  const auto& ys = b.unique_ingredients();
  if (xs.empty() && ys.empty()) return 0.0;
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < xs.size() && j < ys.size()) {
    if (xs[i] < ys[j]) {
      ++i;
    } else if (ys[j] < xs[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  size_t uni = xs.size() + ys.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CuisineUsageCosine(const recipe::Cuisine& a, const recipe::Cuisine& b) {
  if (a.num_recipes() == 0 || b.num_recipes() == 0) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [id, freq] : a.frequency()) {
    double fa = static_cast<double>(freq);
    na += fa * fa;
    dot += fa * static_cast<double>(b.FrequencyOf(id));
  }
  for (const auto& [id, freq] : b.frequency()) {
    double fb = static_cast<double>(freq);
    nb += fb * fb;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double CuisineSimilarityScore(const recipe::Cuisine& a,
                              const recipe::Cuisine& b,
                              CuisineSimilarity metric) {
  switch (metric) {
    case CuisineSimilarity::kIngredientJaccard:
      return CuisineIngredientJaccard(a, b);
    case CuisineSimilarity::kUsageCosine:
      return CuisineUsageCosine(a, b);
  }
  return 0.0;
}

std::vector<std::vector<double>> CuisineSimilarityMatrix(
    const std::vector<recipe::Cuisine>& cuisines, CuisineSimilarity metric,
    const AnalysisOptions& options, culinary::Status* sweep_status) {
  const size_t n = cuisines.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  // Row i fills its j >= i tail plus the mirrored column entries; distinct
  // rows never write the same cell, so the sweep is race-free.
  culinary::Status status = ForEachBlock(n, options, [&](size_t i) {
    for (size_t j = i; j < n; ++j) {
      double s = CuisineSimilarityScore(cuisines[i], cuisines[j], metric);
      matrix[i][j] = s;
      matrix[j][i] = s;
    }
  });
  if (sweep_status != nullptr) *sweep_status = std::move(status);
  return matrix;
}

culinary::Result<std::vector<std::pair<recipe::Region, double>>>
NearestCuisines(const std::vector<recipe::Cuisine>& cuisines, size_t target,
                size_t k, CuisineSimilarity metric) {
  if (target >= cuisines.size()) {
    return culinary::Status::InvalidArgument("target index out of range");
  }
  std::vector<std::pair<recipe::Region, double>> scored;
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (c == target) continue;
    scored.emplace_back(
        cuisines[c].region(),
        CuisineSimilarityScore(cuisines[target], cuisines[c], metric));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace culinary::analysis
