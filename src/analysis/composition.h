#ifndef CULINARYLAB_ANALYSIS_COMPOSITION_H_
#define CULINARYLAB_ANALYSIS_COMPOSITION_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "flavor/registry.h"
#include "recipe/cuisine.h"

namespace culinary::analysis {

/// Share of each ingredient category in a cuisine's recipe compositions
/// (Fig 2): the fraction of recipe–ingredient incidences ("uses") falling
/// in each category. Entries sum to 1 for a non-empty cuisine.
std::array<double, flavor::kNumCategories> CategoryComposition(
    const recipe::Cuisine& cuisine, const flavor::FlavorRegistry& registry);

/// Recipe-size series (Fig 3a): P(n_R = s) for s = 0..max observed size.
std::vector<double> RecipeSizePmf(const recipe::Cuisine& cuisine);

/// Cumulative recipe-size series (Fig 3a inset): P(n_R <= s).
std::vector<double> RecipeSizeCdf(const recipe::Cuisine& cuisine);

/// Ingredient popularity curve (Fig 3b): frequency of use of the rank-r
/// ingredient normalized by the most popular ingredient's frequency,
/// for r = 1..#ingredients (element 0 is rank 1 and equals 1.0).
std::vector<double> NormalizedPopularity(const recipe::Cuisine& cuisine);

/// Cumulative popularity share (Fig 3b inset): fraction of all ingredient
/// uses covered by the top r ingredients, r = 1..#ingredients.
std::vector<double> CumulativePopularityShare(const recipe::Cuisine& cuisine);

/// Fits the popularity curve to a Zipf–Mandelbrot form
///   f(r) ∝ 1/(r + q)^s
/// by least squares on log f vs log(r + q) over a small grid of q values.
/// Returns (s, q). Used to verify the "exceptionally consistent scaling"
/// claim across regions.
std::pair<double, double> FitZipfMandelbrot(const recipe::Cuisine& cuisine);

}  // namespace culinary::analysis

#endif  // CULINARYLAB_ANALYSIS_COMPOSITION_H_
