#include "analysis/ntuple.h"

#include <algorithm>

namespace culinary::analysis {

namespace {

/// Iterates all k-subsets of [0, n) via the revolving-door order; calls
/// `visit` with the index vector. n and k are small (n <= ~30, k <= 4).
template <typename Visitor>
void ForEachSubset(size_t n, size_t k, Visitor visit) {
  if (k == 0 || k > n) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    visit(idx);
    // Advance to the next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

double TupleScoreForProfiles(
    const std::vector<const flavor::FlavorProfile*>& profiles, size_t k) {
  const size_t n = profiles.size();
  if (k < 2 || n < k) return 0.0;
  uint64_t total = 0;
  uint64_t subsets = 0;
  ForEachSubset(n, k, [&](const std::vector<size_t>& idx) {
    flavor::FlavorProfile inter = *profiles[idx[0]];
    for (size_t i = 1; i < idx.size() && !inter.empty(); ++i) {
      inter = inter.Intersection(*profiles[idx[i]]);
    }
    total += inter.size();
    ++subsets;
  });
  if (subsets == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(subsets);
}

std::vector<const flavor::FlavorProfile*> ResolveProfiles(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& ids) {
  static const flavor::FlavorProfile& kEmpty = *new flavor::FlavorProfile();
  std::vector<const flavor::FlavorProfile*> out;
  out.reserve(ids.size());
  for (flavor::IngredientId id : ids) {
    const flavor::Ingredient* ing = registry.Find(id);
    out.push_back(ing != nullptr ? &ing->profile : &kEmpty);
  }
  return out;
}

}  // namespace

double RecipeTupleScore(const flavor::FlavorRegistry& registry,
                        const std::vector<flavor::IngredientId>& ids,
                        size_t k) {
  return TupleScoreForProfiles(ResolveProfiles(registry, ids), k);
}

culinary::RunningStats CuisineTupleStats(const flavor::FlavorRegistry& registry,
                                         const recipe::Cuisine& cuisine,
                                         size_t k) {
  culinary::RunningStats stats;
  for (const recipe::Recipe& r : cuisine.recipes()) {
    if (r.ingredients.size() < k) continue;
    stats.Add(RecipeTupleScore(registry, r.ingredients, k));
  }
  return stats;
}

culinary::Result<TupleComparison> CompareTupleAgainstRandom(
    const flavor::FlavorRegistry& registry, const recipe::Cuisine& cuisine,
    size_t k, size_t num_null_recipes, uint64_t seed) {
  if (k < 2) {
    return culinary::Status::InvalidArgument("tuple order k must be >= 2");
  }
  const std::vector<flavor::IngredientId>& pool = cuisine.unique_ingredients();
  if (pool.size() < k) {
    return culinary::Status::FailedPrecondition(
        "cuisine has fewer ingredients than k");
  }
  culinary::RunningStats real = CuisineTupleStats(registry, cuisine, k);
  if (real.count() == 0) {
    return culinary::Status::FailedPrecondition(
        "no recipe has >= k ingredients");
  }

  // Uniform random cuisine: empirical size distribution, uniform picks.
  const culinary::Histogram& hist = cuisine.size_histogram();
  std::vector<double> weights;
  for (int64_t v = 0; v <= hist.max_value(); ++v) {
    // Sizes below k cannot produce an order-k tuple; match the real-side
    // filter by only sampling sizes >= k.
    weights.push_back(v >= static_cast<int64_t>(k)
                          ? static_cast<double>(hist.CountAt(v))
                          : 0.0);
  }
  culinary::AliasSampler size_sampler(weights);
  if (!size_sampler.valid()) {
    return culinary::Status::FailedPrecondition(
        "size distribution has no recipes with >= k ingredients");
  }

  culinary::Rng rng(seed ^ (static_cast<uint64_t>(k) << 48));
  culinary::RunningStats null_stats;
  for (size_t i = 0; i < num_null_recipes; ++i) {
    size_t size = size_sampler.Sample(rng);
    size = std::min(size, pool.size());
    std::vector<size_t> picks = rng.SampleWithoutReplacement(pool.size(), size);
    std::vector<flavor::IngredientId> ids;
    ids.reserve(picks.size());
    for (size_t p : picks) ids.push_back(pool[p]);
    null_stats.Add(RecipeTupleScore(registry, ids, k));
  }

  TupleComparison out;
  out.k = k;
  out.real_mean = real.mean();
  out.null_mean = null_stats.mean();
  out.null_stddev = null_stats.stddev();
  out.null_count = null_stats.count();
  out.z_score = culinary::ZScore(out.real_mean, out.null_mean, out.null_stddev,
                                 out.null_count);
  return out;
}

}  // namespace culinary::analysis
