#include "analysis/perturb.h"

#include <algorithm>
#include <vector>

namespace culinary::analysis {

recipe::Cuisine SubsampleCuisine(const recipe::Cuisine& cuisine, double keep,
                                 culinary::Rng& rng) {
  keep = std::clamp(keep, 0.0, 1.0);
  std::vector<recipe::Recipe> kept;
  for (const recipe::Recipe& r : cuisine.recipes()) {
    if (rng.NextBernoulli(keep)) kept.push_back(r);
  }
  return recipe::Cuisine(cuisine.region(), std::move(kept));
}

flavor::FlavorRegistry DiluteProfiles(const flavor::FlavorRegistry& registry,
                                      double drop, culinary::Rng& rng) {
  drop = std::clamp(drop, 0.0, 1.0);
  flavor::FlavorRegistry out;
  for (size_t m = 0; m < registry.num_molecules(); ++m) {
    auto mol = registry.GetMolecule(static_cast<flavor::MoleculeId>(m));
    if (mol.ok()) {
      out.AddMolecule(mol->name, mol->descriptors).status();
    }
  }
  // RestoreIngredient preserves ids, tombstones and metadata exactly.
  for (size_t i = 0; i < registry.num_ingredient_slots(); ++i) {
    auto ing = registry.GetIngredient(static_cast<flavor::IngredientId>(i),
                                      /*include_removed=*/true);
    if (!ing.ok()) continue;
    flavor::Ingredient copy = *ing;
    std::vector<flavor::MoleculeId> kept;
    for (flavor::MoleculeId mid : copy.profile.ids()) {
      if (!rng.NextBernoulli(drop)) kept.push_back(mid);
    }
    copy.profile = flavor::FlavorProfile(std::move(kept));
    out.RestoreIngredient(copy).ToString();
  }
  return out;
}

}  // namespace culinary::analysis
