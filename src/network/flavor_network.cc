#include "network/flavor_network.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/pairing.h"

namespace culinary::network {

culinary::Result<FlavorNetwork> FlavorNetwork::Build(
    const flavor::FlavorRegistry& registry,
    const std::vector<flavor::IngredientId>& ingredients,
    size_t min_shared_compounds) {
  if (ingredients.empty()) {
    return culinary::Status::InvalidArgument("no ingredients given");
  }
  if (min_shared_compounds == 0) {
    return culinary::Status::InvalidArgument(
        "min_shared_compounds must be >= 1");
  }
  FlavorNetwork net;
  net.ids_ = ingredients;
  net.graph_ = Graph(ingredients.size());

  analysis::PairingCache cache(registry, ingredients);
  for (uint32_t a = 0; a + 1 < ingredients.size(); ++a) {
    for (uint32_t b = a + 1; b < ingredients.size(); ++b) {
      uint32_t shared = cache.SharedByDense(a, b);
      if (shared >= min_shared_compounds) {
        net.graph_.AddEdge(a, b, static_cast<double>(shared));
      }
    }
  }
  return net;
}

int FlavorNetwork::NodeOf(flavor::IngredientId id) const {
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return static_cast<int>(i);
  }
  return -1;
}

Graph FlavorNetwork::ExtractBackbone(double alpha) const {
  Graph backbone(graph_.num_nodes());
  for (const Graph::Edge& e : graph_.edges()) {
    bool keep = false;
    for (uint32_t endpoint : {e.a, e.b}) {
      size_t k = graph_.Degree(endpoint);
      if (k <= 1) {
        keep = true;  // leaves keep their only edge
        break;
      }
      double s = graph_.Strength(endpoint);
      if (s <= 0.0) continue;
      double p = std::pow(1.0 - e.weight / s, static_cast<double>(k - 1));
      if (p < alpha) {
        keep = true;
        break;
      }
    }
    if (keep) backbone.AddEdge(e.a, e.b, e.weight);
  }
  return backbone;
}

std::vector<std::pair<flavor::IngredientId, double>> IngredientPrevalence(
    const recipe::Cuisine& cuisine) {
  std::vector<std::pair<flavor::IngredientId, double>> out;
  if (cuisine.num_recipes() == 0) return out;
  double n = static_cast<double>(cuisine.num_recipes());
  out.reserve(cuisine.unique_ingredients().size());
  for (flavor::IngredientId id : cuisine.unique_ingredients()) {
    out.emplace_back(id, static_cast<double>(cuisine.FrequencyOf(id)) / n);
  }
  return out;
}

culinary::Result<std::vector<AuthenticIngredient>> MostAuthenticIngredients(
    const std::vector<recipe::Cuisine>& cuisines, size_t target, size_t k) {
  if (target >= cuisines.size()) {
    return culinary::Status::InvalidArgument("target index out of range");
  }
  if (cuisines.size() < 2) {
    return culinary::Status::InvalidArgument(
        "authenticity needs at least two cuisines");
  }
  const recipe::Cuisine& mine = cuisines[target];
  if (mine.num_recipes() == 0) {
    return culinary::Status::FailedPrecondition("target cuisine is empty");
  }

  std::vector<AuthenticIngredient> scored;
  scored.reserve(mine.unique_ingredients().size());
  double my_n = static_cast<double>(mine.num_recipes());
  for (flavor::IngredientId id : mine.unique_ingredients()) {
    double mine_prev = static_cast<double>(mine.FrequencyOf(id)) / my_n;
    double other_sum = 0.0;
    size_t other_count = 0;
    for (size_t c = 0; c < cuisines.size(); ++c) {
      if (c == target || cuisines[c].num_recipes() == 0) continue;
      other_sum += static_cast<double>(cuisines[c].FrequencyOf(id)) /
                   static_cast<double>(cuisines[c].num_recipes());
      ++other_count;
    }
    double other_mean =
        other_count == 0 ? 0.0 : other_sum / static_cast<double>(other_count);
    scored.push_back({id, mine_prev, mine_prev - other_mean});
  }
  std::sort(scored.begin(), scored.end(),
            [](const AuthenticIngredient& a, const AuthenticIngredient& b) {
              if (a.authenticity != b.authenticity) {
                return a.authenticity > b.authenticity;
              }
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace culinary::network
