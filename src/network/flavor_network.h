#ifndef CULINARYLAB_NETWORK_FLAVOR_NETWORK_H_
#define CULINARYLAB_NETWORK_FLAVOR_NETWORK_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "flavor/registry.h"
#include "network/graph.h"
#include "recipe/cuisine.h"

namespace culinary::network {

/// The flavor network of Ahn et al. [6] — the framework the reproduced
/// paper builds on: an undirected weighted graph whose nodes are
/// ingredients and whose edge weights are the number of shared flavor
/// compounds.
class FlavorNetwork {
 public:
  /// Builds the network over `ingredients`, connecting pairs sharing at
  /// least `min_shared_compounds` compounds (≥ 1). Profile-less
  /// ingredients become isolated nodes.
  static culinary::Result<FlavorNetwork> Build(
      const flavor::FlavorRegistry& registry,
      const std::vector<flavor::IngredientId>& ingredients,
      size_t min_shared_compounds = 1);

  const Graph& graph() const { return graph_; }

  /// Ingredient at dense node index.
  flavor::IngredientId IdAt(uint32_t node) const { return ids_[node]; }

  /// Dense node index of an ingredient id, or -1.
  int NodeOf(flavor::IngredientId id) const;

  /// Multiscale backbone (disparity filter, Serrano et al., as used for
  /// the published flavor-network visualization): keeps edge (i,j) when,
  /// for either endpoint, the probability of seeing an edge at least this
  /// strong under uniform random weight splitting is below `alpha`:
  ///   p_ij = (1 − w_ij / s_i)^(k_i − 1) < alpha.
  /// Degree-1 nodes keep their single edge. Returns a new graph on the
  /// same node ids.
  Graph ExtractBackbone(double alpha = 0.05) const;

 private:
  FlavorNetwork() : graph_(0) {}

  Graph graph_;
  std::vector<flavor::IngredientId> ids_;
};

/// Prevalence and authenticity metrics (Ahn et al.'s cuisine analysis,
/// directly applicable to this paper's per-region cuisines).
///
/// Prevalence of ingredient i in cuisine c:  P_i^c = n_i^c / N_c, the
/// fraction of the cuisine's recipes that use i. Authenticity is the
/// relative prevalence  p_i^c = P_i^c − ⟨P_i^{c'}⟩_{c'≠c}: positive when
/// the cuisine uses the ingredient more than the other cuisines do.
struct AuthenticIngredient {
  flavor::IngredientId id = flavor::kInvalidIngredient;
  double prevalence = 0.0;    ///< P_i^c
  double authenticity = 0.0;  ///< p_i^c
};

/// Prevalence of every ingredient of `cuisine`.
std::vector<std::pair<flavor::IngredientId, double>> IngredientPrevalence(
    const recipe::Cuisine& cuisine);

/// Top-`k` most authentic ingredients of `cuisines[target]` against the
/// other cuisines. Returns InvalidArgument for an out-of-range target or
/// fewer than two cuisines.
culinary::Result<std::vector<AuthenticIngredient>> MostAuthenticIngredients(
    const std::vector<recipe::Cuisine>& cuisines, size_t target, size_t k);

}  // namespace culinary::network

#endif  // CULINARYLAB_NETWORK_FLAVOR_NETWORK_H_
