#ifndef CULINARYLAB_NETWORK_GRAPH_H_
#define CULINARYLAB_NETWORK_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace culinary::network {

/// A simple undirected weighted graph over dense node ids [0, n).
///
/// Backing structure for the flavor network (nodes = ingredients, edge
/// weight = shared flavor compounds). Parallel edges are rejected;
/// self-loops are rejected. Adjacency is kept sorted by neighbor for
/// deterministic iteration.
class Graph {
 public:
  struct Edge {
    uint32_t a = 0;
    uint32_t b = 0;
    double weight = 0.0;
  };

  struct Neighbor {
    uint32_t node = 0;
    double weight = 0.0;
  };

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Graph(size_t num_nodes);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge; returns false (and ignores the call) for
  /// self-loops, out-of-range endpoints, non-positive weights, or
  /// duplicate edges.
  bool AddEdge(uint32_t a, uint32_t b, double weight);

  /// True iff the edge exists.
  bool HasEdge(uint32_t a, uint32_t b) const;

  /// Weight of an edge (0 when absent).
  double EdgeWeight(uint32_t a, uint32_t b) const;

  /// Degree (number of neighbors) of `node`.
  size_t Degree(uint32_t node) const { return adjacency_[node].size(); }

  /// Strength (sum of incident edge weights) of `node`.
  double Strength(uint32_t node) const;

  /// Sorted neighbors of `node`.
  const std::vector<Neighbor>& Neighbors(uint32_t node) const {
    return adjacency_[node];
  }

  /// All edges in insertion order.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Local clustering coefficient of `node` (fraction of neighbor pairs
  /// that are themselves connected); 0 for degree < 2.
  double ClusteringCoefficient(uint32_t node) const;

  /// Mean local clustering coefficient over all nodes.
  double AverageClustering() const;

  /// Connected-component label per node (labels are 0-based, assigned in
  /// node order).
  std::vector<uint32_t> ConnectedComponents() const;

  /// Number of connected components.
  size_t NumComponents() const;

  /// Degree histogram: element d is the number of nodes with degree d.
  std::vector<size_t> DegreeHistogram() const;

  /// Unweighted BFS hop distances from `source`; unreachable nodes get
  /// SIZE_MAX.
  std::vector<size_t> BfsDistances(uint32_t source) const;

  /// Mean hop distance over reachable pairs, estimated from BFS trees
  /// rooted at `num_sources` evenly spaced nodes (clamped to num_nodes()).
  /// Returns 0 for graphs with no reachable pairs. Together with
  /// `AverageClustering` this is the classic small-world diagnostic.
  double EstimateAveragePathLength(size_t num_sources = 32) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace culinary::network

#endif  // CULINARYLAB_NETWORK_GRAPH_H_
