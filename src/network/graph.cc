#include "network/graph.h"

#include <algorithm>

namespace culinary::network {

Graph::Graph(size_t num_nodes) : adjacency_(num_nodes) {}

bool Graph::AddEdge(uint32_t a, uint32_t b, double weight) {
  if (a == b) return false;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  if (!(weight > 0.0)) return false;
  if (HasEdge(a, b)) return false;

  auto insert_sorted = [this](uint32_t from, uint32_t to, double w) {
    auto& nbrs = adjacency_[from];
    Neighbor n{to, w};
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), n,
                               [](const Neighbor& x, const Neighbor& y) {
                                 return x.node < y.node;
                               });
    nbrs.insert(it, n);
  };
  insert_sorted(a, b, weight);
  insert_sorted(b, a, weight);
  edges_.push_back({a, b, weight});
  return true;
}

bool Graph::HasEdge(uint32_t a, uint32_t b) const {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  const auto& nbrs = adjacency_[a];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), Neighbor{b, 0.0},
                             [](const Neighbor& x, const Neighbor& y) {
                               return x.node < y.node;
                             });
  return it != nbrs.end() && it->node == b;
}

double Graph::EdgeWeight(uint32_t a, uint32_t b) const {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return 0.0;
  const auto& nbrs = adjacency_[a];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), Neighbor{b, 0.0},
                             [](const Neighbor& x, const Neighbor& y) {
                               return x.node < y.node;
                             });
  return (it != nbrs.end() && it->node == b) ? it->weight : 0.0;
}

double Graph::Strength(uint32_t node) const {
  double total = 0.0;
  for (const Neighbor& n : adjacency_[node]) total += n.weight;
  return total;
}

double Graph::ClusteringCoefficient(uint32_t node) const {
  const auto& nbrs = adjacency_[node];
  const size_t k = nbrs.size();
  if (k < 2) return 0.0;
  size_t links = 0;
  for (size_t i = 0; i + 1 < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (HasEdge(nbrs[i].node, nbrs[j].node)) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double Graph::AverageClustering() const {
  if (adjacency_.empty()) return 0.0;
  double total = 0.0;
  for (uint32_t v = 0; v < adjacency_.size(); ++v) {
    total += ClusteringCoefficient(v);
  }
  return total / static_cast<double>(adjacency_.size());
}

std::vector<uint32_t> Graph::ConnectedComponents() const {
  const uint32_t kUnseen = static_cast<uint32_t>(-1);
  std::vector<uint32_t> label(adjacency_.size(), kUnseen);
  uint32_t next = 0;
  std::vector<uint32_t> stack;
  for (uint32_t start = 0; start < adjacency_.size(); ++start) {
    if (label[start] != kUnseen) continue;
    label[start] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      for (const Neighbor& n : adjacency_[v]) {
        if (label[n.node] == kUnseen) {
          label[n.node] = next;
          stack.push_back(n.node);
        }
      }
    }
    ++next;
  }
  return label;
}

size_t Graph::NumComponents() const {
  auto labels = ConnectedComponents();
  size_t max_label = 0;
  for (uint32_t l : labels) max_label = std::max<size_t>(max_label, l + 1);
  return labels.empty() ? 0 : max_label;
}

std::vector<size_t> Graph::BfsDistances(uint32_t source) const {
  std::vector<size_t> dist(adjacency_.size(), static_cast<size_t>(-1));
  if (source >= adjacency_.size()) return dist;
  dist[source] = 0;
  std::vector<uint32_t> frontier{source};
  std::vector<uint32_t> next;
  size_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (uint32_t v : frontier) {
      for (const Neighbor& n : adjacency_[v]) {
        if (dist[n.node] == static_cast<size_t>(-1)) {
          dist[n.node] = depth;
          next.push_back(n.node);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

double Graph::EstimateAveragePathLength(size_t num_sources) const {
  if (adjacency_.empty()) return 0.0;
  num_sources = std::max<size_t>(1, std::min(num_sources, adjacency_.size()));
  size_t stride = adjacency_.size() / num_sources;
  if (stride == 0) stride = 1;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t s = 0; s < adjacency_.size(); s += stride) {
    std::vector<size_t> dist = BfsDistances(static_cast<uint32_t>(s));
    for (size_t v = 0; v < dist.size(); ++v) {
      if (v == s || dist[v] == static_cast<size_t>(-1)) continue;
      total += static_cast<double>(dist[v]);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

std::vector<size_t> Graph::DegreeHistogram() const {
  size_t max_degree = 0;
  for (const auto& nbrs : adjacency_) {
    max_degree = std::max(max_degree, nbrs.size());
  }
  std::vector<size_t> hist(max_degree + 1, 0);
  for (const auto& nbrs : adjacency_) ++hist[nbrs.size()];
  return hist;
}

}  // namespace culinary::network
