#ifndef CULINARYLAB_OBS_TRACE_H_
#define CULINARYLAB_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // for Enabled()

namespace culinary::obs {

/// Scoped tracing for phase-level attribution (world generation, cache
/// builds, null-model sweeps, per-sweep block groups).
///
/// `TraceSpan` is RAII over `std::chrono::steady_clock`: construction
/// stamps the start, destruction records one complete event into the
/// process-wide `TraceSink`. Spans follow the same rules as metrics: they
/// never alter control flow or RNG state (determinism-safe), and when
/// observability is disabled a span is two branch instructions — no clock
/// read, no allocation, no lock.
///
/// The sink is a bounded ring: once `capacity` events have been recorded
/// the oldest are overwritten and counted in `dropped()`. Recording takes a
/// mutex — spans are phase/block granular (thousands per run, not
/// millions), so contention is negligible next to the work they measure.

/// One completed span. Timestamps are microseconds since the process trace
/// epoch (the first use of the sink), from `steady_clock`.
struct TraceEvent {
  std::string name;      ///< e.g. "pairing.cache_build"
  std::string category;  ///< coarse grouping, e.g. "analysis"
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;  ///< small dense id per OS thread
};

/// Bounded ring buffer of completed trace events.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit TraceSink(size_t capacity = kDefaultCapacity);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// The process-wide sink used by `TraceSpan`.
  static TraceSink& Default();

  /// Appends one event, overwriting the oldest when full.
  void Record(TraceEvent event);

  /// Events in recording order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;

  /// Drops all recorded events (tests).
  void Clear();

  /// Microseconds since the trace epoch, for manual event construction.
  static uint64_t NowMicros();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        ///< ring slot the next event lands in
  uint64_t recorded_ = 0;  ///< total events ever recorded
};

/// RAII span; records into `TraceSink::Default()` on destruction.
/// Inactive (and free of clock reads) when observability is disabled at
/// construction time.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     std::string_view category = "app");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent).
  void End();

  /// Elapsed milliseconds so far (0 when inactive), for callers that also
  /// feed a duration histogram.
  double ElapsedMs() const;

 private:
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

/// Renders events in the chrome://tracing / Perfetto "trace event" JSON
/// format: `{"traceEvents": [{"name": ..., "ph": "X", "ts": ..., ...}]}`.
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

/// Snapshots `sink` and writes chrome://tracing JSON to `path`. Returns
/// false and fills `*error` (when non-null) on IO failure.
bool WriteTraceJsonFile(const TraceSink& sink, const std::string& path,
                        std::string* error = nullptr);

}  // namespace culinary::obs

#endif  // CULINARYLAB_OBS_TRACE_H_
