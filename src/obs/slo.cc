#include "obs/slo.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

namespace culinary::obs {

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (std::isinf(v)) {
    os << (v > 0 ? "\"inf\"" : "\"-inf\"");
    return;
  }
  if (std::isnan(v)) {
    os << "\"nan\"";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

double BurnRate(uint64_t bad, uint64_t total, double availability_target) {
  if (total == 0) return 0.0;
  const double budget = 1.0 - availability_target;
  if (budget <= 0.0) {
    // A 100% target has no budget; any badness is an infinite burn.
    return bad == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / budget;
}

}  // namespace

SloMonitor::SloMonitor(SloWindowConfig config) : config_(config) {}

void SloMonitor::SetObjective(SloObjective objective) {
  std::lock_guard<std::mutex> lock(mutex_);
  Endpoint& ep = GetOrCreate(objective.name);
  ep.objective = std::move(objective);
}

SloMonitor::Endpoint& SloMonitor::GetOrCreate(std::string_view name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    Endpoint ep;
    ep.objective.name = std::string(name);
    it = endpoints_.emplace(std::string(name), std::move(ep)).first;
  }
  return it->second;
}

void SloMonitor::Record(std::string_view name, double latency_us, bool ok,
                        int64_t t_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  Endpoint& ep = GetOrCreate(name);
  const bool bad = !ok || (ep.objective.latency_threshold_us > 0.0 &&
                           latency_us > ep.objective.latency_threshold_us);
  if (!ep.buckets.empty() && ep.buckets.back().second == t_s) {
    ++ep.buckets.back().total;
    if (bad) ++ep.buckets.back().bad;
  } else {
    Bucket b;
    b.second = t_s;
    b.total = 1;
    b.bad = bad ? 1 : 0;
    ep.buckets.push_back(b);
  }
  Prune(ep, t_s);
}

void SloMonitor::Prune(Endpoint& ep, int64_t now_s) {
  const int64_t horizon = now_s - config_.slow_window_s;
  while (!ep.buckets.empty() && ep.buckets.front().second <= horizon) {
    ep.buckets.pop_front();
  }
}

SloEndpointStatus SloMonitor::EvaluateLocked(const std::string& name,
                                             Endpoint& ep, int64_t now_s) {
  SloEndpointStatus status;
  status.name = name;
  const int64_t fast_horizon = now_s - config_.fast_window_s;
  const int64_t slow_horizon = now_s - config_.slow_window_s;
  for (const Bucket& b : ep.buckets) {
    if (b.second <= slow_horizon || b.second > now_s) continue;
    status.slow_total += b.total;
    status.slow_bad += b.bad;
    if (b.second > fast_horizon) {
      status.fast_total += b.total;
      status.fast_bad += b.bad;
    }
  }
  const double target = ep.objective.availability_target;
  status.fast_burn = BurnRate(status.fast_bad, status.fast_total, target);
  status.slow_burn = BurnRate(status.slow_bad, status.slow_total, target);
  status.fast_alert = status.fast_burn >= config_.fast_burn_threshold;
  status.slow_alert = status.slow_burn >= config_.slow_burn_threshold;
  status.alert = status.fast_alert && status.slow_alert;
  if (status.alert && !ep.alert_active) ++alerts_fired_;
  ep.alert_active = status.alert;
  return status;
}

std::vector<SloEndpointStatus> SloMonitor::Evaluate(int64_t now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloEndpointStatus> out;
  out.reserve(endpoints_.size());
  for (auto& [name, ep] : endpoints_) {
    out.push_back(EvaluateLocked(name, ep, now_s));
  }
  return out;
}

void SloMonitor::ExportGauges(MetricsRegistry& registry, int64_t now_s) {
  for (const SloEndpointStatus& s : Evaluate(now_s)) {
    registry.GetGauge("slo." + s.name + ".fast_burn").Set(s.fast_burn);
    registry.GetGauge("slo." + s.name + ".slow_burn").Set(s.slow_burn);
    registry.GetGauge("slo." + s.name + ".alert").Set(s.alert ? 1.0 : 0.0);
  }
}

std::string SloMonitor::ToJson(int64_t now_s) {
  std::vector<SloEndpointStatus> statuses = Evaluate(now_s);
  // Objectives and the alert counter are read after Evaluate under a fresh
  // lock; both only grow/latch, so the JSON stays self-consistent.
  std::ostringstream os;
  os << "{\n  \"config\": {\"fast_window_s\": " << config_.fast_window_s
     << ", \"slow_window_s\": " << config_.slow_window_s
     << ", \"fast_burn_threshold\": ";
  AppendJsonDouble(os, config_.fast_burn_threshold);
  os << ", \"slow_burn_threshold\": ";
  AppendJsonDouble(os, config_.slow_burn_threshold);
  os << "},\n  \"endpoints\": {";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloEndpointStatus& s = statuses[i];
    double latency_threshold_us = 0.0;
    double availability_target = 0.999;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = endpoints_.find(s.name);
      if (it != endpoints_.end()) {
        latency_threshold_us = it->second.objective.latency_threshold_us;
        availability_target = it->second.objective.availability_target;
      }
    }
    os << (i == 0 ? "\n    " : ",\n    ");
    AppendJsonString(os, s.name);
    os << ": {\"latency_threshold_us\": ";
    AppendJsonDouble(os, latency_threshold_us);
    os << ", \"availability_target\": ";
    AppendJsonDouble(os, availability_target);
    os << ", \"fast_total\": " << s.fast_total
       << ", \"fast_bad\": " << s.fast_bad
       << ", \"slow_total\": " << s.slow_total
       << ", \"slow_bad\": " << s.slow_bad << ", \"fast_burn\": ";
    AppendJsonDouble(os, s.fast_burn);
    os << ", \"slow_burn\": ";
    AppendJsonDouble(os, s.slow_burn);
    os << ", \"fast_alert\": " << (s.fast_alert ? "true" : "false")
       << ", \"slow_alert\": " << (s.slow_alert ? "true" : "false")
       << ", \"alert\": " << (s.alert ? "true" : "false") << "}";
  }
  os << (statuses.empty() ? "" : "\n  ") << "},\n  \"alerts_fired\": "
     << alerts_fired() << "\n}";
  return os.str();
}

uint64_t SloMonitor::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alerts_fired_;
}

}  // namespace culinary::obs
