#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

namespace culinary::obs {

namespace internal {

std::atomic<int> g_enabled{-1};

bool InitEnabledSlow() {
  const char* env = std::getenv("CULINARYLAB_OBS");
  const bool on = env != nullptr &&
                  (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
                   std::strcmp(env, "true") == 0 || std::strcmp(env, "ON") == 0);
  // First writer wins; a concurrent SetEnabled may already have stored.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return index;
}

namespace {

/// Relaxed CAS add/min/max on atomic<double>; plain fetch_add on
/// atomic<double> is C++20 but not yet universally lowered well, and
/// min/max have no atomic primitive at all.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

size_t HistogramMetric::BucketFor(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN samples
  if (std::isinf(value)) return kNumBuckets - 1;  // frexp leaves exp unset
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  if (exp <= 0) return 0;
  return std::min<size_t>(static_cast<size_t>(exp), kNumBuckets - 1);
}

size_t HistogramMetric::BucketForU64(uint64_t value) {
  // 0 must land in bucket 0 ("samples < 1"), and it must never reach the
  // leading-zero count: clz(0) is undefined for the builtins and
  // countl_zero(0) == 64 would compute bucket "64 - 64 + ..." wrongly.
  if (value == 0) return 0;
  // value in [2^(k-1), 2^k) → bucket k, matching the frexp path:
  // floor(log2(value)) = 63 - countl_zero(value), bucket = floor(log2)+1.
  const size_t bucket = 64 - static_cast<size_t>(std::countl_zero(value));
  return std::min(bucket, kNumBuckets - 1);
}

double HistogramMetric::BucketUpperBound(size_t k) {
  if (k >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(k));
}

void HistogramMetric::ObserveUnchecked(double value) {
  Shard& shard = shards_[internal::ShardIndex()];
  // A shard's min/max seed from the first sample; the count==0 window is
  // per-shard and guarded by the CAS loops (a racing first sample simply
  // both run the CAS, which converges to the true extremum).
  const uint64_t prior = shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(shard.sum, value);
  if (prior == 0) {
    shard.min.store(value, std::memory_order_relaxed);
    shard.max.store(value, std::memory_order_relaxed);
  }
  internal::AtomicMin(shard.min, value);
  internal::AtomicMax(shard.max, value);
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

void HistogramMetric::ObserveU64Unchecked(uint64_t value) {
  Shard& shard = shards_[internal::ShardIndex()];
  const double as_double = static_cast<double>(value);
  const uint64_t prior = shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(shard.sum, as_double);
  if (prior == 0) {
    shard.min.store(as_double, std::memory_order_relaxed);
    shard.max.store(as_double, std::memory_order_relaxed);
  }
  internal::AtomicMin(shard.min, as_double);
  internal::AtomicMax(shard.max, as_double);
  shard.buckets[BucketForU64(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramMetric::Snapshot HistogramMetric::Snap() const {
  Snapshot snap;
  std::array<uint64_t, kNumBuckets> merged{};
  bool any = false;
  for (const Shard& shard : shards_) {
    const uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    if (!any) {
      snap.min = lo;
      snap.max = hi;
      any = true;
    } else {
      snap.min = std::min(snap.min, lo);
      snap.max = std::max(snap.max, hi);
    }
    for (size_t k = 0; k < kNumBuckets; ++k) {
      merged[k] += shard.buckets[k].load(std::memory_order_relaxed);
    }
  }
  for (size_t k = 0; k < kNumBuckets; ++k) {
    if (merged[k] != 0) snap.buckets.emplace_back(BucketUpperBound(k), merged[k]);
  }
  return snap;
}

MetricsRegistry::~MetricsRegistry() {
  for (Counter* c : counters_) delete c;
  for (Gauge* g : gauges_) delete g;
  for (HistogramMetric* h : histograms_) delete h;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked Meyers singleton: instrumented destructors of other static
  // objects may still increment counters during shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter* c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.push_back(new Counter(std::string(name)));
  return *counters_.back();
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Gauge* g : gauges_) {
    if (g->name() == name) return *g;
  }
  gauges_.push_back(new Gauge(std::string(name)));
  return *gauges_.back();
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HistogramMetric* h : histograms_) {
    if (h->name() == name) return *h;
  }
  histograms_.push_back(new HistogramMetric(std::string(name)));
  return *histograms_.back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy the metric pointers under the lock, then read shards lock-free:
  // metrics are never erased, so the pointers stay valid.
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<HistogramMetric*> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
  }
  MetricsSnapshot snap;
  for (const Counter* c : counters) {
    snap.counters.emplace_back(c->name(), c->Value());
  }
  for (const Gauge* g : gauges) {
    snap.gauges.emplace_back(g->name(), g->Value());
  }
  for (const HistogramMetric* h : histograms) {
    snap.histograms.emplace_back(h->name(), h->Snap());
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (std::isinf(v)) {
    os << (v > 0 ? "\"inf\"" : "\"-inf\"");
    return;
  }
  if (std::isnan(v)) {
    os << "\"nan\"";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    AppendJsonString(os, snapshot.counters[i].first);
    os << ": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    AppendJsonString(os, snapshot.gauges[i].first);
    os << ": ";
    AppendJsonDouble(os, snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    AppendJsonString(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    AppendJsonDouble(os, h.sum);
    os << ", \"mean\": ";
    AppendJsonDouble(os, h.mean());
    os << ", \"min\": ";
    AppendJsonDouble(os, h.min);
    os << ", \"max\": ";
    AppendJsonDouble(os, h.max);
    os << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"le\": ";
      AppendJsonDouble(os, h.buckets[b].first);
      os << ", \"count\": " << h.buckets[b].second << "}";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool WriteMetricsJsonFile(const MetricsRegistry& registry,
                          const std::string& path, std::string* error) {
  const std::string json = MetricsToJson(registry.Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) {
    if (error != nullptr) *error = "short write to " + path;
  }
  return ok;
}

}  // namespace culinary::obs
