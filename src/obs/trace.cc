#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <sstream>

namespace culinary::obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t DenseThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t ToMicros(std::chrono::steady_clock::time_point t) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - TraceEpoch())
          .count());
}

}  // namespace

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceSink& TraceSink::Default() {
  // Leaked, like MetricsRegistry::Default(): spans in static destructors
  // must find a live sink.
  static TraceSink* sink = new TraceSink();
  return *sink;
}

uint64_t TraceSink::NowMicros() {
  return ToMicros(std::chrono::steady_clock::now());
}

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_ % capacity_] = std::move(event);
  }
  ++next_;
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: oldest surviving event sits at the next overwrite slot.
  for (size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

TraceSpan::TraceSpan(std::string_view name, std::string_view category) {
  if (!Enabled()) return;
  name_.assign(name);
  category_.assign(category);
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = ToMicros(start_);
  event.duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  event.thread_id = DenseThreadId();
  TraceSink::Default().Record(std::move(event));
}

double TraceSpan::ElapsedMs() const {
  if (!active_) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  // Complete events ("ph": "X") with microsecond timestamps — the format
  // chrome://tracing and Perfetto load directly.
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": ";
    AppendEscaped(os, e.name);
    os << ", \"cat\": ";
    AppendEscaped(os, e.category);
    os << ", \"ph\": \"X\", \"ts\": " << e.start_us
       << ", \"dur\": " << e.duration_us << ", \"pid\": 1, \"tid\": "
       << e.thread_id << "}";
  }
  os << (events.empty() ? "" : "\n") << "]}\n";
  return os.str();
}

bool WriteTraceJsonFile(const TraceSink& sink, const std::string& path,
                        std::string* error) {
  const std::string json = TraceToChromeJson(sink.Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace culinary::obs
