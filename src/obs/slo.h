#ifndef CULINARYLAB_OBS_SLO_H_
#define CULINARYLAB_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace culinary::obs {

/// What "good" means for one endpoint. A request is *bad* when it fails
/// outright or (if `latency_threshold_us > 0`) completes slower than the
/// latency objective — the standard way to fold a latency SLO into an
/// availability-style error budget.
struct SloObjective {
  std::string name;
  /// Latency objective in microseconds; 0 disables the latency criterion
  /// and only outright failures burn budget.
  double latency_threshold_us = 0.0;
  /// Fraction of requests that must be good (0.999 = 0.1% error budget).
  double availability_target = 0.999;
};

/// Multi-window burn-rate alerting configuration (Google SRE workbook
/// shape). Burn rate is `bad_fraction / (1 - availability_target)`: burn 1
/// consumes the budget exactly over the SLO period, burn 14.4 eats a
/// 30-day budget in ~2 hours. The *fast* window catches sharp outages
/// quickly; the *slow* window confirms the problem is sustained before the
/// combined alert fires, so a brief blip trips the fast window only and
/// never pages.
struct SloWindowConfig {
  int64_t fast_window_s = 300;
  int64_t slow_window_s = 3600;
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
};

/// Point-in-time evaluation of one endpoint's burn rates.
struct SloEndpointStatus {
  std::string name;
  uint64_t fast_total = 0;
  uint64_t fast_bad = 0;
  uint64_t slow_total = 0;
  uint64_t slow_bad = 0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool fast_alert = false;  ///< fast_burn >= fast_burn_threshold
  bool slow_alert = false;  ///< slow_burn >= slow_burn_threshold
  bool alert = false;       ///< both windows tripped: page
};

/// Tracks per-endpoint good/bad requests in per-second buckets and computes
/// multi-window burn rates against declared objectives.
///
/// Time is supplied by the caller (`t_s` / `now_s`, seconds on any
/// monotonic clock), never read internally — the serving layer feeds a
/// steady clock and the unit tests feed a synthetic one, so alert
/// transitions replay deterministically. Buckets older than the slow
/// window are pruned on every `Record`, bounding memory at
/// O(endpoints * slow_window_s).
///
/// Layering: obs sits below common, so this class reports nothing through
/// `culinary::Status` and depends only on the standard library. Thread-safe.
class SloMonitor {
 public:
  explicit SloMonitor(SloWindowConfig config = SloWindowConfig{});

  /// Declares (or replaces) the objective for `objective.name`. Endpoints
  /// recorded without a declared objective use a default availability-only
  /// objective at 0.999.
  void SetObjective(SloObjective objective);

  /// Records one request outcome for `name` at second `t_s`.
  void Record(std::string_view name, double latency_us, bool ok, int64_t t_s);

  /// Evaluates every endpoint at `now_s`, latching alert transitions (a
  /// false→true combined-alert edge increments `alerts_fired`). Results are
  /// sorted by endpoint name.
  std::vector<SloEndpointStatus> Evaluate(int64_t now_s);

  /// Evaluates and mirrors the burn rates into `registry` gauges
  /// (`slo.<name>.fast_burn` / `slo.<name>.slow_burn` / `slo.<name>.alert`).
  void ExportGauges(MetricsRegistry& registry, int64_t now_s);

  /// Evaluates and renders a JSON object:
  /// `{"config": {...}, "endpoints": {"<name>": {...}, ...},
  ///   "alerts_fired": N}`.
  std::string ToJson(int64_t now_s);

  /// Combined-alert activations since construction.
  uint64_t alerts_fired() const;

  const SloWindowConfig& config() const { return config_; }

 private:
  struct Bucket {
    int64_t second = 0;
    uint64_t total = 0;
    uint64_t bad = 0;
  };
  struct Endpoint {
    SloObjective objective;
    std::deque<Bucket> buckets;  // ascending by second
    bool alert_active = false;
  };

  Endpoint& GetOrCreate(std::string_view name);
  void Prune(Endpoint& ep, int64_t now_s);
  SloEndpointStatus EvaluateLocked(const std::string& name, Endpoint& ep,
                                   int64_t now_s);

  const SloWindowConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Endpoint, std::less<>> endpoints_;
  uint64_t alerts_fired_ = 0;
};

}  // namespace culinary::obs

#endif  // CULINARYLAB_OBS_SLO_H_
