#ifndef CULINARYLAB_OBS_METRICS_H_
#define CULINARYLAB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace culinary::obs {

/// Lock-cheap metrics for the hot paths (ingestion, pairing-cache builds,
/// parallel sweeps, null-model ensembles).
///
/// Design constraints, in order:
///
///  1. **Must not perturb results.** Metrics only ever *record*; nothing in
///     this module feeds back into control flow, RNG state or work
///     partitioning, so the determinism contract of
///     `analysis/options.h` (bit-identical results for any thread count,
///     observability ON or OFF) holds by construction.
///  2. **Near-zero cost when disabled.** Every mutation starts with one
///     relaxed atomic load (`Enabled()`); the instrumentation macros in
///     obs/obs.h additionally compile to `((void)0)` when the library is
///     built with `CULINARYLAB_OBS=OFF`.
///  3. **Lock-free on the write path.** Each metric is sharded: a thread
///     mutates only its own cache-line-padded shard with relaxed atomics
///     (threads are assigned shards round-robin on first touch). Shards are
///     merged on `Snapshot()`, which is the only place that walks all of
///     them. Relaxed ordering is sufficient — counters are monotonically
///     merged totals, not synchronization edges.
///
/// Registration (`GetCounter` et al.) takes a mutex, but call sites cache
/// the returned reference in a function-local static (see obs/obs.h), so
/// the lock is paid once per call site, not per increment. Metric objects
/// are never destroyed before process exit; references stay valid.

/// Runtime master switch. Defaults to the `CULINARYLAB_OBS` environment
/// variable ("1"/"on"/"true" enable) and is overridable via `SetEnabled`
/// (the CLI flips it on when `--metrics-out=`/`--trace-out=` are given).
namespace internal {
extern std::atomic<int> g_enabled;  // -1 = uninitialized
bool InitEnabledSlow();
/// Shard slot of the calling thread (round-robin assigned on first use).
size_t ShardIndex();
}  // namespace internal

inline bool Enabled() {
  const int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return internal::InitEnabledSlow();
}

void SetEnabled(bool enabled);

/// Number of per-metric shards. Threads beyond this share slots (atomics
/// keep that correct; it only costs cache-line bounces).
constexpr size_t kNumShards = 16;

/// Monotone event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  /// Adds `delta` when observability is enabled.
  void Increment(uint64_t delta = 1) {
    if (Enabled()) IncrementUnchecked(delta);
  }

  /// Adds `delta` unconditionally (call sites that already checked
  /// `Enabled()`, e.g. the macros in obs/obs.h).
  void IncrementUnchecked(uint64_t delta = 1) {
    shards_[internal::ShardIndex()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }

  /// Merged total across shards.
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  std::array<Shard, kNumShards> shards_;
};

/// Last-write-wins instantaneous value (thread counts, cache sizes).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }

  void Set(double value) {
    if (Enabled()) value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Distribution of positive samples over fixed log2-scale buckets.
///
/// Bucket 0 holds samples < 1 (including non-positive and NaN), bucket `k`
/// (k in [1, 62]) holds samples in `[2^(k-1), 2^k)`, and bucket 63 is the
/// overflow; a bucket's exported upper bound is `2^k` (`+inf` for 63). The
/// mapping is a pure function of the sample (frexp), so bucket layout never
/// depends on data order or thread count. Sum/min/max are kept exactly.
class HistogramMetric {
 public:
  static constexpr size_t kNumBuckets = 64;

  explicit HistogramMetric(std::string name) : name_(std::move(name)) {}
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  const std::string& name() const { return name_; }

  /// Records one sample when observability is enabled.
  void Observe(double value) {
    if (Enabled()) ObserveUnchecked(value);
  }
  void ObserveUnchecked(double value);

  /// Integer fast path for latency-style samples (the serving engine records
  /// microsecond latencies as uint64): bucketing via a leading-zero count
  /// instead of frexp. Lands in exactly the bucket `Observe(double(value))`
  /// would — including the 0 edge case (a sub-microsecond query), which goes
  /// to bucket 0 rather than through the undefined `clz(0)`.
  void ObserveU64(uint64_t value) {
    if (Enabled()) ObserveU64Unchecked(value);
  }
  void ObserveU64Unchecked(uint64_t value);

  /// Bucket index for `value` (exposed for tests).
  static size_t BucketFor(double value);
  /// Integer twin of `BucketFor`: agrees with `BucketFor(double(value))` for
  /// every uint64 (0 → bucket 0, never an undefined leading-zero count).
  static size_t BucketForU64(uint64_t value);
  /// Inclusive upper bound of bucket `k` (`+inf` for the overflow bucket).
  static double BucketUpperBound(size_t k);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;  ///< 0 when empty
    /// (upper bound, count) for every non-empty bucket, ascending.
    std::vector<std::pair<double, uint64_t>> buckets;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  /// Merges all shards into one view.
  Snapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< valid iff count > 0
    std::atomic<double> max{0.0};  ///< valid iff count > 0
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  std::string name_;
  std::array<Shard, kNumShards> shards_;
};

/// Point-in-time view of every registered metric, names ascending (so JSON
/// output is deterministic given the same set of events).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramMetric::Snapshot>> histograms;
};

/// Owner of all metrics. `Default()` is the process-wide registry the
/// instrumentation macros use; tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  /// Finds or creates a metric. References stay valid for the registry's
  /// lifetime (metrics are heap-allocated and never erased).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  HistogramMetric& GetHistogram(std::string_view name);

  /// Merged view of everything registered so far.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Counter*> counters_;
  std::vector<Gauge*> gauges_;
  std::vector<HistogramMetric*> histograms_;
};

/// Renders a snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Snapshots `registry` and writes the JSON to `path`. Returns false and
/// fills `*error` (when non-null) on IO failure. Plain bool instead of
/// `culinary::Status`: obs sits below common in the layering so that
/// common's ThreadPool can be instrumented.
bool WriteMetricsJsonFile(const MetricsRegistry& registry,
                          const std::string& path,
                          std::string* error = nullptr);

}  // namespace culinary::obs

#endif  // CULINARYLAB_OBS_METRICS_H_
