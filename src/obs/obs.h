#ifndef CULINARYLAB_OBS_OBS_H_
#define CULINARYLAB_OBS_OBS_H_

/// Instrumentation entry points for hot paths.
///
/// Two gates, checked in order:
///
///  * compile-time: building with `-DCULINARYLAB_OBS=OFF` defines
///    `CULINARYLAB_OBS_DISABLED`, and every macro below expands to
///    `((void)0)` — instrumented code is byte-identical to uninstrumented;
///  * runtime: with observability compiled in, each macro first tests
///    `culinary::obs::Enabled()` (one relaxed atomic load) and does nothing
///    when the switch is off.
///
/// Metric handles are cached in function-local statics, so the registry
/// lookup (mutex + name scan) happens once per call site. `name` must
/// therefore be a constant per call site, e.g. a string literal.
///
/// Recording never feeds back into computation: instrumenting a seeded
/// sweep cannot change its output (see the determinism contract in
/// analysis/options.h).

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(CULINARYLAB_OBS_DISABLED)

#define CULINARY_OBS_COUNT(name, delta) ((void)0)
#define CULINARY_OBS_GAUGE_SET(name, value) ((void)0)
#define CULINARY_OBS_OBSERVE(name, value) ((void)0)
#define CULINARY_OBS_OBSERVE_U64(name, value) ((void)0)
#define CULINARY_OBS_SPAN(var, name, category) ((void)0)

#else

/// Adds `delta` to counter `name`.
#define CULINARY_OBS_COUNT(name, delta)                                  \
  do {                                                                   \
    if (::culinary::obs::Enabled()) {                                    \
      static ::culinary::obs::Counter& culinary_obs_counter =            \
          ::culinary::obs::MetricsRegistry::Default().GetCounter(name);  \
      culinary_obs_counter.IncrementUnchecked(delta);                    \
    }                                                                    \
  } while (0)

/// Sets gauge `name` to `value`.
#define CULINARY_OBS_GAUGE_SET(name, value)                              \
  do {                                                                   \
    if (::culinary::obs::Enabled()) {                                    \
      static ::culinary::obs::Gauge& culinary_obs_gauge =                \
          ::culinary::obs::MetricsRegistry::Default().GetGauge(name);    \
      culinary_obs_gauge.Set(value);                                     \
    }                                                                    \
  } while (0)

/// Records `value` into histogram `name`.
#define CULINARY_OBS_OBSERVE(name, value)                                 \
  do {                                                                    \
    if (::culinary::obs::Enabled()) {                                     \
      static ::culinary::obs::HistogramMetric& culinary_obs_histogram =   \
          ::culinary::obs::MetricsRegistry::Default().GetHistogram(name); \
      culinary_obs_histogram.ObserveUnchecked(value);                     \
    }                                                                     \
  } while (0)

/// Records integer `value` into histogram `name` via the uint64 fast path
/// (leading-zero-count bucketing; 0 is well-defined and lands in bucket 0).
#define CULINARY_OBS_OBSERVE_U64(name, value)                              \
  do {                                                                     \
    if (::culinary::obs::Enabled()) {                                      \
      static ::culinary::obs::HistogramMetric& culinary_obs_histogram =    \
          ::culinary::obs::MetricsRegistry::Default().GetHistogram(name);  \
      culinary_obs_histogram.ObserveU64Unchecked(value);                   \
    }                                                                      \
  } while (0)

/// Declares a scoped trace span named `var` in the enclosing scope.
#define CULINARY_OBS_SPAN(var, name, category) \
  ::culinary::obs::TraceSpan var((name), (category))

#endif  // CULINARYLAB_OBS_DISABLED

#endif  // CULINARYLAB_OBS_OBS_H_
