#include "flavor/category.h"

#include "common/string_util.h"

namespace culinary::flavor {

namespace {

constexpr std::string_view kNames[kNumCategories] = {
    "Vegetable", "Dairy",    "Legume",             "Maize",
    "Cereal",    "Meat",     "Nuts and Seeds",     "Plant",
    "Fish",      "Seafood",  "Spice",              "Bakery",
    "Beverage Alcoholic",    "Beverage",           "Essential Oil",
    "Flower",    "Fruit",    "Fungus",             "Herb",
    "Additive",  "Dish",
};

constexpr Category kAll[kNumCategories] = {
    Category::kVegetable, Category::kDairy,
    Category::kLegume,    Category::kMaize,
    Category::kCereal,    Category::kMeat,
    Category::kNutsAndSeeds, Category::kPlant,
    Category::kFish,      Category::kSeafood,
    Category::kSpice,     Category::kBakery,
    Category::kBeverageAlcoholic, Category::kBeverage,
    Category::kEssentialOil, Category::kFlower,
    Category::kFruit,     Category::kFungus,
    Category::kHerb,      Category::kAdditive,
    Category::kDish,
};

}  // namespace

std::string_view CategoryToString(Category category) {
  int i = static_cast<int>(category);
  if (i < 0 || i >= kNumCategories) return "Unknown";
  return kNames[i];
}

std::optional<Category> CategoryFromString(std::string_view name) {
  std::string lower = culinary::ToLower(name);
  for (int i = 0; i < kNumCategories; ++i) {
    if (culinary::ToLower(kNames[i]) == lower) {
      return static_cast<Category>(i);
    }
  }
  return std::nullopt;
}

const Category* AllCategories() { return kAll; }

}  // namespace culinary::flavor
