#include "flavor/profile.h"

#include <algorithm>

namespace culinary::flavor {

FlavorProfile::FlavorProfile(std::vector<MoleculeId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool FlavorProfile::Contains(MoleculeId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

void FlavorProfile::Insert(MoleculeId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

size_t FlavorProfile::SharedCompounds(const FlavorProfile& other) const {
  size_t count = 0;
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

FlavorProfile FlavorProfile::Union(const FlavorProfile& other) const {
  std::vector<MoleculeId> merged;
  merged.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(merged));
  FlavorProfile out;
  out.ids_ = std::move(merged);
  return out;
}

FlavorProfile FlavorProfile::Intersection(const FlavorProfile& other) const {
  std::vector<MoleculeId> merged;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(merged));
  FlavorProfile out;
  out.ids_ = std::move(merged);
  return out;
}

double FlavorProfile::Jaccard(const FlavorProfile& other) const {
  size_t inter = SharedCompounds(other);
  size_t uni = ids_.size() + other.ids_.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace culinary::flavor
