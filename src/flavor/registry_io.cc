#include "flavor/registry_io.h"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "dataframe/table.h"
#include "obs/obs.h"

namespace culinary::flavor {

namespace {

using robustness::ErrorPolicy;
using robustness::ErrorSink;
using robustness::IngestStats;

std::string_view KindToString(IngredientKind kind) {
  switch (kind) {
    case IngredientKind::kBasic:
      return "basic";
    case IngredientKind::kCompound:
      return "compound";
    case IngredientKind::kBundle:
      return "bundle";
  }
  return "basic";
}

culinary::Result<IngredientKind> KindFromString(std::string_view s) {
  if (s == "basic") return IngredientKind::kBasic;
  if (s == "compound") return IngredientKind::kCompound;
  if (s == "bundle") return IngredientKind::kBundle;
  return culinary::Status::ParseError("unknown ingredient kind '" +
                                      std::string(s) + "'");
}

/// ';'-joins a list of integer ids.
template <typename T>
std::string JoinIds(const std::vector<T>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(';');
    out += std::to_string(ids[i]);
  }
  return out;
}

/// Parses a ';'-separated id list; empty string yields an empty list. With
/// `lenient`, unparseable parts are dropped (count returned via
/// `*dropped`) instead of failing the list.
culinary::Result<std::vector<int32_t>> ParseIds(std::string_view text,
                                                bool lenient = false,
                                                size_t* dropped = nullptr) {
  std::vector<int32_t> out;
  if (culinary::Trim(text).empty()) return out;
  for (const std::string& part : culinary::Split(text, ';')) {
    std::string_view trimmed = culinary::Trim(part);
    if (trimmed.empty()) continue;
    bool negative = trimmed[0] == '-';
    std::string_view digits = negative ? trimmed.substr(1) : trimmed;
    if (!culinary::IsDigits(digits)) {
      if (lenient) {
        if (dropped != nullptr) ++*dropped;
        continue;
      }
      return culinary::Status::ParseError("bad id '" + std::string(part) +
                                          "'");
    }
    long v = std::strtol(std::string(trimmed).c_str(), nullptr, 10);
    out.push_back(static_cast<int32_t>(v));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts) {
  return culinary::Join(parts, ";");
}

std::vector<std::string> SplitNonEmpty(std::string_view text) {
  std::vector<std::string> out;
  for (const std::string& part : culinary::Split(text, ';')) {
    std::string_view trimmed = culinary::Trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

culinary::Status SaveRegistryCsv(const FlavorRegistry& registry,
                                 const std::string& prefix) {
  df::CsvWriteOptions write_options;
  write_options.atomic_write = true;

  // Molecules.
  df::Schema mol_schema({{"id", df::DataType::kInt64},
                         {"name", df::DataType::kString},
                         {"descriptors", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table molecules, df::Table::Make(mol_schema));
  for (size_t m = 0; m < registry.num_molecules(); ++m) {
    CULINARY_ASSIGN_OR_RETURN(Molecule mol,
                              registry.GetMolecule(static_cast<MoleculeId>(m)));
    CULINARY_RETURN_IF_ERROR(molecules.AppendRow(
        {df::Value::Int(mol.id), df::Value::Str(mol.name),
         df::Value::Str(JoinStrings(mol.descriptors))}));
  }
  const std::string mol_path = prefix + "_molecules.csv";
  CULINARY_RETURN_IF_ERROR(
      df::WriteCsvFile(molecules, mol_path, write_options)
          .WithContext("saving registry molecules to " + mol_path));

  // Entities (including tombstones, so ids reload exactly).
  df::Schema ent_schema({{"id", df::DataType::kInt64},
                         {"name", df::DataType::kString},
                         {"category", df::DataType::kString},
                         {"kind", df::DataType::kString},
                         {"removed", df::DataType::kInt64},
                         {"synonyms", df::DataType::kString},
                         {"profile", df::DataType::kString},
                         {"constituents", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table entities, df::Table::Make(ent_schema));
  for (size_t i = 0; i < registry.num_ingredient_slots(); ++i) {
    CULINARY_ASSIGN_OR_RETURN(
        Ingredient ing,
        registry.GetIngredient(static_cast<IngredientId>(i),
                               /*include_removed=*/true));
    CULINARY_RETURN_IF_ERROR(entities.AppendRow(
        {df::Value::Int(ing.id), df::Value::Str(ing.name),
         df::Value::Str(std::string(CategoryToString(ing.category))),
         df::Value::Str(std::string(KindToString(ing.kind))),
         df::Value::Int(ing.removed ? 1 : 0),
         df::Value::Str(JoinStrings(ing.synonyms)),
         df::Value::Str(JoinIds(ing.profile.ids())),
         df::Value::Str(JoinIds(ing.constituents))}));
  }
  const std::string ent_path = prefix + "_entities.csv";
  return df::WriteCsvFile(entities, ent_path, write_options)
      .WithContext("saving registry entities to " + ent_path);
}

namespace {

/// Parses an integer cell read with type inference disabled.
culinary::Result<int64_t> CellToInt(const df::Value& v) {
  if (v.is_int()) return v.as_int();
  if (v.is_string()) {
    std::string_view trimmed = culinary::Trim(v.as_string());
    bool negative = !trimmed.empty() && trimmed[0] == '-';
    std::string_view digits = negative ? trimmed.substr(1) : trimmed;
    if (culinary::IsDigits(digits)) {
      return static_cast<int64_t>(
          std::strtoll(std::string(trimmed).c_str(), nullptr, 10));
    }
  }
  return culinary::Status::ParseError("expected integer cell, got " +
                                      v.ToString());
}

/// Shared state for the degraded registry loader: quarantined rows are
/// replaced by placeholder slots so that every later id in the file still
/// resolves to the same slot (profiles and constituents reference ids).
struct LoadContext {
  FlavorRegistry registry;
  ErrorPolicy policy = ErrorPolicy::kStrict;
  ErrorSink* sink = nullptr;
  IngestStats row_stats;

  bool strict() const { return policy == ErrorPolicy::kStrict; }
  bool best_effort() const { return policy == ErrorPolicy::kBestEffort; }

  void Report(size_t row, const culinary::Status& why, std::string snippet,
              std::string_view file) {
    if (sink != nullptr) {
      sink->Report(/*line=*/row + 2, /*column=*/0, why.code(),
                   std::string(file) + " row " + std::to_string(row) + ": " +
                       why.message(),
                   std::move(snippet));
    }
  }

  /// Fills the molecule id space up to (excluding) `target` with
  /// placeholders.
  culinary::Status PadMolecules(int64_t target) {
    while (static_cast<int64_t>(registry.num_molecules()) < target) {
      CULINARY_RETURN_IF_ERROR(
          registry
              .AddMolecule("__quarantined_molecule_" +
                           std::to_string(registry.num_molecules()))
              .status());
    }
    return culinary::Status::OK();
  }

  /// Fills the entity id space up to (excluding) `target` with tombstoned
  /// placeholders (tombstones do not index their names, so placeholder
  /// names cannot collide with real data).
  culinary::Status PadEntities(int64_t target) {
    while (static_cast<int64_t>(registry.num_ingredient_slots()) < target) {
      Ingredient placeholder;
      placeholder.id =
          static_cast<IngredientId>(registry.num_ingredient_slots());
      placeholder.name =
          "__quarantined_entity_" + std::to_string(placeholder.id);
      placeholder.category = Category::kAdditive;
      placeholder.kind = IngredientKind::kBasic;
      placeholder.removed = true;
      CULINARY_RETURN_IF_ERROR(registry.RestoreIngredient(placeholder));
    }
    return culinary::Status::OK();
  }
};

/// Parses and restores one molecule row; the returned status is the row's
/// verdict (the caller quarantines on error in degraded mode).
culinary::Status LoadMoleculeRow(LoadContext& ctx, const df::Table& molecules,
                                 size_t r) {
  CULINARY_ASSIGN_OR_RETURN(df::Value id_v, molecules.GetValueChecked(r, "id"));
  CULINARY_ASSIGN_OR_RETURN(df::Value name_v,
                            molecules.GetValueChecked(r, "name"));
  if (id_v.is_null() || name_v.is_null()) {
    return culinary::Status::ParseError("null molecule row");
  }
  CULINARY_ASSIGN_OR_RETURN(int64_t mol_id, CellToInt(id_v));
  std::vector<std::string> descriptors;
  auto desc_v = molecules.GetValueChecked(r, "descriptors");
  if (desc_v.ok() && !desc_v->is_null() && desc_v->is_string()) {
    descriptors = SplitNonEmpty(desc_v->as_string());
  }
  const auto next_id = static_cast<int64_t>(ctx.registry.num_molecules());
  if (mol_id != next_id) {
    if (ctx.strict()) {
      return culinary::Status::ParseError(
          "molecule ids are not contiguous from zero");
    }
    if (mol_id < next_id) {
      // Duplicate / out-of-order row: its slot already exists; drop it.
      return culinary::Status::ParseError(
          "duplicate molecule id " + std::to_string(mol_id) +
          " (next slot is " + std::to_string(next_id) + ")");
    }
    // Gap: earlier rows were lost; keep the id space aligned.
    CULINARY_RETURN_IF_ERROR(ctx.PadMolecules(mol_id));
  }
  return ctx.registry.AddMolecule(name_v.as_string(), std::move(descriptors))
      .status();
}

/// Parses and restores one entity row. In best-effort mode, dangling
/// profile / constituent ids are dropped (with diagnostics) and an unknown
/// kind defaults to basic; everything else fails the row.
culinary::Status LoadEntityRow(LoadContext& ctx, const df::Table& entities,
                               size_t r, int32_t num_molecules) {
  Ingredient ing;
  CULINARY_ASSIGN_OR_RETURN(df::Value id_v, entities.GetValueChecked(r, "id"));
  CULINARY_ASSIGN_OR_RETURN(df::Value name_v,
                            entities.GetValueChecked(r, "name"));
  CULINARY_ASSIGN_OR_RETURN(df::Value cat_v,
                            entities.GetValueChecked(r, "category"));
  CULINARY_ASSIGN_OR_RETURN(df::Value kind_v,
                            entities.GetValueChecked(r, "kind"));
  CULINARY_ASSIGN_OR_RETURN(df::Value removed_v,
                            entities.GetValueChecked(r, "removed"));
  if (id_v.is_null() || name_v.is_null() || cat_v.is_null() ||
      kind_v.is_null() || removed_v.is_null()) {
    return culinary::Status::ParseError("null entity field in row " +
                                        std::to_string(r));
  }
  CULINARY_ASSIGN_OR_RETURN(int64_t ing_id, CellToInt(id_v));
  ing.id = static_cast<IngredientId>(ing_id);
  ing.name = name_v.as_string();
  auto category = CategoryFromString(cat_v.as_string());
  if (!category.has_value()) {
    return culinary::Status::ParseError("unknown category '" +
                                        cat_v.as_string() + "'");
  }
  ing.category = *category;
  auto kind = KindFromString(kind_v.as_string());
  if (kind.ok()) {
    ing.kind = kind.value();
  } else if (ctx.best_effort()) {
    ctx.Report(r, kind.status(), kind_v.as_string(), "entities");
    ing.kind = IngredientKind::kBasic;
  } else {
    return kind.status();
  }
  CULINARY_ASSIGN_OR_RETURN(int64_t removed_flag, CellToInt(removed_v));
  ing.removed = removed_flag != 0;

  auto syn_v = entities.GetValueChecked(r, "synonyms");
  if (syn_v.ok() && !syn_v->is_null() && syn_v->is_string()) {
    ing.synonyms = SplitNonEmpty(syn_v->as_string());
  }
  auto prof_v = entities.GetValueChecked(r, "profile");
  if (prof_v.ok() && !prof_v->is_null() && prof_v->is_string()) {
    size_t dropped_parts = 0;
    CULINARY_ASSIGN_OR_RETURN(
        std::vector<int32_t> mol_ids,
        ParseIds(prof_v->as_string(), ctx.best_effort(), &dropped_parts));
    std::vector<int32_t> valid_ids;
    valid_ids.reserve(mol_ids.size());
    for (int32_t m : mol_ids) {
      if (m < 0 || m >= num_molecules) {
        if (!ctx.best_effort()) {
          return culinary::Status::ParseError("dangling molecule id " +
                                              std::to_string(m));
        }
        ++dropped_parts;
        continue;
      }
      valid_ids.push_back(m);
    }
    if (dropped_parts > 0) {
      ctx.Report(r,
                 culinary::Status::ParseError(
                     std::to_string(dropped_parts) +
                     " unusable profile molecule id(s) dropped"),
                 prof_v->as_string(), "entities");
    }
    ing.profile = FlavorProfile(std::move(valid_ids));
  }
  auto cons_v = entities.GetValueChecked(r, "constituents");
  if (cons_v.ok() && !cons_v->is_null() && cons_v->is_string()) {
    size_t dropped_parts = 0;
    CULINARY_ASSIGN_OR_RETURN(
        std::vector<int32_t> cons,
        ParseIds(cons_v->as_string(), ctx.best_effort(), &dropped_parts));
    std::vector<int32_t> valid_cons;
    valid_cons.reserve(cons.size());
    for (int32_t c : cons) {
      if (c < 0 || c >= ing.id) {
        if (!ctx.best_effort()) {
          return culinary::Status::ParseError(
              "constituent id " + std::to_string(c) +
              " does not precede entity " + std::to_string(ing.id));
        }
        ++dropped_parts;
        continue;
      }
      valid_cons.push_back(c);
    }
    if (dropped_parts > 0) {
      ctx.Report(r,
                 culinary::Status::ParseError(
                     std::to_string(dropped_parts) +
                     " unusable constituent id(s) dropped"),
                 cons_v->as_string(), "entities");
    }
    ing.constituents = std::move(valid_cons);
  }

  const auto next_slot =
      static_cast<int64_t>(ctx.registry.num_ingredient_slots());
  if (ing_id != next_slot && !ctx.strict()) {
    if (ing_id < next_slot) {
      return culinary::Status::ParseError(
          "duplicate entity id " + std::to_string(ing_id) +
          " (next slot is " + std::to_string(next_slot) + ")");
    }
    CULINARY_RETURN_IF_ERROR(ctx.PadEntities(ing_id));
  }
  return ctx.registry.RestoreIngredient(ing);
}

}  // namespace

culinary::Result<FlavorRegistry> LoadRegistryCsv(const std::string& prefix) {
  return LoadRegistryCsv(prefix, RegistryLoadOptions{});
}

culinary::Result<FlavorRegistry> LoadRegistryCsv(
    const std::string& prefix, const RegistryLoadOptions& options) {
  CULINARY_OBS_SPAN(load_span, "ingest.load_registry", "ingest");
  LoadContext ctx;
  ctx.policy = options.error_policy;
  ctx.sink = options.error_sink;

  // Lists like "5" would otherwise be inferred as numbers; read raw.
  df::CsvReadOptions raw_options;
  raw_options.infer_types = false;
  raw_options.error_policy = options.error_policy;
  raw_options.error_sink = options.error_sink;
  IngestStats csv_stats;
  IngestStats file_stats;

  const std::string mol_path = prefix + "_molecules.csv";
  raw_options.stats = &csv_stats;
  auto mol_read = df::ReadCsvFileRetry(mol_path, raw_options, options.retry);
  if (!mol_read.ok()) {
    return mol_read.status().WithContext("loading registry molecules from " +
                                         mol_path);
  }
  file_stats.Merge(csv_stats);
  df::Table molecules = std::move(mol_read).value();
  for (const char* col : {"id", "name"}) {
    if (!molecules.schema().HasField(col)) {
      return culinary::Status::ParseError(
          std::string("molecules csv missing column '") + col + "'");
    }
  }
  for (size_t r = 0; r < molecules.num_rows(); ++r) {
    culinary::Status row_status = LoadMoleculeRow(ctx, molecules, r);
    if (row_status.ok()) continue;
    if (ctx.strict()) return row_status.WithContext("loading " + mol_path);
    ctx.Report(r, row_status, std::string(), "molecules");
    ++ctx.row_stats.records_quarantined;
    // No padding here: the next well-formed row's explicit id re-aligns
    // the slot space via PadMolecules (padding now would double-allocate
    // when the quarantined row was a duplicate).
  }

  const std::string ent_path = prefix + "_entities.csv";
  raw_options.stats = &csv_stats;
  auto ent_read = df::ReadCsvFileRetry(ent_path, raw_options, options.retry);
  if (!ent_read.ok()) {
    return ent_read.status().WithContext("loading registry entities from " +
                                         ent_path);
  }
  file_stats.Merge(csv_stats);
  df::Table entities = std::move(ent_read).value();
  for (const char* col : {"id", "name", "category", "kind", "removed",
                          "synonyms", "profile", "constituents"}) {
    if (!entities.schema().HasField(col)) {
      return culinary::Status::ParseError(
          std::string("entities csv missing column '") + col + "'");
    }
  }
  const auto num_molecules = static_cast<int32_t>(ctx.registry.num_molecules());
  for (size_t r = 0; r < entities.num_rows(); ++r) {
    culinary::Status row_status = LoadEntityRow(ctx, entities, r, num_molecules);
    if (row_status.ok()) continue;
    if (ctx.strict()) return row_status.WithContext("loading " + ent_path);
    ctx.Report(r, row_status, std::string(), "entities");
    ++ctx.row_stats.records_quarantined;
    // As with molecules: the next well-formed row's id re-aligns the slot
    // space, so a quarantined row needs no placeholder of its own.
  }

  CULINARY_OBS_COUNT("ingest.registry.records_read", file_stats.records_total);
  CULINARY_OBS_COUNT("ingest.registry.records_quarantined",
                     file_stats.records_quarantined +
                         ctx.row_stats.records_quarantined);
  CULINARY_OBS_COUNT("ingest.registry.molecules_loaded",
                     ctx.registry.num_molecules());
  CULINARY_OBS_COUNT("ingest.registry.ingredients_loaded",
                     ctx.registry.LiveIngredients().size());
  if (options.stats != nullptr) {
    options.stats->records_total = file_stats.records_total;
    options.stats->records_quarantined =
        file_stats.records_quarantined + ctx.row_stats.records_quarantined;
    options.stats->records_ok =
        options.stats->records_total >= options.stats->records_quarantined
            ? options.stats->records_total -
                  options.stats->records_quarantined
            : 0;
  }
  return std::move(ctx.registry);
}

}  // namespace culinary::flavor
