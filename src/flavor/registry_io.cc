#include "flavor/registry_io.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "dataframe/table.h"

namespace culinary::flavor {

namespace {

std::string_view KindToString(IngredientKind kind) {
  switch (kind) {
    case IngredientKind::kBasic:
      return "basic";
    case IngredientKind::kCompound:
      return "compound";
    case IngredientKind::kBundle:
      return "bundle";
  }
  return "basic";
}

culinary::Result<IngredientKind> KindFromString(std::string_view s) {
  if (s == "basic") return IngredientKind::kBasic;
  if (s == "compound") return IngredientKind::kCompound;
  if (s == "bundle") return IngredientKind::kBundle;
  return culinary::Status::ParseError("unknown ingredient kind '" +
                                      std::string(s) + "'");
}

/// ';'-joins a list of integer ids.
template <typename T>
std::string JoinIds(const std::vector<T>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(';');
    out += std::to_string(ids[i]);
  }
  return out;
}

/// Parses a ';'-separated id list; empty string yields an empty list.
culinary::Result<std::vector<int32_t>> ParseIds(std::string_view text) {
  std::vector<int32_t> out;
  if (culinary::Trim(text).empty()) return out;
  for (const std::string& part : culinary::Split(text, ';')) {
    std::string_view trimmed = culinary::Trim(part);
    if (trimmed.empty()) continue;
    bool negative = trimmed[0] == '-';
    std::string_view digits = negative ? trimmed.substr(1) : trimmed;
    if (!culinary::IsDigits(digits)) {
      return culinary::Status::ParseError("bad id '" + std::string(part) +
                                          "'");
    }
    long v = std::strtol(std::string(trimmed).c_str(), nullptr, 10);
    out.push_back(static_cast<int32_t>(v));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts) {
  return culinary::Join(parts, ";");
}

std::vector<std::string> SplitNonEmpty(std::string_view text) {
  std::vector<std::string> out;
  for (const std::string& part : culinary::Split(text, ';')) {
    std::string_view trimmed = culinary::Trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

culinary::Status SaveRegistryCsv(const FlavorRegistry& registry,
                                 const std::string& prefix) {
  // Molecules.
  df::Schema mol_schema({{"id", df::DataType::kInt64},
                         {"name", df::DataType::kString},
                         {"descriptors", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table molecules, df::Table::Make(mol_schema));
  for (size_t m = 0; m < registry.num_molecules(); ++m) {
    CULINARY_ASSIGN_OR_RETURN(Molecule mol,
                              registry.GetMolecule(static_cast<MoleculeId>(m)));
    CULINARY_RETURN_IF_ERROR(molecules.AppendRow(
        {df::Value::Int(mol.id), df::Value::Str(mol.name),
         df::Value::Str(JoinStrings(mol.descriptors))}));
  }
  CULINARY_RETURN_IF_ERROR(
      df::WriteCsvFile(molecules, prefix + "_molecules.csv"));

  // Entities (including tombstones, so ids reload exactly).
  df::Schema ent_schema({{"id", df::DataType::kInt64},
                         {"name", df::DataType::kString},
                         {"category", df::DataType::kString},
                         {"kind", df::DataType::kString},
                         {"removed", df::DataType::kInt64},
                         {"synonyms", df::DataType::kString},
                         {"profile", df::DataType::kString},
                         {"constituents", df::DataType::kString}});
  CULINARY_ASSIGN_OR_RETURN(df::Table entities, df::Table::Make(ent_schema));
  for (size_t i = 0; i < registry.num_ingredient_slots(); ++i) {
    CULINARY_ASSIGN_OR_RETURN(
        Ingredient ing,
        registry.GetIngredient(static_cast<IngredientId>(i),
                               /*include_removed=*/true));
    CULINARY_RETURN_IF_ERROR(entities.AppendRow(
        {df::Value::Int(ing.id), df::Value::Str(ing.name),
         df::Value::Str(std::string(CategoryToString(ing.category))),
         df::Value::Str(std::string(KindToString(ing.kind))),
         df::Value::Int(ing.removed ? 1 : 0),
         df::Value::Str(JoinStrings(ing.synonyms)),
         df::Value::Str(JoinIds(ing.profile.ids())),
         df::Value::Str(JoinIds(ing.constituents))}));
  }
  return df::WriteCsvFile(entities, prefix + "_entities.csv");
}

namespace {

/// Parses an integer cell read with type inference disabled.
culinary::Result<int64_t> CellToInt(const df::Value& v) {
  if (v.is_int()) return v.as_int();
  if (v.is_string()) {
    std::string_view trimmed = culinary::Trim(v.as_string());
    bool negative = !trimmed.empty() && trimmed[0] == '-';
    std::string_view digits = negative ? trimmed.substr(1) : trimmed;
    if (culinary::IsDigits(digits)) {
      return static_cast<int64_t>(
          std::strtoll(std::string(trimmed).c_str(), nullptr, 10));
    }
  }
  return culinary::Status::ParseError("expected integer cell, got " +
                                      v.ToString());
}

}  // namespace

culinary::Result<FlavorRegistry> LoadRegistryCsv(const std::string& prefix) {
  FlavorRegistry registry;
  // Lists like "5" would otherwise be inferred as numbers; read raw.
  df::CsvReadOptions raw_options;
  raw_options.infer_types = false;

  CULINARY_ASSIGN_OR_RETURN(
      df::Table molecules,
      df::ReadCsvFile(prefix + "_molecules.csv", raw_options));
  for (const char* col : {"id", "name"}) {
    if (!molecules.schema().HasField(col)) {
      return culinary::Status::ParseError(
          std::string("molecules csv missing column '") + col + "'");
    }
  }
  for (size_t r = 0; r < molecules.num_rows(); ++r) {
    CULINARY_ASSIGN_OR_RETURN(df::Value id_v,
                              molecules.GetValueChecked(r, "id"));
    CULINARY_ASSIGN_OR_RETURN(df::Value name_v,
                              molecules.GetValueChecked(r, "name"));
    if (id_v.is_null() || name_v.is_null()) {
      return culinary::Status::ParseError("null molecule row");
    }
    CULINARY_ASSIGN_OR_RETURN(int64_t mol_id, CellToInt(id_v));
    std::vector<std::string> descriptors;
    auto desc_v = molecules.GetValueChecked(r, "descriptors");
    if (desc_v.ok() && !desc_v->is_null() && desc_v->is_string()) {
      descriptors = SplitNonEmpty(desc_v->as_string());
    }
    CULINARY_ASSIGN_OR_RETURN(
        MoleculeId assigned,
        registry.AddMolecule(name_v.as_string(), std::move(descriptors)));
    if (assigned != static_cast<MoleculeId>(mol_id)) {
      return culinary::Status::ParseError(
          "molecule ids are not contiguous from zero");
    }
  }

  CULINARY_ASSIGN_OR_RETURN(
      df::Table entities,
      df::ReadCsvFile(prefix + "_entities.csv", raw_options));
  for (const char* col : {"id", "name", "category", "kind", "removed",
                          "synonyms", "profile", "constituents"}) {
    if (!entities.schema().HasField(col)) {
      return culinary::Status::ParseError(
          std::string("entities csv missing column '") + col + "'");
    }
  }
  const auto num_molecules = static_cast<int32_t>(registry.num_molecules());
  for (size_t r = 0; r < entities.num_rows(); ++r) {
    Ingredient ing;
    CULINARY_ASSIGN_OR_RETURN(df::Value id_v, entities.GetValueChecked(r, "id"));
    CULINARY_ASSIGN_OR_RETURN(df::Value name_v,
                              entities.GetValueChecked(r, "name"));
    CULINARY_ASSIGN_OR_RETURN(df::Value cat_v,
                              entities.GetValueChecked(r, "category"));
    CULINARY_ASSIGN_OR_RETURN(df::Value kind_v,
                              entities.GetValueChecked(r, "kind"));
    CULINARY_ASSIGN_OR_RETURN(df::Value removed_v,
                              entities.GetValueChecked(r, "removed"));
    if (id_v.is_null() || name_v.is_null() || cat_v.is_null() ||
        kind_v.is_null() || removed_v.is_null()) {
      return culinary::Status::ParseError("null entity field in row " +
                                          std::to_string(r));
    }
    CULINARY_ASSIGN_OR_RETURN(int64_t ing_id, CellToInt(id_v));
    ing.id = static_cast<IngredientId>(ing_id);
    ing.name = name_v.as_string();
    auto category = CategoryFromString(cat_v.as_string());
    if (!category.has_value()) {
      return culinary::Status::ParseError("unknown category '" +
                                          cat_v.as_string() + "'");
    }
    ing.category = *category;
    CULINARY_ASSIGN_OR_RETURN(ing.kind, KindFromString(kind_v.as_string()));
    CULINARY_ASSIGN_OR_RETURN(int64_t removed_flag, CellToInt(removed_v));
    ing.removed = removed_flag != 0;

    auto syn_v = entities.GetValueChecked(r, "synonyms");
    if (syn_v.ok() && !syn_v->is_null() && syn_v->is_string()) {
      ing.synonyms = SplitNonEmpty(syn_v->as_string());
    }
    auto prof_v = entities.GetValueChecked(r, "profile");
    if (prof_v.ok() && !prof_v->is_null() && prof_v->is_string()) {
      CULINARY_ASSIGN_OR_RETURN(std::vector<int32_t> mol_ids,
                                ParseIds(prof_v->as_string()));
      for (int32_t m : mol_ids) {
        if (m < 0 || m >= num_molecules) {
          return culinary::Status::ParseError("dangling molecule id " +
                                              std::to_string(m));
        }
      }
      ing.profile = FlavorProfile(std::move(mol_ids));
    }
    auto cons_v = entities.GetValueChecked(r, "constituents");
    if (cons_v.ok() && !cons_v->is_null() && cons_v->is_string()) {
      CULINARY_ASSIGN_OR_RETURN(std::vector<int32_t> cons,
                                ParseIds(cons_v->as_string()));
      for (int32_t c : cons) {
        if (c < 0 || c >= ing.id) {
          return culinary::Status::ParseError(
              "constituent id " + std::to_string(c) +
              " does not precede entity " + std::to_string(ing.id));
        }
      }
      ing.constituents = cons;
    }
    CULINARY_RETURN_IF_ERROR(registry.RestoreIngredient(ing));
  }
  return registry;
}

}  // namespace culinary::flavor
