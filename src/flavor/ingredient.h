#ifndef CULINARYLAB_FLAVOR_INGREDIENT_H_
#define CULINARYLAB_FLAVOR_INGREDIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flavor/category.h"
#include "flavor/profile.h"

namespace culinary::flavor {

/// Identifier of an ingredient within a `FlavorRegistry`. Dense (0..n-1)
/// over all ingredients ever added, including removed (tombstoned) ones.
using IngredientId = int32_t;

/// Sentinel for "no ingredient".
inline constexpr IngredientId kInvalidIngredient = -1;

/// Kinds of ingredient entities (paper §III.B).
enum class IngredientKind : int {
  /// A natural ingredient with an empirically reported flavor profile.
  kBasic = 0,
  /// A readymade combination (spice mix, sauce, common dish) whose profile
  /// pools the unique molecules of its constituents ("half half",
  /// "mayonnaise").
  kCompound = 1,
  /// A bundle of near-identical entities merged to compensate for sparse
  /// flavor data (black/polar/brown bear → "bear").
  kBundle = 2,
};

/// An ingredient entity: canonical name, linguistic synonyms, category and
/// flavor profile. Plain data; all invariants (unique names, id validity)
/// are owned by `FlavorRegistry`.
struct Ingredient {
  IngredientId id = kInvalidIngredient;
  /// Canonical normalized name ("tomato", "olive oil").
  std::string name;
  /// Alternative names mapping to this entity ("curd" for yogurt,
  /// "whisky" for whiskey).
  std::vector<std::string> synonyms;
  Category category = Category::kVegetable;
  IngredientKind kind = IngredientKind::kBasic;
  FlavorProfile profile;
  /// Constituents for compound / bundle ingredients (ids into the registry).
  std::vector<IngredientId> constituents;
  /// True once the entity has been removed from the registry ("29 generic
  /// and noisy entities were removed"). Tombstoned entities keep their id
  /// but are invisible to lookup.
  bool removed = false;
};

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_INGREDIENT_H_
