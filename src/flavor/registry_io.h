#ifndef CULINARYLAB_FLAVOR_REGISTRY_IO_H_
#define CULINARYLAB_FLAVOR_REGISTRY_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "flavor/registry.h"

namespace culinary::flavor {

/// CSV persistence for a `FlavorRegistry`, making a generated flavor
/// universe a portable artifact (analyses can run against saved data
/// without regenerating the synthetic world).
///
/// Two files are written next to each other:
///
///   <prefix>_molecules.csv    id,name,descriptors        (';'-separated)
///   <prefix>_entities.csv     id,name,category,kind,synonyms,profile,
///                             constituents               (';'-separated
///                             molecule ids / ingredient ids)
///
/// Loading reconstructs ids exactly (tombstoned ids are preserved as gaps
/// re-created and re-removed), so recipe CSVs that reference ingredient
/// names resolve identically against the loaded registry.

/// Writes both CSV files. IOError on filesystem failure.
culinary::Status SaveRegistryCsv(const FlavorRegistry& registry,
                                 const std::string& prefix);

/// Reads both CSV files written by `SaveRegistryCsv`. ParseError on
/// malformed content (unknown category/kind, dangling molecule or
/// constituent ids, non-contiguous ids).
culinary::Result<FlavorRegistry> LoadRegistryCsv(const std::string& prefix);

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_REGISTRY_IO_H_
