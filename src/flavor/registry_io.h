#ifndef CULINARYLAB_FLAVOR_REGISTRY_IO_H_
#define CULINARYLAB_FLAVOR_REGISTRY_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "flavor/registry.h"
#include "robustness/error_sink.h"
#include "robustness/retry.h"

namespace culinary::flavor {

/// CSV persistence for a `FlavorRegistry`, making a generated flavor
/// universe a portable artifact (analyses can run against saved data
/// without regenerating the synthetic world).
///
/// Two files are written next to each other:
///
///   <prefix>_molecules.csv    id,name,descriptors        (';'-separated)
///   <prefix>_entities.csv     id,name,category,kind,synonyms,profile,
///                             constituents               (';'-separated
///                             molecule ids / ingredient ids)
///
/// Loading reconstructs ids exactly (tombstoned ids are preserved as gaps
/// re-created and re-removed), so recipe CSVs that reference ingredient
/// names resolve identically against the loaded registry.

/// Controls degraded-mode loading of a possibly-damaged registry dump.
struct RegistryLoadOptions {
  /// kStrict fails fast on the first malformed row (seed behaviour). The
  /// degraded policies quarantine damaged rows: a quarantined molecule/
  /// entity row is replaced by a placeholder slot (tombstoned, for
  /// entities) so that every later id in the file still resolves to the
  /// same slot — id space is load-bearing for profiles and constituents.
  /// kBestEffort additionally salvages partially-damaged rows (drops
  /// dangling molecule/constituent ids, defaults an unknown kind to basic).
  robustness::ErrorPolicy error_policy = robustness::ErrorPolicy::kStrict;
  /// Receives row diagnostics under the degraded policies (may be null).
  robustness::ErrorSink* error_sink = nullptr;
  /// Receives merged accounting over both files (may be null).
  robustness::IngestStats* stats = nullptr;
  /// Retry schedule for transient IO failures while reading the two files.
  robustness::RetryPolicy retry = robustness::RetryPolicy::None();
};

/// Writes both CSV files crash-safely (temp file + rename, see
/// `CsvWriteOptions::atomic_write`): a crash mid-save leaves any previous
/// dump loadable. IOError on filesystem failure, annotated with the file
/// being written.
culinary::Status SaveRegistryCsv(const FlavorRegistry& registry,
                                 const std::string& prefix);

/// Reads both CSV files written by `SaveRegistryCsv`. ParseError on
/// malformed content (unknown category/kind, dangling molecule or
/// constituent ids, non-contiguous ids).
culinary::Result<FlavorRegistry> LoadRegistryCsv(const std::string& prefix);

/// `LoadRegistryCsv` with explicit error policy, diagnostics, accounting
/// and IO retry (see `RegistryLoadOptions`).
culinary::Result<FlavorRegistry> LoadRegistryCsv(
    const std::string& prefix, const RegistryLoadOptions& options);

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_REGISTRY_IO_H_
