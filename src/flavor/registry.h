#ifndef CULINARYLAB_FLAVOR_REGISTRY_H_
#define CULINARYLAB_FLAVOR_REGISTRY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flavor/ingredient.h"
#include "flavor/profile.h"

namespace culinary::flavor {

/// The project's FlavorDB equivalent: the authoritative store of flavor
/// molecules and ingredient entities, plus the curation operations the
/// paper applies on top of FlavorDB (§III.B):
///
///  * remove generic/noisy entities,
///  * add synonyms and spelling variants,
///  * add new specific ingredients with profiles,
///  * add additives with or without flavor profiles,
///  * create compound ingredients whose profile pools their constituents,
///  * bundle sparse entities into one.
///
/// Name lookup is case-insensitive over canonical names and synonyms.
/// Tombstoned (removed) ingredients keep their ids but are invisible.
class FlavorRegistry {
 public:
  FlavorRegistry() = default;

  FlavorRegistry(const FlavorRegistry&) = default;
  FlavorRegistry& operator=(const FlavorRegistry&) = default;
  FlavorRegistry(FlavorRegistry&&) noexcept = default;
  FlavorRegistry& operator=(FlavorRegistry&&) noexcept = default;

  // --- Molecules ---------------------------------------------------------

  /// Registers a molecule; fails on duplicate name.
  culinary::Result<MoleculeId> AddMolecule(
      std::string name, std::vector<std::string> descriptors = {});

  /// Number of molecules.
  size_t num_molecules() const { return molecules_.size(); }

  /// Molecule by id; OutOfRange for invalid ids.
  culinary::Result<Molecule> GetMolecule(MoleculeId id) const;

  // --- Ingredients -------------------------------------------------------

  /// Registers a basic ingredient. Fails when the (normalized) name already
  /// names a live ingredient or synonym.
  culinary::Result<IngredientId> AddIngredient(std::string_view name,
                                               Category category,
                                               FlavorProfile profile);

  /// Registers a compound ingredient whose profile is the union of its
  /// constituents' profiles. Fails on unknown/removed constituents, fewer
  /// than one constituent, or a name collision.
  culinary::Result<IngredientId> AddCompoundIngredient(
      std::string_view name, Category category,
      const std::vector<IngredientId>& constituents);

  /// Bundles existing entities into a new one (union profile) and removes
  /// the constituents (black/polar/brown bear → "bear").
  culinary::Result<IngredientId> BundleIngredients(
      std::string_view name, Category category,
      const std::vector<IngredientId>& constituents);

  /// Adds a synonym for an existing ingredient; fails when the synonym
  /// already resolves somewhere.
  culinary::Status AddSynonym(IngredientId id, std::string_view synonym);

  /// Tombstones an ingredient; its name/synonyms stop resolving.
  culinary::Status RemoveIngredient(IngredientId id);

  /// Low-level restore hook for persistence (see flavor/registry_io.h):
  /// appends one ingredient slot with explicit kind, synonyms,
  /// constituents, profile and removed state. `ingredient.id` must equal
  /// `num_ingredient_slots()` (slots are restored in order); names and
  /// synonyms of live entities must not collide.
  culinary::Status RestoreIngredient(const Ingredient& ingredient);

  /// Resolves a normalized name or synonym (case-insensitive);
  /// `kInvalidIngredient` when nothing matches.
  IngredientId FindByName(std::string_view name) const;

  /// Ingredient by id; OutOfRange for invalid ids (including tombstones
  /// when `include_removed` is false).
  culinary::Result<Ingredient> GetIngredient(IngredientId id,
                                             bool include_removed = false) const;

  /// Borrowing accessor for hot paths; nullptr on invalid/removed ids.
  const Ingredient* Find(IngredientId id) const;

  /// Total ingredients ever added (ids are < this bound).
  size_t num_ingredient_slots() const { return ingredients_.size(); }

  /// Live (non-removed) ingredient count.
  size_t num_live_ingredients() const { return live_count_; }

  /// Ids of all live ingredients, ascending.
  std::vector<IngredientId> LiveIngredients() const;

  /// Every resolvable (normalized name, id) pair — canonical names and
  /// synonyms of live ingredients. Used by fuzzy matching in the aliasing
  /// protocol. Order: ascending id, canonical name before synonyms.
  std::vector<std::pair<std::string, IngredientId>> AllNames() const;

  // --- Pairing primitives -------------------------------------------------

  /// |F_a ∩ F_b|: shared flavor compounds of two ingredients (0 when either
  /// id is invalid or removed).
  size_t SharedCompounds(IngredientId a, IngredientId b) const;

 private:
  culinary::Status CheckNameFree(const std::string& normalized) const;

  std::vector<Molecule> molecules_;
  std::unordered_map<std::string, MoleculeId> molecule_index_;
  std::vector<Ingredient> ingredients_;
  /// normalized name or synonym → ingredient id.
  std::unordered_map<std::string, IngredientId> name_index_;
  size_t live_count_ = 0;
};

/// Normalizes an entity name for indexing: lowercase, trimmed, inner
/// whitespace collapsed to single spaces.
std::string NormalizeEntityName(std::string_view name);

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_REGISTRY_H_
