#ifndef CULINARYLAB_FLAVOR_PROFILE_H_
#define CULINARYLAB_FLAVOR_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace culinary::flavor {

/// Identifier of a flavor molecule within a `FlavorRegistry`.
using MoleculeId = int32_t;

/// A flavor molecule: an odor/taste-active compound reported for natural
/// ingredients (the FlavorDB unit of information).
struct Molecule {
  MoleculeId id = -1;
  std::string name;
  /// Flavor descriptors ("sweet", "citrus", "sulfurous", ...). Informational.
  std::vector<std::string> descriptors;
};

/// The flavor profile of an ingredient: its set of flavor molecules.
///
/// Stored as a sorted, deduplicated vector of molecule ids so that the
/// shared-compound count |F_i ∩ F_j| — the inner loop of every food-pairing
/// computation — is a linear merge with no allocation.
class FlavorProfile {
 public:
  FlavorProfile() = default;

  /// Builds a profile from arbitrary ids (sorted and deduplicated).
  explicit FlavorProfile(std::vector<MoleculeId> ids);

  /// Number of molecules.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Sorted unique ids.
  const std::vector<MoleculeId>& ids() const { return ids_; }

  /// True iff the profile contains `id` (binary search).
  bool Contains(MoleculeId id) const;

  /// Inserts `id` keeping order; no-op if already present.
  void Insert(MoleculeId id);

  /// |this ∩ other| — the number of shared flavor compounds.
  size_t SharedCompounds(const FlavorProfile& other) const;

  /// Set union / intersection as new profiles. Union implements the paper's
  /// compound-ingredient rule: "pooling flavor molecules of its
  /// constituent ingredients" into a list of unique molecules.
  FlavorProfile Union(const FlavorProfile& other) const;
  FlavorProfile Intersection(const FlavorProfile& other) const;

  /// Jaccard similarity |A∩B| / |A∪B| (0 when both empty).
  double Jaccard(const FlavorProfile& other) const;

  friend bool operator==(const FlavorProfile& a, const FlavorProfile& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<MoleculeId> ids_;
};

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_PROFILE_H_
