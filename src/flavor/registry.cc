#include "flavor/registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace culinary::flavor {

std::string NormalizeEntityName(std::string_view name) {
  std::string lower = culinary::ToLower(culinary::Trim(name));
  std::string out;
  out.reserve(lower.size());
  bool last_space = false;
  for (char c : lower) {
    bool is_space = (c == ' ' || c == '\t');
    if (is_space) {
      if (!last_space && !out.empty()) out.push_back(' ');
    } else {
      out.push_back(c);
    }
    last_space = is_space;
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

culinary::Result<MoleculeId> FlavorRegistry::AddMolecule(
    std::string name, std::vector<std::string> descriptors) {
  std::string key = NormalizeEntityName(name);
  if (key.empty()) {
    return culinary::Status::InvalidArgument("molecule name is empty");
  }
  if (molecule_index_.count(key) > 0) {
    return culinary::Status::AlreadyExists("molecule '" + key + "' exists");
  }
  Molecule m;
  m.id = static_cast<MoleculeId>(molecules_.size());
  m.name = std::move(name);
  m.descriptors = std::move(descriptors);
  molecule_index_.emplace(std::move(key), m.id);
  molecules_.push_back(std::move(m));
  return molecules_.back().id;
}

culinary::Result<Molecule> FlavorRegistry::GetMolecule(MoleculeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= molecules_.size()) {
    return culinary::Status::OutOfRange("invalid molecule id " +
                                        std::to_string(id));
  }
  return molecules_[static_cast<size_t>(id)];
}

culinary::Status FlavorRegistry::CheckNameFree(
    const std::string& normalized) const {
  if (normalized.empty()) {
    return culinary::Status::InvalidArgument("ingredient name is empty");
  }
  auto it = name_index_.find(normalized);
  if (it != name_index_.end() &&
      !ingredients_[static_cast<size_t>(it->second)].removed) {
    return culinary::Status::AlreadyExists("name '" + normalized +
                                           "' already resolves");
  }
  return culinary::Status::OK();
}

culinary::Result<IngredientId> FlavorRegistry::AddIngredient(
    std::string_view name, Category category, FlavorProfile profile) {
  std::string key = NormalizeEntityName(name);
  CULINARY_RETURN_IF_ERROR(CheckNameFree(key));
  Ingredient ing;
  ing.id = static_cast<IngredientId>(ingredients_.size());
  ing.name = key;
  ing.category = category;
  ing.kind = IngredientKind::kBasic;
  ing.profile = std::move(profile);
  name_index_[key] = ing.id;
  ingredients_.push_back(std::move(ing));
  ++live_count_;
  return ingredients_.back().id;
}

culinary::Result<IngredientId> FlavorRegistry::AddCompoundIngredient(
    std::string_view name, Category category,
    const std::vector<IngredientId>& constituents) {
  if (constituents.empty()) {
    return culinary::Status::InvalidArgument(
        "compound ingredient needs constituents");
  }
  FlavorProfile pooled;
  for (IngredientId cid : constituents) {
    const Ingredient* c = Find(cid);
    if (c == nullptr) {
      return culinary::Status::NotFound("constituent id " +
                                        std::to_string(cid) + " not found");
    }
    pooled = pooled.Union(c->profile);
  }
  std::string key = NormalizeEntityName(name);
  CULINARY_RETURN_IF_ERROR(CheckNameFree(key));
  Ingredient ing;
  ing.id = static_cast<IngredientId>(ingredients_.size());
  ing.name = key;
  ing.category = category;
  ing.kind = IngredientKind::kCompound;
  ing.profile = std::move(pooled);
  ing.constituents = constituents;
  name_index_[key] = ing.id;
  ingredients_.push_back(std::move(ing));
  ++live_count_;
  return ingredients_.back().id;
}

culinary::Result<IngredientId> FlavorRegistry::BundleIngredients(
    std::string_view name, Category category,
    const std::vector<IngredientId>& constituents) {
  CULINARY_ASSIGN_OR_RETURN(IngredientId id,
                            AddCompoundIngredient(name, category, constituents));
  ingredients_[static_cast<size_t>(id)].kind = IngredientKind::kBundle;
  for (IngredientId cid : constituents) {
    CULINARY_RETURN_IF_ERROR(RemoveIngredient(cid));
  }
  return id;
}

culinary::Status FlavorRegistry::AddSynonym(IngredientId id,
                                            std::string_view synonym) {
  Ingredient* ing = nullptr;
  if (id >= 0 && static_cast<size_t>(id) < ingredients_.size() &&
      !ingredients_[static_cast<size_t>(id)].removed) {
    ing = &ingredients_[static_cast<size_t>(id)];
  }
  if (ing == nullptr) {
    return culinary::Status::NotFound("ingredient id " + std::to_string(id) +
                                      " not found");
  }
  std::string key = NormalizeEntityName(synonym);
  CULINARY_RETURN_IF_ERROR(CheckNameFree(key));
  name_index_[key] = id;
  ing->synonyms.push_back(key);
  return culinary::Status::OK();
}

culinary::Status FlavorRegistry::RemoveIngredient(IngredientId id) {
  if (id < 0 || static_cast<size_t>(id) >= ingredients_.size() ||
      ingredients_[static_cast<size_t>(id)].removed) {
    return culinary::Status::NotFound("ingredient id " + std::to_string(id) +
                                      " not found");
  }
  ingredients_[static_cast<size_t>(id)].removed = true;
  --live_count_;
  return culinary::Status::OK();
}

culinary::Status FlavorRegistry::RestoreIngredient(
    const Ingredient& ingredient) {
  if (ingredient.id != static_cast<IngredientId>(ingredients_.size())) {
    return culinary::Status::InvalidArgument(
        "restore id " + std::to_string(ingredient.id) +
        " out of order (expected " + std::to_string(ingredients_.size()) + ")");
  }
  Ingredient copy = ingredient;
  copy.name = NormalizeEntityName(copy.name);
  if (!copy.removed) {
    CULINARY_RETURN_IF_ERROR(CheckNameFree(copy.name));
    for (std::string& syn : copy.synonyms) {
      syn = NormalizeEntityName(syn);
      CULINARY_RETURN_IF_ERROR(CheckNameFree(syn));
    }
    name_index_[copy.name] = copy.id;
    for (const std::string& syn : copy.synonyms) {
      name_index_[syn] = copy.id;
    }
    ++live_count_;
  }
  ingredients_.push_back(std::move(copy));
  return culinary::Status::OK();
}

IngredientId FlavorRegistry::FindByName(std::string_view name) const {
  auto it = name_index_.find(NormalizeEntityName(name));
  if (it == name_index_.end()) return kInvalidIngredient;
  if (ingredients_[static_cast<size_t>(it->second)].removed) {
    return kInvalidIngredient;
  }
  return it->second;
}

culinary::Result<Ingredient> FlavorRegistry::GetIngredient(
    IngredientId id, bool include_removed) const {
  if (id < 0 || static_cast<size_t>(id) >= ingredients_.size()) {
    return culinary::Status::OutOfRange("invalid ingredient id " +
                                        std::to_string(id));
  }
  const Ingredient& ing = ingredients_[static_cast<size_t>(id)];
  if (ing.removed && !include_removed) {
    return culinary::Status::NotFound("ingredient id " + std::to_string(id) +
                                      " was removed");
  }
  return ing;
}

const Ingredient* FlavorRegistry::Find(IngredientId id) const {
  if (id < 0 || static_cast<size_t>(id) >= ingredients_.size()) return nullptr;
  const Ingredient& ing = ingredients_[static_cast<size_t>(id)];
  return ing.removed ? nullptr : &ing;
}

std::vector<IngredientId> FlavorRegistry::LiveIngredients() const {
  std::vector<IngredientId> out;
  out.reserve(live_count_);
  for (const Ingredient& ing : ingredients_) {
    if (!ing.removed) out.push_back(ing.id);
  }
  return out;
}

std::vector<std::pair<std::string, IngredientId>> FlavorRegistry::AllNames()
    const {
  std::vector<std::pair<std::string, IngredientId>> out;
  for (const Ingredient& ing : ingredients_) {
    if (ing.removed) continue;
    out.emplace_back(ing.name, ing.id);
    for (const std::string& syn : ing.synonyms) out.emplace_back(syn, ing.id);
  }
  return out;
}

size_t FlavorRegistry::SharedCompounds(IngredientId a, IngredientId b) const {
  const Ingredient* ia = Find(a);
  const Ingredient* ib = Find(b);
  if (ia == nullptr || ib == nullptr) return 0;
  return ia->profile.SharedCompounds(ib->profile);
}

}  // namespace culinary::flavor
