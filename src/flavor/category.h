#ifndef CULINARYLAB_FLAVOR_CATEGORY_H_
#define CULINARYLAB_FLAVOR_CATEGORY_H_

#include <optional>
#include <string_view>

namespace culinary::flavor {

/// The 21 ingredient categories used by the paper (§III.B).
enum class Category : int {
  kVegetable = 0,
  kDairy = 1,
  kLegume = 2,
  kMaize = 3,
  kCereal = 4,
  kMeat = 5,
  kNutsAndSeeds = 6,
  kPlant = 7,
  kFish = 8,
  kSeafood = 9,
  kSpice = 10,
  kBakery = 11,
  kBeverageAlcoholic = 12,
  kBeverage = 13,
  kEssentialOil = 14,
  kFlower = 15,
  kFruit = 16,
  kFungus = 17,
  kHerb = 18,
  kAdditive = 19,
  kDish = 20,
};

/// Number of categories.
inline constexpr int kNumCategories = 21;

/// Stable display name ("Vegetable", "Nuts and Seeds", ...).
std::string_view CategoryToString(Category category);

/// Parses a display name (case-insensitive); nullopt for unknown names.
std::optional<Category> CategoryFromString(std::string_view name);

/// All categories in declaration order.
const Category* AllCategories();

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_CATEGORY_H_
