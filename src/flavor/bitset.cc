#include "flavor/bitset.h"

#include <algorithm>

namespace culinary::flavor {

namespace {

using bitset_internal::PopCount64;

inline size_t WordsFor(size_t universe) { return (universe + 63) / 64; }

}  // namespace

CompoundBitset::CompoundBitset(size_t universe)
    : words_(WordsFor(universe), 0), universe_(universe) {}

CompoundBitset CompoundBitset::FromProfile(const FlavorProfile& profile,
                                           size_t universe) {
  const std::vector<MoleculeId>& ids = profile.ids();
  if (!ids.empty() && ids.back() >= 0) {
    universe = std::max(universe, static_cast<size_t>(ids.back()) + 1);
  }
  CompoundBitset out(universe);
  for (MoleculeId id : ids) {
    if (id < 0) continue;
    out.words_[static_cast<size_t>(id) >> 6] |= uint64_t{1}
                                                << (static_cast<size_t>(id) & 63);
    ++out.count_;
  }
  return out;
}

bool CompoundBitset::Test(MoleculeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= words_.size() * 64) return false;
  return (words_[static_cast<size_t>(id) >> 6] >>
          (static_cast<size_t>(id) & 63)) &
         1;
}

void CompoundBitset::Set(MoleculeId id) {
  if (id < 0) return;
  size_t bit = static_cast<size_t>(id);
  if (bit >= universe_) universe_ = bit + 1;
  if ((bit >> 6) >= words_.size()) words_.resize((bit >> 6) + 1, 0);
  uint64_t mask = uint64_t{1} << (bit & 63);
  if (!(words_[bit >> 6] & mask)) {
    words_[bit >> 6] |= mask;
    ++count_;
  }
}

FlavorProfile CompoundBitset::ToProfile() const {
  std::vector<MoleculeId> ids;
  ids.reserve(count_);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      uint64_t bit = word & (~word + 1);  // lowest set bit
      ids.push_back(static_cast<MoleculeId>(w * 64 + PopCount64(bit - 1)));
      word ^= bit;
    }
  }
  return FlavorProfile(std::move(ids));
}

bool operator==(const CompoundBitset& a, const CompoundBitset& b) {
  if (a.count_ != b.count_) return false;
  size_t n = std::min(a.words_.size(), b.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.words_[i] != b.words_[i]) return false;
  }
  // The longer tail (if any) must be all zero; equal counts already
  // guarantee that, but be defensive about direct word manipulation.
  const auto& longer = a.words_.size() > n ? a.words_ : b.words_;
  for (size_t i = n; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

}  // namespace culinary::flavor
