#include "flavor/bitset.h"

#include <algorithm>

namespace culinary::flavor {

CompoundBitset::CompoundBitset(size_t universe) : bits_(universe) {}

CompoundBitset CompoundBitset::FromProfile(const FlavorProfile& profile,
                                           size_t universe) {
  const std::vector<MoleculeId>& ids = profile.ids();
  if (!ids.empty() && ids.back() >= 0) {
    universe = std::max(universe, static_cast<size_t>(ids.back()) + 1);
  }
  CompoundBitset out(universe);
  for (MoleculeId id : ids) {
    if (id < 0) continue;
    out.bits_.Set(static_cast<size_t>(id));
    ++out.count_;
  }
  return out;
}

bool CompoundBitset::Test(MoleculeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= bits_.num_bits()) return false;
  return bits_.Test(static_cast<size_t>(id));
}

void CompoundBitset::Set(MoleculeId id) {
  if (id < 0) return;
  size_t bit = static_cast<size_t>(id);
  if (bit >= bits_.num_bits()) bits_.Resize(bit + 1);
  if (!bits_.Test(bit)) {
    bits_.Set(bit);
    ++count_;
  }
}

FlavorProfile CompoundBitset::ToProfile() const {
  std::vector<MoleculeId> ids;
  ids.reserve(count_);
  bits_.ForEachSetBit(0, bits_.num_bits(), [&ids](size_t bit) {
    ids.push_back(static_cast<MoleculeId>(bit));
  });
  return FlavorProfile(std::move(ids));
}

bool operator==(const CompoundBitset& a, const CompoundBitset& b) {
  if (a.count_ != b.count_) return false;
  const size_t n = std::min(a.bits_.num_words(), b.bits_.num_words());
  for (size_t i = 0; i < n; ++i) {
    if (a.bits_.words()[i] != b.bits_.words()[i]) return false;
  }
  // The longer tail (if any) must be all zero; equal counts already
  // guarantee that, but be defensive about direct word manipulation.
  const culinary::Bitmap& longer =
      a.bits_.num_words() > n ? a.bits_ : b.bits_;
  for (size_t i = n; i < longer.num_words(); ++i) {
    if (longer.words()[i] != 0) return false;
  }
  return true;
}

}  // namespace culinary::flavor
