#ifndef CULINARYLAB_FLAVOR_BITSET_H_
#define CULINARYLAB_FLAVOR_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitmap.h"
#include "flavor/profile.h"

namespace culinary::flavor {

namespace bitset_internal {

/// Kept as an alias of the shared helper: the packed-word substrate now
/// lives in common/bitmap.h so the dataframe kernels share one definition.
using culinary::PopCount64;

}  // namespace bitset_internal

/// A flavor profile packed as a fixed-universe bitset: bit `m` is set iff
/// molecule `m` belongs to the profile.
///
/// `FlavorProfile` keeps the sorted-id representation that the registry and
/// curation operations want; `CompoundBitset` is the hot-path twin, rebased
/// on the shared `culinary::Bitmap`. With the registry's molecule universe
/// of ~2,200 compounds a profile packs into ~35 `uint64_t` words, so
/// |A ∩ B| collapses from a branchy O(|A|+|B|) sorted merge into a
/// branch-free word loop of AND + popcount that the compiler can keep
/// entirely in vector registers. `PairingCache` converts every profile once
/// and then builds its O(n²) shared-compound triangle on bitsets; the
/// counts are exactly those of `FlavorProfile::SharedCompounds` (see the
/// property test in tests/flavor/bitset_test.cc).
class CompoundBitset {
 public:
  /// An empty set over an empty universe.
  CompoundBitset() = default;

  /// An empty set with capacity for molecule ids in [0, universe).
  explicit CompoundBitset(size_t universe);

  /// Packs `profile` into a bitset. The universe grows beyond `universe`
  /// when the profile contains larger ids; negative ids are ignored.
  static CompoundBitset FromProfile(const FlavorProfile& profile,
                                    size_t universe);

  /// Bit capacity (largest representable molecule id + 1, rounded up to a
  /// whole word by the backing store).
  size_t universe() const { return bits_.num_bits(); }

  /// Number of molecules in the set (cached; O(1)).
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// True iff molecule `id` is in the set.
  bool Test(MoleculeId id) const;

  /// Inserts molecule `id`, growing the universe as needed; negative ids
  /// are ignored.
  void Set(MoleculeId id);

  /// |this ∩ other| via word-wise AND + popcount. Defined inline: this is
  /// the innermost call of the O(n²) triangle build, and an out-of-line
  /// call would cost as much as the ~35-word loop itself.
  size_t IntersectionCount(const CompoundBitset& other) const {
    const size_t n = std::min(bits_.num_words(), other.bits_.num_words());
    return culinary::IntersectionPopCount(bits_.words(), other.bits_.words(),
                                          n);
  }

  /// |this ∪ other| = |A| + |B| − |A ∩ B|.
  size_t UnionCount(const CompoundBitset& other) const {
    return count_ + other.count_ - IntersectionCount(other);
  }

  /// Jaccard similarity |A∩B| / |A∪B| (0 when both sets are empty).
  double Jaccard(const CompoundBitset& other) const {
    size_t inter = IntersectionCount(other);
    size_t uni = count_ + other.count_ - inter;
    if (uni == 0) return 0.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
  }

  /// Unpacks back to the sorted-id representation.
  FlavorProfile ToProfile() const;

  /// Backing words, least-significant molecule first.
  const uint64_t* words() const { return bits_.words(); }
  size_t num_words() const { return bits_.num_words(); }

  friend bool operator==(const CompoundBitset& a, const CompoundBitset& b);

 private:
  culinary::Bitmap bits_;
  size_t count_ = 0;
};

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_BITSET_H_
