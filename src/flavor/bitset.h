#ifndef CULINARYLAB_FLAVOR_BITSET_H_
#define CULINARYLAB_FLAVOR_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include <algorithm>

#include "flavor/profile.h"

namespace culinary::flavor {

namespace bitset_internal {

/// Portable single-word popcount. On targets that guarantee the POPCNT
/// instruction the builtin lowers to one instruction; elsewhere GCC would
/// emit a libgcc call per word, so we fall back to the SWAR reduction
/// (~12 ops, branch-free, auto-vectorizable).
inline uint64_t PopCount64(uint64_t x) {
#if defined(__POPCNT__)
  return static_cast<uint64_t>(__builtin_popcountll(x));
#else
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return (x * 0x0101010101010101ULL) >> 56;
#endif
}

}  // namespace bitset_internal

/// A flavor profile packed as a fixed-universe bitset: bit `m` is set iff
/// molecule `m` belongs to the profile.
///
/// `FlavorProfile` keeps the sorted-id representation that the registry and
/// curation operations want; `CompoundBitset` is the hot-path twin. With the
/// registry's molecule universe of ~2,200 compounds a profile packs into
/// ~35 `uint64_t` words, so |A ∩ B| collapses from a branchy O(|A|+|B|)
/// sorted merge into a branch-free word loop of AND + popcount that the
/// compiler can keep entirely in vector registers. `PairingCache` converts
/// every profile once and then builds its O(n²) shared-compound triangle on
/// bitsets; the counts are exactly those of
/// `FlavorProfile::SharedCompounds` (see the property test in
/// tests/flavor/bitset_test.cc).
class CompoundBitset {
 public:
  /// An empty set over an empty universe.
  CompoundBitset() = default;

  /// An empty set with capacity for molecule ids in [0, universe).
  explicit CompoundBitset(size_t universe);

  /// Packs `profile` into a bitset. The universe grows beyond `universe`
  /// when the profile contains larger ids; negative ids are ignored.
  static CompoundBitset FromProfile(const FlavorProfile& profile,
                                    size_t universe);

  /// Bit capacity (largest representable molecule id + 1, rounded up to a
  /// whole word by the backing store).
  size_t universe() const { return universe_; }

  /// Number of molecules in the set (cached; O(1)).
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// True iff molecule `id` is in the set.
  bool Test(MoleculeId id) const;

  /// Inserts molecule `id`, growing the universe as needed; negative ids
  /// are ignored.
  void Set(MoleculeId id);

  /// |this ∩ other| via word-wise AND + popcount. Defined inline: this is
  /// the innermost call of the O(n²) triangle build, and an out-of-line
  /// call would cost as much as the ~35-word loop itself.
  size_t IntersectionCount(const CompoundBitset& other) const {
    const size_t n = std::min(words_.size(), other.words_.size());
    const uint64_t* a = words_.data();
    const uint64_t* b = other.words_.data();
    // Four independent accumulators so the word loop pipelines / vectorizes.
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      c0 += bitset_internal::PopCount64(a[i] & b[i]);
      c1 += bitset_internal::PopCount64(a[i + 1] & b[i + 1]);
      c2 += bitset_internal::PopCount64(a[i + 2] & b[i + 2]);
      c3 += bitset_internal::PopCount64(a[i + 3] & b[i + 3]);
    }
    for (; i < n; ++i) c0 += bitset_internal::PopCount64(a[i] & b[i]);
    return static_cast<size_t>(c0 + c1 + c2 + c3);
  }

  /// |this ∪ other| = |A| + |B| − |A ∩ B|.
  size_t UnionCount(const CompoundBitset& other) const {
    return count_ + other.count_ - IntersectionCount(other);
  }

  /// Jaccard similarity |A∩B| / |A∪B| (0 when both sets are empty).
  double Jaccard(const CompoundBitset& other) const {
    size_t inter = IntersectionCount(other);
    size_t uni = count_ + other.count_ - inter;
    if (uni == 0) return 0.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
  }

  /// Unpacks back to the sorted-id representation.
  FlavorProfile ToProfile() const;

  /// Backing words, least-significant molecule first.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const CompoundBitset& a, const CompoundBitset& b);

 private:
  std::vector<uint64_t> words_;
  size_t universe_ = 0;
  size_t count_ = 0;
};

}  // namespace culinary::flavor

#endif  // CULINARYLAB_FLAVOR_BITSET_H_
