// culinary — command-line front end to the CulinaryLab library.
//
// Subcommands (all operate on the deterministic synthetic world; pass
// --small for the miniature world and --seed=N to reseed):
//
//   culinary stats                          Table-1-style dataset summary
//   culinary export --out=PREFIX            write the world as CSVs:
//                                           <PREFIX>_{recipes,ingredients,
//                                           molecules,entities}.csv
//   culinary pairing [--region=CODE] [--null-recipes=N]
//                                           food-pairing Z-scores (Fig 4)
//   culinary partners NAME [--top=K]        best/worst flavor partners
//   culinary parse PHRASE...                run the aliasing protocol
//   culinary classify [--probes=N]          leave-one-out fingerprinting
//   culinary similar [--region=CODE]        nearest culinary neighbors
//   culinary authentic --region=CODE        most authentic ingredients
//   culinary analyze --recipes=FILE [--registry=PREFIX] [--null-recipes=N]
//                                           food pairing over an external
//                                           recipe CSV; names resolve
//                                           against a saved registry
//                                           (--registry) or the generated one
//
// Observability (any subcommand): --metrics-out=FILE dumps the metrics
// registry as JSON after the command finishes; --trace-out=FILE dumps the
// recorded spans in chrome://tracing format. Either flag switches the
// observability layer on for the run; results are unchanged (the layer only
// records, it never steers execution).
//
// Snapshots (any world-consuming subcommand): --snapshot-out=FILE saves the
// built world — registry, recipes, and the world pairing triangle — as a
// crash-safe binary snapshot; --snapshot-in=FILE loads it instead of
// regenerating/re-parsing (5x+ faster cold start). A snapshot whose
// world-inputs digest no longer matches the requested inputs, or that is
// corrupt, is quarantined and the world rebuilt from source, after which the
// snapshot is automatically refreshed.
//
// Lifecycle (pairing / analyze): --deadline-ms=N bounds the whole command's
// analysis wall time — an ensemble that overruns stops at the next block
// boundary and the command exits 3. --checkpoint=PREFIX persists completed
// ensemble blocks to <PREFIX>.<region>.<model>.ckpt as they finish;
// --resume restores them on the next run and recomputes only what's
// missing, with bit-identical results. Unknown --flags and malformed
// numeric flag values are errors (exit 2), so a typo'd --resume can no
// longer silently run from scratch and --deadline-ms=abc can no longer
// silently mean "no deadline".

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/fingerprint.h"
#include "analysis/null_models.h"
#include "analysis/pairing.h"
#include "analysis/report.h"
#include "common/cancellation.h"
#include "common/string_util.h"
#include "analysis/similarity.h"
#include "datagen/world.h"
#include "flavor/registry_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recipe/database.h"
#include "network/flavor_network.h"
#include "recipe/parser.h"
#include "robustness/error_sink.h"
#include "snapshot/snapshot.h"

/// Binds the value of a Result or prints the error and exits the command.
#define CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(var, expr)          \
  auto var##_result = (expr);                                  \
  if (!var##_result.ok()) {                                    \
    std::fprintf(stderr, "error: %s\n",                        \
                 var##_result.status().ToString().c_str());    \
    return 1;                                                  \
  }                                                            \
  const auto& var = var##_result.value()

namespace {

using namespace culinary;  // NOLINT(build/namespaces)

struct GlobalArgs {
  bool small = false;
  uint64_t seed = 0;
  size_t null_recipes = 20000;
  std::string region;
  std::string out = "culinary_world";
  std::string recipes_file;
  std::string registry_prefix;
  size_t top = 10;
  size_t probes = 10;
  std::string metrics_out;
  std::string trace_out;
  /// Load the world from this binary snapshot instead of rebuilding it;
  /// corruption or a stale digest degrades to a rebuild + auto-refresh.
  std::string snapshot_in;
  /// Write the world as a binary snapshot after building it.
  std::string snapshot_out;
  double deadline_ms = 0.0;  ///< 0 = no deadline
  std::string checkpoint;
  bool resume = false;
  /// The command-wide deadline, started once at process start so every
  /// sweep in the command shares one budget (resolved in main()).
  culinary::Deadline deadline;
  std::vector<std::string> positional;
  /// Arguments that looked like flags (`--...`) but matched nothing; any
  /// entry here is a usage error (exit 2).
  std::vector<std::string> unknown_flags;
  /// Known flags whose value failed strict numeric parsing; a usage error
  /// (exit 2) just like an unknown flag — a typo'd value must not silently
  /// become 0 ("no deadline", "seed 0", ...).
  std::vector<std::string> bad_values;
};

/// Strict decimal parse of a non-negative integer: the whole value must be
/// consumed, no strtoull "0 on garbage" fallback.
bool ParseUint64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

/// Strict parse of a non-negative double (rejects trailing garbage, NaN,
/// negatives, and overflow).
bool ParseNonNegativeDoubleValue(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double parsed = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  if (!(parsed >= 0.0)) return false;
  *out = parsed;
  return true;
}

GlobalArgs ParseArgs(int argc, char** argv, int first) {
  GlobalArgs args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) {
      return a.substr(strlen(prefix));
    };
    auto take_uint = [&](const char* prefix, auto* out) {
      uint64_t parsed = 0;
      if (ParseUint64Value(value(prefix), &parsed)) {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(parsed);
      } else {
        args.bad_values.push_back(a);
      }
    };
    if (a == "--small") {
      args.small = true;
    } else if (StartsWith(a, "--seed=")) {
      take_uint("--seed=", &args.seed);
    } else if (StartsWith(a, "--null-recipes=")) {
      take_uint("--null-recipes=", &args.null_recipes);
    } else if (StartsWith(a, "--region=")) {
      args.region = value("--region=");
    } else if (StartsWith(a, "--out=")) {
      args.out = value("--out=");
    } else if (StartsWith(a, "--recipes=")) {
      args.recipes_file = value("--recipes=");
    } else if (StartsWith(a, "--registry=")) {
      args.registry_prefix = value("--registry=");
    } else if (StartsWith(a, "--top=")) {
      take_uint("--top=", &args.top);
    } else if (StartsWith(a, "--probes=")) {
      take_uint("--probes=", &args.probes);
    } else if (StartsWith(a, "--metrics-out=")) {
      args.metrics_out = value("--metrics-out=");
    } else if (StartsWith(a, "--trace-out=")) {
      args.trace_out = value("--trace-out=");
    } else if (StartsWith(a, "--snapshot-in=")) {
      args.snapshot_in = value("--snapshot-in=");
    } else if (StartsWith(a, "--snapshot-out=")) {
      args.snapshot_out = value("--snapshot-out=");
    } else if (StartsWith(a, "--deadline-ms=")) {
      if (!ParseNonNegativeDoubleValue(value("--deadline-ms="),
                                       &args.deadline_ms)) {
        args.bad_values.push_back(a);
      }
    } else if (StartsWith(a, "--checkpoint=")) {
      args.checkpoint = value("--checkpoint=");
    } else if (a == "--resume") {
      args.resume = true;
    } else if (StartsWith(a, "--")) {
      args.unknown_flags.push_back(a);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

datagen::WorldSpec WorldSpecFor(const GlobalArgs& args) {
  datagen::WorldSpec spec =
      args.small ? datagen::WorldSpec::Small() : datagen::WorldSpec::Default();
  if (args.seed != 0) spec.seed = args.seed;
  return spec;
}

Result<datagen::SyntheticWorld> BuildWorld(const GlobalArgs& args) {
  datagen::WorldSpec spec = WorldSpecFor(args);
  std::fprintf(stderr, "generating %s world (seed %llu)...\n",
               args.small ? "small" : "default",
               static_cast<unsigned long long>(spec.seed));
  return datagen::GenerateWorld(spec);
}

/// Digest of the inputs the generated world is a pure function of.
uint64_t GeneratedWorldDigest(const GlobalArgs& args) {
  return snapshot::DigestGeneratedWorld(WorldSpecFor(args).seed, args.small);
}

/// Acquires a world for `digest`-pinned inputs: straight rebuild without
/// `--snapshot-in`, otherwise snapshot load with kBestEffort degradation
/// (quarantine + rebuild + auto-refresh) and a stderr account of what
/// happened. `--snapshot-out` always publishes a fresh snapshot.
Result<snapshot::LoadedWorld> AcquireWorldWith(
    const GlobalArgs& args, uint64_t digest,
    const snapshot::WorldRebuildFn& rebuild) {
  Result<snapshot::LoadedWorld> world = Status::Internal("unset");
  if (args.snapshot_in.empty()) {
    world = rebuild();
  } else {
    snapshot::SnapshotFallbackReport report;
    world = snapshot::LoadWorldSnapshotOrRebuild(
        args.snapshot_in, digest, robustness::ErrorPolicy::kBestEffort,
        rebuild, /*rewrite_snapshot=*/true, &report);
    if (report.snapshot_used) {
      std::fprintf(stderr, "world loaded from snapshot %s\n",
                   args.snapshot_in.c_str());
    } else if (report.fell_back) {
      std::fprintf(stderr,
                   "warning: snapshot %s unusable (%s); rebuilt from source%s\n",
                   args.snapshot_in.c_str(), report.note.c_str(),
                   report.rewrote ? " and refreshed the snapshot" : "");
      if (!report.quarantine_path.empty()) {
        std::fprintf(stderr, "warning: corrupt snapshot quarantined at %s\n",
                     report.quarantine_path.c_str());
      }
    } else if (report.snapshot_missing) {
      std::fprintf(stderr, "no snapshot at %s; built from source%s\n",
                   args.snapshot_in.c_str(),
                   report.rewrote ? " and wrote one" : "");
    }
  }
  if (world.ok() && !args.snapshot_out.empty() &&
      args.snapshot_out != args.snapshot_in) {
    Status wrote = snapshot::WriteSnapshotForWorld(world.value(), digest,
                                                   args.snapshot_out);
    if (!wrote.ok()) {
      return wrote.WithContext("writing snapshot " + args.snapshot_out);
    }
    std::fprintf(stderr, "snapshot written to %s\n", args.snapshot_out.c_str());
  }
  return world;
}

/// The standard path for subcommands over the generated world.
Result<snapshot::LoadedWorld> AcquireWorld(const GlobalArgs& args) {
  return AcquireWorldWith(
      args, GeneratedWorldDigest(args),
      [&args]() -> Result<snapshot::LoadedWorld> {
        CULINARY_ASSIGN_OR_RETURN(datagen::SyntheticWorld generated,
                                  BuildWorld(args));
        snapshot::LoadedWorld world;
        world.registry_ptr = std::move(generated.universe.registry);
        world.database = std::move(generated.database);
        return world;
      });
}

int CmdStats(const GlobalArgs& args) {
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  analysis::TextTable table({"Region", "Code", "Recipes", "Ingredients",
                             "Mean size"});
  for (int i = 0; i < recipe::kNumRegions; ++i) {
    recipe::Region region = recipe::AllRegions()[i];
    recipe::Cuisine cuisine = world.db().CuisineFor(region);
    table.AddRow({std::string(recipe::RegionName(region)),
                  std::string(recipe::RegionCode(region)),
                  std::to_string(cuisine.num_recipes()),
                  std::to_string(cuisine.unique_ingredients().size()),
                  FormatDouble(cuisine.MeanRecipeSize(), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("total: %zu recipes, %zu live ingredients, %zu molecules\n",
              world.db().num_recipes(),
              world.registry().num_live_ingredients(),
              world.registry().num_molecules());
  return 0;
}

int CmdExport(const GlobalArgs& args) {
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, BuildWorld(args));
  Status s = datagen::ExportWorldCsv(world, args.out);
  if (!s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  s = flavor::SaveRegistryCsv(world.registry(), args.out);
  if (!s.ok()) {
    std::fprintf(stderr, "registry export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_{recipes,ingredients,molecules,entities}.csv\n",
              args.out.c_str());
  if (!args.snapshot_out.empty()) {
    analysis::PairingCache cache(world.registry(),
                                 world.db().WorldCuisine().unique_ingredients());
    s = snapshot::WriteWorldSnapshot(world.registry(), world.db(), &cache,
                                     GeneratedWorldDigest(args),
                                     args.snapshot_out);
    if (!s.ok()) {
      std::fprintf(stderr, "snapshot export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote snapshot %s\n", args.snapshot_out.c_str());
  }
  return 0;
}

/// Builds the null-model options for one cuisine from the command line:
/// shared deadline, plus a per-region checkpoint prefix (the library adds
/// the per-model suffix) so one --checkpoint=PREFIX serves a whole
/// multi-region run without collisions.
analysis::NullModelOptions EnsembleOptions(const GlobalArgs& args,
                                           const recipe::Cuisine& cuisine,
                                           analysis::EnsembleProgress* progress) {
  analysis::NullModelOptions options;
  options.num_recipes = args.null_recipes;
  options.exec.deadline = args.deadline;
  options.progress = progress;
  if (!args.checkpoint.empty()) {
    options.checkpoint_prefix =
        args.checkpoint + "." + std::string(recipe::RegionCode(cuisine.region()));
    options.resume = args.resume;
  }
  return options;
}

/// Reports a stopped / failed ensemble, including how far it got (so the
/// operator knows a --resume is worthwhile). Exit code 3 for lifecycle
/// stops (deadline/cancel) — retryable with --resume — versus 1 for real
/// analysis failures.
int ReportEnsembleFailure(const culinary::Status& status,
                          const analysis::EnsembleProgress& progress) {
  std::fprintf(stderr, "analysis failed: %s\n", status.ToString().c_str());
  if (progress.blocks_total > 0) {
    std::fprintf(stderr, "  progress: %zu/%zu blocks completed (%zu resumed)\n",
                 progress.blocks_completed, progress.blocks_total,
                 progress.blocks_resumed);
  }
  if (!progress.checkpoint_note.empty()) {
    std::fprintf(stderr, "  note: %s\n", progress.checkpoint_note.c_str());
  }
  return status.IsDeadlineExceeded() || status.IsCancelled() ? 3 : 1;
}

void ReportCheckpointUse(const GlobalArgs& args,
                         const analysis::EnsembleProgress& progress) {
  if (args.checkpoint.empty()) return;
  if (!progress.checkpoint_note.empty()) {
    std::fprintf(stderr, "note: %s\n", progress.checkpoint_note.c_str());
  }
  if (progress.blocks_resumed > 0) {
    std::fprintf(stderr, "resumed %zu of %zu blocks from checkpoint\n",
                 progress.blocks_resumed, progress.blocks_total);
  }
}

int PairingReport(const snapshot::LoadedWorld& world,
                  const recipe::Cuisine& cuisine, const GlobalArgs& args) {
  analysis::PairingCache cache(world.registry(),
                               cuisine.unique_ingredients());
  analysis::EnsembleProgress progress;
  analysis::NullModelOptions options = EnsembleOptions(args, cuisine,
                                                       &progress);
  auto results = analysis::CompareAgainstAllModels(cache, cuisine,
                                                   world.registry(), options);
  if (!results.ok()) {
    return ReportEnsembleFailure(results.status(), progress);
  }
  ReportCheckpointUse(args, progress);
  std::printf("%-22s N_s(real)=%.3f\n",
              std::string(recipe::RegionName(cuisine.region())).c_str(),
              (*results)[0].real_mean);
  for (const auto& r : *results) {
    std::printf("  vs %-20s null mean %.3f  Z = %+.1f\n",
                std::string(analysis::NullModelKindToString(r.kind)).c_str(),
                r.null_mean, r.z_score);
  }
  return 0;
}

int CmdPairing(const GlobalArgs& args) {
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  if (!args.region.empty()) {
    auto region = recipe::RegionFromCode(args.region);
    if (!region.has_value() || *region == recipe::Region::kWorld) {
      std::fprintf(stderr, "unknown region '%s'\n", args.region.c_str());
      return 1;
    }
    return PairingReport(world, world.db().CuisineFor(*region), args);
  }
  for (int i = 0; i < recipe::kNumRegions; ++i) {
    int rc = PairingReport(world,
                           world.db().CuisineFor(recipe::AllRegions()[i]),
                           args);
    if (rc != 0) return rc;
  }
  return 0;
}

int CmdPartners(const GlobalArgs& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: culinary partners NAME [--top=K]\n");
    return 2;
  }
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  const flavor::FlavorRegistry& reg = world.registry();
  flavor::IngredientId id = reg.FindByName(args.positional[0]);
  if (id == flavor::kInvalidIngredient) {
    std::fprintf(stderr, "unknown ingredient '%s'\n",
                 args.positional[0].c_str());
    return 1;
  }
  const flavor::Ingredient* target = reg.Find(id);
  struct Partner {
    const flavor::Ingredient* ing;
    size_t shared;
  };
  std::vector<Partner> partners;
  for (flavor::IngredientId other : reg.LiveIngredients()) {
    if (other == id) continue;
    const flavor::Ingredient* ing = reg.Find(other);
    partners.push_back({ing, target->profile.SharedCompounds(ing->profile)});
  }
  std::sort(partners.begin(), partners.end(),
            [](const Partner& a, const Partner& b) {
              return a.shared > b.shared;
            });
  std::printf("%s (%zu molecules) — top %zu partners by shared compounds:\n",
              target->name.c_str(), target->profile.size(), args.top);
  for (size_t i = 0; i < args.top && i < partners.size(); ++i) {
    std::printf("  %2zu. %-24s %zu shared\n", i + 1,
                partners[i].ing->name.c_str(), partners[i].shared);
  }
  return 0;
}

int CmdParse(const GlobalArgs& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: culinary parse PHRASE...\n");
    return 2;
  }
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  recipe::IngredientPhraseParser parser(&world.registry());
  for (const std::string& phrase : args.positional) {
    recipe::PhraseMatch m = parser.Parse(phrase);
    const char* status = m.status == recipe::MatchStatus::kMatched
                             ? "MATCHED"
                             : (m.status == recipe::MatchStatus::kPartial
                                    ? "PARTIAL"
                                    : "UNRECOGNIZED");
    std::printf("%s: %s%s\n", status, phrase.c_str(),
                m.used_fuzzy ? " (fuzzy)" : "");
    for (flavor::IngredientId id : m.ids) {
      std::printf("  -> %s\n", world.registry().Find(id)->name.c_str());
    }
    for (const std::string& t : m.leftover_tokens) {
      std::printf("  ?? %s\n", t.c_str());
    }
  }
  return 0;
}

int CmdClassify(const GlobalArgs& args) {
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  analysis::CuisineClassifier classifier(world.db().AllCuisines());
  auto eval = classifier.EvaluateLeaveOneOut(args.probes);
  analysis::TextTable table({"Region", "LOO accuracy"});
  for (const auto& [region, acc] : eval.per_region_accuracy) {
    table.AddRow({std::string(recipe::RegionCode(region)),
                  FormatDouble(100.0 * acc, 1) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("overall: %.1f%% over %zu probes\n", 100.0 * eval.accuracy(),
              eval.total);
  return 0;
}

int AnalyzeWithDatabase(const GlobalArgs& args,
                        const flavor::FlavorRegistry& registry,
                        const recipe::RecipeDatabase& db) {
  for (int i = 0; i < recipe::kNumRegions; ++i) {
    recipe::Cuisine cuisine = db.CuisineFor(recipe::AllRegions()[i]);
    if (cuisine.num_recipes() < 10) continue;  // too small to analyze
    analysis::PairingCache cache(registry, cuisine.unique_ingredients());
    analysis::EnsembleProgress progress;
    analysis::NullModelOptions options = EnsembleOptions(args, cuisine,
                                                         &progress);
    auto results =
        analysis::CompareAgainstAllModels(cache, cuisine, registry, options);
    if (!results.ok()) {
      return ReportEnsembleFailure(results.status(), progress);
    }
    ReportCheckpointUse(args, progress);
    std::printf("%-22s N_s(real)=%.3f\n",
                std::string(recipe::RegionName(cuisine.region())).c_str(),
                (*results)[0].real_mean);
    for (const auto& r : *results) {
      std::printf("  vs %-20s null mean %.3f  Z = %+.1f\n",
                  std::string(analysis::NullModelKindToString(r.kind)).c_str(),
                  r.null_mean, r.z_score);
    }
  }
  return 0;
}

/// Digest of everything `analyze` consumes: the recipe CSV bytes plus
/// either the saved registry CSVs or the generated-world inputs. Any byte
/// change in any file makes dependent snapshots stale.
Result<uint64_t> AnalyzeInputsDigest(const GlobalArgs& args) {
  if (!args.registry_prefix.empty()) {
    return snapshot::DigestFiles({args.registry_prefix + "_molecules.csv",
                                  args.registry_prefix + "_entities.csv",
                                  args.recipes_file});
  }
  CULINARY_ASSIGN_OR_RETURN(uint64_t recipes_digest,
                            snapshot::DigestFiles({args.recipes_file}));
  return snapshot::CombineDigests(GeneratedWorldDigest(args), recipes_digest);
}

int CmdAnalyze(const GlobalArgs& args) {
  if (args.recipes_file.empty()) {
    std::fprintf(stderr,
                 "usage: culinary analyze --recipes=FILE [--registry=PREFIX]\n");
    return 2;
  }
  auto rebuild = [&args]() -> Result<snapshot::LoadedWorld> {
    snapshot::LoadedWorld world;
    if (!args.registry_prefix.empty()) {
      // Self-contained mode: resolve names against a saved registry instead
      // of regenerating the synthetic world.
      CULINARY_ASSIGN_OR_RETURN(flavor::FlavorRegistry registry,
                                flavor::LoadRegistryCsv(args.registry_prefix));
      world.registry_ptr =
          std::make_unique<flavor::FlavorRegistry>(std::move(registry));
    } else {
      CULINARY_ASSIGN_OR_RETURN(datagen::SyntheticWorld generated,
                                BuildWorld(args));
      world.registry_ptr = std::move(generated.universe.registry);
    }
    size_t skipped = 0;
    auto db = recipe::RecipeDatabase::LoadCsv(
        args.recipes_file, world.registry_ptr.get(), &skipped);
    if (!db.ok()) {
      return db.status().WithContext("loading " + args.recipes_file);
    }
    std::fprintf(stderr, "loaded %zu recipes (%zu rows skipped) from %s\n",
                 db->num_recipes(), skipped, args.recipes_file.c_str());
    world.database =
        std::make_unique<recipe::RecipeDatabase>(std::move(db).value());
    return world;
  };
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(digest, AnalyzeInputsDigest(args));
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world,
                                     AcquireWorldWith(args, digest, rebuild));
  return AnalyzeWithDatabase(args, world.registry(), world.db());
}

int CmdSimilar(const GlobalArgs& args) {
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  std::vector<recipe::Cuisine> cuisines = world.db().AllCuisines();
  auto show = [&](size_t target) -> int {
    auto nearest = analysis::NearestCuisines(
        cuisines, target, args.top, analysis::CuisineSimilarity::kUsageCosine);
    if (!nearest.ok()) {
      std::fprintf(stderr, "similarity failed\n");
      return 1;
    }
    std::printf("%s nearest cuisines (usage cosine):\n",
                std::string(recipe::RegionCode(cuisines[target].region()))
                    .c_str());
    for (const auto& [region, score] : *nearest) {
      std::printf("  %-5s %.3f\n",
                  std::string(recipe::RegionCode(region)).c_str(), score);
    }
    return 0;
  };
  if (!args.region.empty()) {
    auto region = recipe::RegionFromCode(args.region);
    if (!region.has_value()) {
      std::fprintf(stderr, "unknown region '%s'\n", args.region.c_str());
      return 1;
    }
    for (size_t c = 0; c < cuisines.size(); ++c) {
      if (cuisines[c].region() == *region) return show(c);
    }
    return 1;
  }
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (int rc = show(c); rc != 0) return rc;
  }
  return 0;
}

int CmdAuthentic(const GlobalArgs& args) {
  if (args.region.empty()) {
    std::fprintf(stderr, "usage: culinary authentic --region=CODE [--top=K]\n");
    return 2;
  }
  auto region = recipe::RegionFromCode(args.region);
  if (!region.has_value() || *region == recipe::Region::kWorld) {
    std::fprintf(stderr, "unknown region '%s'\n", args.region.c_str());
    return 1;
  }
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(world, AcquireWorld(args));
  std::vector<recipe::Cuisine> cuisines = world.db().AllCuisines();
  size_t target = 0;
  for (size_t c = 0; c < cuisines.size(); ++c) {
    if (cuisines[c].region() == *region) target = c;
  }
  CULINARY_ASSIGN_OR_RETURN_FOR_MAIN(
      authentic,
      network::MostAuthenticIngredients(cuisines, target, args.top));
  std::printf("most authentic ingredients of %s:\n", args.region.c_str());
  for (const auto& ai : authentic) {
    const flavor::Ingredient* ing = world.registry().Find(ai.id);
    std::printf("  %-26s prevalence %.2f  authenticity %+.2f\n",
                ing != nullptr ? ing->name.c_str() : "?", ai.prevalence,
                ai.authenticity);
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: culinary <stats|export|pairing|partners|parse|classify|"
      "similar|authentic|analyze>"
      " [options]\n"
      "global options: --small --seed=N --null-recipes=N"
      " --metrics-out=FILE --trace-out=FILE\n"
      "snapshots: --snapshot-out=FILE (save the world)"
      " --snapshot-in=FILE (load it; corrupt/stale files degrade to a\n"
      "  rebuild, are quarantined, and the snapshot is refreshed)\n"
      "lifecycle (pairing/analyze): --deadline-ms=N --checkpoint=PREFIX"
      " --resume\n");
}

/// Writes the metrics / trace dumps requested on the command line. Failures
/// here degrade the observability artifact, not the analysis, so they warn
/// and turn the command's exit code into 1 only if it was otherwise clean.
int WriteObservabilityOutputs(const GlobalArgs& args, int rc) {
  if (!args.metrics_out.empty()) {
    std::string error;
    if (obs::WriteMetricsJsonFile(obs::MetricsRegistry::Default(),
                                  args.metrics_out, &error)) {
      std::fprintf(stderr, "metrics written to %s\n",
                   args.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "warning: metrics dump failed: %s\n",
                   error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!args.trace_out.empty()) {
    std::string error;
    if (obs::WriteTraceJsonFile(obs::TraceSink::Default(), args.trace_out,
                                &error)) {
      std::fprintf(stderr, "trace written to %s\n", args.trace_out.c_str());
    } else {
      std::fprintf(stderr, "warning: trace dump failed: %s\n", error.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}

int RunCommand(const std::string& cmd, const GlobalArgs& args) {
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "export") return CmdExport(args);
  if (cmd == "pairing") return CmdPairing(args);
  if (cmd == "partners") return CmdPartners(args);
  if (cmd == "parse") return CmdParse(args);
  if (cmd == "classify") return CmdClassify(args);
  if (cmd == "similar") return CmdSimilar(args);
  if (cmd == "authentic") return CmdAuthentic(args);
  if (cmd == "analyze") return CmdAnalyze(args);
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string cmd = argv[1];
  GlobalArgs args = ParseArgs(argc, argv, 2);
  if (!args.unknown_flags.empty() || !args.bad_values.empty()) {
    for (const std::string& flag : args.unknown_flags) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
    }
    for (const std::string& flag : args.bad_values) {
      std::fprintf(stderr, "error: bad numeric value in '%s'\n", flag.c_str());
    }
    PrintUsage();
    return 2;
  }
  // The deadline clock starts here, once: world generation, cache builds
  // and all four ensembles share the one wall-clock budget the operator
  // asked for, rather than each sweep restarting it.
  if (args.deadline_ms > 0.0) {
    args.deadline = culinary::Deadline::After(args.deadline_ms);
  }
  if (!args.metrics_out.empty() || !args.trace_out.empty()) {
    obs::SetEnabled(true);
  }
  int rc = RunCommand(cmd, args);
  return WriteObservabilityOutputs(args, rc);
}
