// chaos_corrupt: deterministically mangles a serialized corpus with the
// damage mix real deployments exhibit. The schedule is a pure function of
// (input bytes, --seed), so a failing downstream run replays exactly.
//
// CSV mode (default): truncation, unterminated quotes, bit flips,
// duplicated records, oversized fields, ragged rows.
//
// Snapshot mode (--snapshot-mode=MODE): targets one corruption class of the
// binary world-snapshot format per run, so every loader branch is
// reachable from a soak script. Modes: flip-magic, zero-section-checksum,
// truncate-mid-section, bitflip-payload, wrong-digest.
//
// Usage: chaos_corrupt <in> <out> [--seed=N]
//          [--rate=0.05] [--no-truncate] [--no-quote] [--no-bitflip]
//          [--no-dup] [--no-oversize] [--no-ragged] [--corrupt-header]
//          [--snapshot-mode=MODE]
//
// Prints the applied mutation to stderr and exits nonzero on IO failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "robustness/chaos.h"
#include "snapshot/chaos.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: chaos_corrupt <in> <out> [--rate=0.05] [--seed=N]\n"
      "                     [--no-truncate] [--no-quote] [--no-bitflip]\n"
      "                     [--no-dup] [--no-oversize] [--no-ragged]\n"
      "                     [--corrupt-header]\n"
      "                     [--snapshot-mode=flip-magic|zero-section-checksum|"
      "truncate-mid-section|bitflip-payload|wrong-digest]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using culinary::StartsWith;
  using culinary::robustness::ChaosOptions;
  using culinary::robustness::ChaosStats;

  if (argc < 3) {
    PrintUsage();
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  ChaosOptions options;
  std::string snapshot_mode;
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    if (StartsWith(a, "--snapshot-mode=")) {
      snapshot_mode = a.substr(strlen("--snapshot-mode="));
    } else if (StartsWith(a, "--rate=")) {
      options.corruption_rate = std::strtod(a.c_str() + strlen("--rate="), nullptr);
    } else if (StartsWith(a, "--seed=")) {
      options.seed = std::strtoull(a.c_str() + strlen("--seed="), nullptr, 10);
    } else if (a == "--no-truncate") {
      options.enable_truncation = false;
    } else if (a == "--no-quote") {
      options.enable_unterminated_quote = false;
    } else if (a == "--no-bitflip") {
      options.enable_bit_flips = false;
    } else if (a == "--no-dup") {
      options.enable_duplicate_lines = false;
    } else if (a == "--no-oversize") {
      options.enable_oversized_fields = false;
    } else if (a == "--no-ragged") {
      options.enable_ragged_rows = false;
    } else if (a == "--corrupt-header") {
      options.preserve_header = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!snapshot_mode.empty()) {
    auto mode = culinary::snapshot::ParseSnapshotCorruptionMode(snapshot_mode);
    if (!mode.ok()) {
      std::fprintf(stderr, "chaos_corrupt: %s\n",
                   mode.status().ToString().c_str());
      PrintUsage();
      return 2;
    }
    culinary::Status status = culinary::snapshot::CorruptSnapshotFile(
        in_path, out_path, mode.value(), options.seed);
    if (!status.ok()) {
      std::fprintf(stderr, "chaos_corrupt: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "chaos_corrupt: %s -> %s (seed %llu): snapshot %s\n",
                 in_path.c_str(), out_path.c_str(),
                 static_cast<unsigned long long>(options.seed),
                 snapshot_mode.c_str());
    return 0;
  }

  ChaosStats stats;
  culinary::Status status = culinary::robustness::CorruptCsvFile(
      in_path, out_path, options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "chaos_corrupt: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "chaos_corrupt: %s -> %s (seed %llu): %s\n",
               in_path.c_str(), out_path.c_str(),
               static_cast<unsigned long long>(options.seed),
               stats.Summary().c_str());
  return 0;
}
