// chaos_corrupt: deterministically mangles a serialized corpus (CSV) with
// the damage mix real scraped corpora exhibit — truncation, unterminated
// quotes, bit flips, duplicated records, oversized fields, ragged rows.
// The schedule is a pure function of (input bytes, --seed), so a failing
// downstream run replays exactly.
//
// Usage: chaos_corrupt <in.csv> <out.csv> [--rate=0.05] [--seed=N]
//                      [--no-truncate] [--no-quote] [--no-bitflip]
//                      [--no-dup] [--no-oversize] [--no-ragged]
//                      [--corrupt-header]
//
// Prints the applied mutation tally to stderr and exits nonzero on IO
// failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "robustness/chaos.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: chaos_corrupt <in.csv> <out.csv> [--rate=0.05] [--seed=N]\n"
      "                     [--no-truncate] [--no-quote] [--no-bitflip]\n"
      "                     [--no-dup] [--no-oversize] [--no-ragged]\n"
      "                     [--corrupt-header]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using culinary::StartsWith;
  using culinary::robustness::ChaosOptions;
  using culinary::robustness::ChaosStats;

  if (argc < 3) {
    PrintUsage();
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  ChaosOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    if (StartsWith(a, "--rate=")) {
      options.corruption_rate = std::strtod(a.c_str() + strlen("--rate="), nullptr);
    } else if (StartsWith(a, "--seed=")) {
      options.seed = std::strtoull(a.c_str() + strlen("--seed="), nullptr, 10);
    } else if (a == "--no-truncate") {
      options.enable_truncation = false;
    } else if (a == "--no-quote") {
      options.enable_unterminated_quote = false;
    } else if (a == "--no-bitflip") {
      options.enable_bit_flips = false;
    } else if (a == "--no-dup") {
      options.enable_duplicate_lines = false;
    } else if (a == "--no-oversize") {
      options.enable_oversized_fields = false;
    } else if (a == "--no-ragged") {
      options.enable_ragged_rows = false;
    } else if (a == "--corrupt-header") {
      options.preserve_header = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      PrintUsage();
      return 2;
    }
  }

  ChaosStats stats;
  culinary::Status status = culinary::robustness::CorruptCsvFile(
      in_path, out_path, options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "chaos_corrupt: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "chaos_corrupt: %s -> %s (seed %llu): %s\n",
               in_path.c_str(), out_path.c_str(),
               static_cast<unsigned long long>(options.seed),
               stats.Summary().c_str());
  return 0;
}
