// loadgen — deterministic request-stream synthesizer for culinary_serve.
//
// Rebuilds the same synthetic world the server loads (same datagen spec,
// same seed) and samples realistic traffic from it: ingredient sets drawn
// from actual recipes, region codes from the world's cuisines. The stream
// is a pure function of (--seed, --traffic-seed, --count, mix), so a bench
// run is reproducible line for line:
//
//   loadgen --small --count=1000 > requests.jsonl
//   loadgen --small --count=1000 --shutdown | culinary_serve --small
//
// Flags:
//   --small / --paper   world the requests are drawn from (default small;
//                       must match the server's world for names to resolve)
//   --seed=N            world seed override (0 = spec default)
//   --traffic-seed=N    seed of the request stream itself (default 1)
//   --count=N           number of request lines (default 100)
//   --k=N               suggestion / neighbor budget (default 5)
//   --batch=N           wrap every N consecutive queries into one
//                       {"op":"batch","requests":[...]} envelope (0/1 =
//                       off). Sub-requests keep their r<i> ids and the
//                       sampled stream is unchanged — only the framing
//                       moves, so a batched run answers the same queries
//                       as an unbatched one. A trailing partial batch is
//                       flushed; interleaved admin/garbage lines stay
//                       unbatched (admin is rejected inside a batch)
//   --out=FILE          write to FILE instead of stdout
//   --shutdown          append a {"op":"shutdown"} line so a piped server
//                       exits when the stream ends
//
// Chaos / overload traffic modes (all deterministic; 0 = off):
//   --deadline-ms=N     attach "deadline_ms":N to every query so the
//                       server's deadline-aware admission has something to
//                       shed against
//   --reload-every=N    interleave an admin {"op":"reload"} every N
//                       queries — combined with injected snapshot faults
//                       this hammers the degraded-reload path under load
//   --health-every=N    interleave an admin {"op":"health"} every N queries
//   --garbage-every=N   interleave a malformed (non-JSON) line every N
//                       queries; the server must reject it at the parser
//                       and keep serving
//
// Mix: 40% score, 30% suggest, 15% fingerprint, 10% similar, 5% ping.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/world.h"
#include "recipe/region.h"
#include "serving/protocol.h"

namespace {

using namespace culinary;  // NOLINT(build/namespaces)

struct LoadgenArgs {
  bool small = true;
  uint64_t seed = 0;
  uint64_t traffic_seed = 1;
  size_t count = 100;
  size_t k = 5;
  size_t batch = 0;
  uint64_t deadline_ms = 0;
  size_t reload_every = 0;
  size_t health_every = 0;
  size_t garbage_every = 0;
  std::string out;
  bool shutdown = false;
  bool usage_error = false;
};

bool ParseUint64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

LoadgenArgs ParseArgs(int argc, char** argv) {
  LoadgenArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    uint64_t number = 0;
    if (key == "--small") {
      args.small = true;
    } else if (key == "--paper") {
      args.small = false;
    } else if (key == "--shutdown") {
      args.shutdown = true;
    } else if (key == "--out") {
      args.out = value;
    } else if (key == "--seed") {
      if (!ParseUint64Value(value, &args.seed)) args.usage_error = true;
    } else if (key == "--traffic-seed") {
      if (!ParseUint64Value(value, &args.traffic_seed))
        args.usage_error = true;
    } else if (key == "--count") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.count = static_cast<size_t>(number);
    } else if (key == "--k") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.k = static_cast<size_t>(number);
    } else if (key == "--batch") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      if (number > serving::kMaxWireBatch) {
        std::fprintf(stderr, "loadgen: --batch=%llu exceeds the wire limit %zu\n",
                     static_cast<unsigned long long>(number),
                     serving::kMaxWireBatch);
        args.usage_error = true;
      }
      args.batch = static_cast<size_t>(number);
    } else if (key == "--deadline-ms") {
      if (!ParseUint64Value(value, &args.deadline_ms)) args.usage_error = true;
    } else if (key == "--reload-every") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.reload_every = static_cast<size_t>(number);
    } else if (key == "--health-every") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.health_every = static_cast<size_t>(number);
    } else if (key == "--garbage-every") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.garbage_every = static_cast<size_t>(number);
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
      args.usage_error = true;
    }
  }
  return args;
}

/// One deterministic request line for index `i`.
std::string MakeRequest(const datagen::SyntheticWorld& world, Rng& rng,
                        size_t i, size_t k, uint64_t deadline_ms) {
  const std::vector<recipe::Recipe>& recipes = world.db().recipes();
  const uint64_t dice = rng.NextBounded(100);
  std::string line = "{\"id\":\"r" + std::to_string(i) + "\",\"op\":\"";
  if (dice < 40 || dice < 70) {
    // score (40) and suggest (30) share the ingredient-set sampling: take a
    // real recipe's ingredients by canonical name.
    const recipe::Recipe& recipe =
        recipes[rng.NextBounded(recipes.size())];
    line += dice < 40 ? "score" : "suggest";
    line += "\",\"ingredients\":[";
    for (size_t j = 0; j < recipe.ingredients.size(); ++j) {
      if (j > 0) line += ',';
      const flavor::Ingredient* ing =
          world.registry().Find(recipe.ingredients[j]);
      line += '"';
      line += serving::EscapeJson(ing != nullptr ? ing->name : "unknown");
      line += '"';
    }
    line += "]";
    if (dice >= 40) line += ",\"k\":" + std::to_string(k);
  } else if (dice < 85) {
    const recipe::Region region =
        recipe::AllRegions()[rng.NextBounded(recipe::kNumRegions)];
    line += "fingerprint\",\"region\":\"";
    line += recipe::RegionCode(region);
    line += "\",\"k\":" + std::to_string(k);
  } else if (dice < 95) {
    const recipe::Region region =
        recipe::AllRegions()[rng.NextBounded(recipe::kNumRegions)];
    line += "similar\",\"region\":\"";
    line += recipe::RegionCode(region);
    line += "\",\"k\":" + std::to_string(k);
  } else {
    line += "ping\"";
  }
  if (deadline_ms > 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  line += '}';
  return line;
}

int Run(const LoadgenArgs& args, std::ostream& out) {
  datagen::WorldSpec spec =
      args.small ? datagen::WorldSpec::Small() : datagen::WorldSpec::Default();
  if (args.seed != 0) spec.seed = args.seed;
  auto world = datagen::GenerateWorld(spec);
  if (!world.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  if (world.value().db().recipes().empty()) {
    std::fprintf(stderr, "loadgen: generated world has no recipes\n");
    return 1;
  }
  Rng rng(args.traffic_seed);
  // --batch buffering: queries accumulate here and flush as one
  // {"op":"batch"} envelope every `args.batch` queries (and at stream end).
  std::vector<std::string> pending;
  size_t batch_index = 0;
  const auto flush_pending = [&] {
    if (pending.empty()) return;
    out << "{\"id\":\"b" << batch_index++ << "\",\"op\":\"batch\",\"requests\":[";
    for (size_t j = 0; j < pending.size(); ++j) {
      if (j > 0) out << ',';
      out << pending[j];
    }
    out << "]}\n";
    pending.clear();
  };
  for (size_t i = 0; i < args.count; ++i) {
    // Interleaved admin/garbage lines ride on the query index, not the RNG,
    // so turning a mode on or off never shifts the sampled query stream.
    // Under --batch, buffered queries flush first so every query still
    // precedes the same admin line it preceded in the unbatched stream —
    // a reload answers queries from the same snapshot generation either way.
    if (args.reload_every > 0 && i > 0 && i % args.reload_every == 0) {
      flush_pending();
      out << "{\"id\":\"reload" << i << "\",\"op\":\"reload\"}\n";
    }
    if (args.health_every > 0 && i > 0 && i % args.health_every == 0) {
      flush_pending();
      out << "{\"id\":\"health" << i << "\",\"op\":\"health\"}\n";
    }
    if (args.garbage_every > 0 && i > 0 && i % args.garbage_every == 0) {
      flush_pending();
      out << "this is not json #" << i << "\n";
    }
    const std::string request =
        MakeRequest(world.value(), rng, i, args.k, args.deadline_ms);
    if (args.batch > 1) {
      pending.push_back(request);
      if (pending.size() >= args.batch) flush_pending();
    } else {
      out << request << '\n';
    }
  }
  flush_pending();
  if (args.shutdown) {
    out << "{\"id\":\"last\",\"op\":\"shutdown\"}\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const LoadgenArgs args = ParseArgs(argc, argv);
  if (args.usage_error) return 2;
  if (!args.out.empty()) {
    std::ofstream file(args.out);
    if (!file) {
      std::fprintf(stderr, "loadgen: cannot open %s\n", args.out.c_str());
      return 1;
    }
    return Run(args, file);
  }
  return Run(args, std::cout);
}
