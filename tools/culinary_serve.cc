// culinary_serve — resident pairing-query server over line-delimited JSON.
//
// Loads the world ONCE into an immutable serving snapshot, then answers
// point queries from stdin (or --requests=FILE), one JSON object per line,
// one response line per request (see src/serving/protocol.h for the wire
// format):
//
//   culinary_serve --small
//   culinary_serve --snapshot-in=world.snap --threads=8
//   loadgen --small --count=1000 | culinary_serve --small
//
// World source (exactly one):
//   --small            miniature synthetic world (default)
//   --paper            calibrated paper-scale world (45k recipes)
//   --snapshot-in=FILE rehydrate from a binary world snapshot. The load is
//                      hardened: corruption or a stale digest quarantines
//                      the file and rebuilds from source (kBestEffort), so
//                      a damaged snapshot degrades startup, never kills it
//
// Engine:
//   --seed=N           reseed the synthetic world (0 = spec default)
//   --threads=N        worker threads draining the admission queue (4)
//   --queue-cap=N      admission-queue bound; overflow is shed with
//                      Unavailable rather than queued without limit (256)
//   --batch-max=N      opportunistic coalescing bound: a worker drains up
//                      to N same-endpoint waiting requests into one
//                      shared-snapshot sweep (16; 1 disables)
//   --null-recipes=N   precompute per-cuisine null-model baselines with N
//                      randomized recipes each (0 = skip; fast startup)
//
// Self-healing:
//   --reload-retries=N      retry attempts per reload (3)
//   --breaker-threshold=N   consecutive reload failures that trip the
//                           circuit breaker open (3)
//   --breaker-cooldown-ms=N breaker cooldown before a half-open probe (1000)
//   --slo                   track per-endpoint SLO burn rates; exported as
//                           slo.* gauges in --metrics-out and summarized on
//                           stderr at exit
//   --slo-latency-us=N      latency objective per endpoint for --slo
//                           (0 = availability-only)
//
// Transport:
//   --requests=FILE    read request lines from FILE instead of stdin
//   --metrics-out=FILE dump the metrics registry as JSON on exit (switches
//                      observability on for the run)
//   --self-signal-ms=N raise SIGTERM at itself after N ms (drain smoke-test
//                      hook)
//
// Admin ops on the wire: {"op":"reload"} rebuilds the world from the same
// source through the hardened reload path (retry + circuit breaker; a
// failed reload leaves the engine serving its last good snapshot in
// "degraded") and RCU-swaps it in; {"op":"health"} reports the health
// state, generation and counters; {"op":"shutdown"} drains and exits 0.
//
// SIGINT/SIGTERM likewise drain gracefully: admission closes (kDraining),
// in-flight requests finish, metrics are flushed, exit status 0.

#include <pthread.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/cancellation.h"
#include "datagen/world.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "robustness/circuit_breaker.h"
#include "robustness/retry.h"
#include "serving/engine.h"
#include "serving/health.h"
#include "serving/protocol.h"
#include "serving/reload.h"
#include "serving/snapshot.h"
#include "snapshot/snapshot.h"

namespace {

using namespace culinary;  // NOLINT(build/namespaces)

volatile std::sig_atomic_t g_signal = 0;

extern "C" void HandleSignal(int sig) { g_signal = sig; }

/// Installs the drain handler WITHOUT SA_RESTART: a SIGINT/SIGTERM landing
/// while the serve loop is blocked in getline makes the read fail with
/// EINTR instead of restarting, so the loop exits and the drain runs.
void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

struct ServeArgs {
  bool small = true;
  uint64_t seed = 0;
  std::string snapshot_in;
  size_t threads = 4;
  size_t queue_cap = 256;
  size_t batch_max = 16;
  size_t null_recipes = 0;
  int reload_retries = 3;
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 1000.0;
  bool slo = false;
  double slo_latency_us = 0.0;
  std::string requests_file;
  std::string metrics_out;
  uint64_t self_signal_ms = 0;
  bool usage_error = false;
};

bool ParseUint64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

ServeArgs ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    uint64_t number = 0;
    if (key == "--small") {
      args.small = true;
    } else if (key == "--paper") {
      args.small = false;
    } else if (key == "--snapshot-in") {
      args.snapshot_in = value;
    } else if (key == "--requests") {
      args.requests_file = value;
    } else if (key == "--metrics-out") {
      args.metrics_out = value;
    } else if (key == "--slo") {
      args.slo = true;
    } else if (key == "--seed") {
      if (!ParseUint64Value(value, &args.seed)) args.usage_error = true;
    } else if (key == "--threads") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.threads = static_cast<size_t>(number);
    } else if (key == "--queue-cap") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.queue_cap = static_cast<size_t>(number);
    } else if (key == "--batch-max") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.batch_max = static_cast<size_t>(number);
    } else if (key == "--null-recipes") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.null_recipes = static_cast<size_t>(number);
    } else if (key == "--reload-retries") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.reload_retries = static_cast<int>(number);
    } else if (key == "--breaker-threshold") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.breaker_threshold = static_cast<int>(number);
    } else if (key == "--breaker-cooldown-ms") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.breaker_cooldown_ms = static_cast<double>(number);
    } else if (key == "--slo-latency-us") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.slo_latency_us = static_cast<double>(number);
    } else if (key == "--self-signal-ms") {
      if (!ParseUint64Value(value, &args.self_signal_ms)) {
        args.usage_error = true;
      }
    } else {
      std::fprintf(stderr, "culinary_serve: unknown flag %s\n", arg.c_str());
      args.usage_error = true;
    }
  }
  return args;
}

/// The world source the flags selected, as a reusable SnapshotSource: the
/// initial load and every hardened reload run the exact same recipe, so a
/// reload can never observe a world the startup path could not have built.
serving::SnapshotSource MakeSource(const ServeArgs& args) {
  serving::SnapshotSource source;
  source.snapshot_options.null_recipes = args.null_recipes;
  datagen::WorldSpec spec =
      args.small ? datagen::WorldSpec::Small() : datagen::WorldSpec::Default();
  if (args.seed != 0) spec.seed = args.seed;
  source.rebuild = [spec]() -> Result<snapshot::LoadedWorld> {
    auto generated = datagen::GenerateWorld(spec);
    if (!generated.ok()) return generated.status();
    snapshot::LoadedWorld world;
    world.registry_ptr = std::move(generated.value().universe.registry);
    world.database = std::move(generated.value().database);
    return world;
  };
  if (!args.snapshot_in.empty()) {
    source.snapshot_path = args.snapshot_in;
    source.expected_digest =
        snapshot::DigestGeneratedWorld(spec.seed, args.small);
    source.policy = robustness::ErrorPolicy::kBestEffort;
    // The server only reads the snapshot; refreshing it is the writer's job
    // (a rewrite here would race a concurrent publisher).
    source.rewrite_snapshot = false;
  }
  return source;
}

int64_t SteadyNowS() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string HealthJson(const std::string& id,
                       const serving::QueryEngine& engine,
                       const serving::ReloadManager& reloads) {
  const serving::QueryEngine::Stats stats = engine.stats();
  std::string out = "{\"id\":\"" + serving::EscapeJson(id) +
                    "\",\"op\":\"health\",\"ok\":true,\"state\":\"";
  out += serving::HealthStateName(engine.health());
  out += "\",\"generation\":" + std::to_string(engine.generation());
  out += ",\"accepted\":" + std::to_string(stats.accepted);
  out += ",\"shed\":" + std::to_string(stats.shed);
  out += ",\"deadline_shed\":" + std::to_string(stats.deadline_shed);
  out += ",\"executed\":" + std::to_string(stats.executed);
  out += ",\"batches\":" + std::to_string(stats.batches);
  out += ",\"coalesced\":" + std::to_string(stats.coalesced);
  out += ",\"reloads\":" + std::to_string(stats.reloads);
  out += ",\"worker_stalls\":" + std::to_string(stats.worker_stalls);
  out += ",\"failed_reloads\":" + std::to_string(reloads.failed_reloads());
  out += ",\"breaker\":\"";
  out += robustness::CircuitBreakerStateName(reloads.breaker().state());
  out += "\"}";
  return out;
}

int Serve(const ServeArgs& args, std::istream& in) {
  const serving::SnapshotSource source = MakeSource(args);
  auto built = serving::BuildServingSnapshot(source);
  if (!built.ok()) {
    std::fprintf(stderr, "culinary_serve: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }

  obs::SloMonitor slo;
  serving::QueryEngineOptions engine_options;
  engine_options.num_threads = args.threads;
  engine_options.queue_capacity = args.queue_cap;
  engine_options.batch_max = args.batch_max;
  if (args.slo) {
    for (const char* name :
         {"ping", "score", "suggest", "fingerprint", "similar"}) {
      obs::SloObjective objective;
      objective.name = name;
      objective.latency_threshold_us = args.slo_latency_us;
      slo.SetObjective(std::move(objective));
    }
    engine_options.slo = &slo;
  }

  // Worker/watchdog threads are spawned with SIGINT/SIGTERM blocked so the
  // kernel routes a process-directed signal to the main thread — the one
  // blocked in getline, which must wake up for the drain to start.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGINT);
  sigaddset(&drain_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);
  serving::QueryEngine engine(std::move(built).value(), engine_options);

  std::thread self_signal;
  if (args.self_signal_ms > 0) {
    const pthread_t main_thread = pthread_self();
    const uint64_t delay_ms = args.self_signal_ms;
    self_signal = std::thread([main_thread, delay_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      pthread_kill(main_thread, SIGTERM);
    });
  }
  pthread_sigmask(SIG_UNBLOCK, &drain_signals, nullptr);

  serving::ReloadManager::Options reload_options;
  reload_options.retry.max_attempts =
      args.reload_retries < 1 ? 1 : args.reload_retries;
  reload_options.breaker.failure_threshold = args.breaker_threshold;
  reload_options.breaker.open_cooldown_ms = args.breaker_cooldown_ms;
  serving::ReloadManager reloads(&engine, std::move(reload_options));

  std::fprintf(stderr, "culinary_serve: ready (%zu recipes, generation %llu)\n",
               engine.snapshot()->db().num_recipes(),
               static_cast<unsigned long long>(engine.generation()));

  std::string line;
  while (g_signal == 0 && std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = serving::ParseRequestLine(line);
    if (!parsed.ok()) {
      std::cout << serving::SerializeError("", parsed.status()) << '\n'
                << std::flush;
      continue;
    }
    const serving::WireRequest& wire = parsed.value();
    if (wire.is_admin && wire.op == "shutdown") {
      std::cout << "{\"id\":\"" << serving::EscapeJson(wire.id)
                << "\",\"op\":\"shutdown\",\"ok\":true}\n"
                << std::flush;
      break;
    }
    if (wire.is_admin && wire.op == "health") {
      if (args.slo) {
        slo.ExportGauges(obs::MetricsRegistry::Default(), SteadyNowS());
      }
      std::cout << HealthJson(wire.id, engine, reloads) << '\n' << std::flush;
      continue;
    }
    if (wire.is_admin && wire.op == "reload") {
      const Status status = reloads.Reload(source);
      if (status.ok()) {
        std::cout << "{\"id\":\"" << serving::EscapeJson(wire.id)
                  << "\",\"op\":\"reload\",\"ok\":true,\"generation\":"
                  << engine.generation() << "}\n"
                  << std::flush;
      } else {
        // The engine keeps serving its last good snapshot (health
        // "degraded"); the error goes to the caller, not the process.
        std::cout << serving::SerializeError(wire.id, status) << '\n'
                  << std::flush;
      }
      continue;
    }
    if (wire.is_batch) {
      // Submit every sub-request before collecting any answer: they land on
      // the admission queue back-to-back, so a coalescing worker sweeps
      // them against one pinned snapshot. Responses come back in wire
      // order regardless of evaluation order.
      std::vector<std::future<serving::Response>> futures;
      std::vector<std::string> sub_ids;
      futures.reserve(wire.batch.size());
      sub_ids.reserve(wire.batch.size());
      for (const serving::WireRequest& sub : wire.batch) {
        futures.push_back(engine.Submit(sub.request));
        sub_ids.push_back(sub.id);
      }
      std::vector<serving::Response> responses;
      responses.reserve(futures.size());
      for (std::future<serving::Response>& future : futures) {
        responses.push_back(future.get());
      }
      std::cout << serving::SerializeBatchResponse(wire.id, sub_ids, responses)
                << '\n'
                << std::flush;
      continue;
    }
    std::future<serving::Response> future = engine.Submit(wire.request);
    std::cout << serving::SerializeResponse(wire.id, future.get()) << '\n'
              << std::flush;
  }

  if (g_signal != 0) {
    std::fprintf(stderr, "culinary_serve: signal %d; draining\n",
                 static_cast<int>(g_signal));
  }
  // Graceful drain, signal or EOF alike: close admission first so queued
  // work finishes under kDraining, then stop (workers drain the queue
  // before joining — their futures all resolve).
  engine.BeginDrain();
  engine.Stop();
  if (self_signal.joinable()) self_signal.join();

  if (args.slo) {
    const int64_t now_s = SteadyNowS();
    slo.ExportGauges(obs::MetricsRegistry::Default(), now_s);
    std::fprintf(stderr, "culinary_serve: slo %s\n",
                 slo.ToJson(now_s).c_str());
  }
  const serving::QueryEngine::Stats stats = engine.stats();
  std::fprintf(stderr,
               "culinary_serve: done (state=%s accepted=%llu shed=%llu "
               "deadline_shed=%llu executed=%llu batches=%llu coalesced=%llu "
               "reloads=%llu stalls=%llu)\n",
               serving::HealthStateName(engine.health()),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.deadline_shed),
               static_cast<unsigned long long>(stats.executed),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.reloads),
               static_cast<unsigned long long>(stats.worker_stalls));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeArgs args = ParseArgs(argc, argv);
  if (args.usage_error) return 2;
  // --slo turns the runtime switch on too: burn-rate gauges go through the
  // gated metrics registry, and "track SLOs" without recording them would
  // be a silent no-op.
  if (!args.metrics_out.empty() || args.slo) obs::SetEnabled(true);
  InstallSignalHandlers();

  int rc = 0;
  if (!args.requests_file.empty()) {
    std::ifstream file(args.requests_file);
    if (!file) {
      std::fprintf(stderr, "culinary_serve: cannot open %s\n",
                   args.requests_file.c_str());
      return 1;
    }
    rc = Serve(args, file);
  } else {
    rc = Serve(args, std::cin);
  }

  if (!args.metrics_out.empty()) {
    std::string error;
    if (!obs::WriteMetricsJsonFile(obs::MetricsRegistry::Default(),
                                   args.metrics_out, &error)) {
      std::fprintf(stderr, "culinary_serve: metrics dump failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  return rc;
}
