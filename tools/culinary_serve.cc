// culinary_serve — resident pairing-query server over line-delimited JSON.
//
// Loads the world ONCE into an immutable serving snapshot, then answers
// point queries from stdin (or --requests=FILE), one JSON object per line,
// one response line per request (see src/serving/protocol.h for the wire
// format):
//
//   culinary_serve --small
//   culinary_serve --snapshot-in=world.snap --threads=8
//   loadgen --small --count=1000 | culinary_serve --small
//
// World source (exactly one):
//   --small            miniature synthetic world (default)
//   --paper            calibrated paper-scale world (45k recipes)
//   --snapshot-in=FILE rehydrate from a binary world snapshot; a triangle
//                      that does not match the registry is rejected with
//                      FailedPrecondition, never read out of bounds
//
// Engine:
//   --seed=N           reseed the synthetic world (0 = spec default)
//   --threads=N        worker threads draining the admission queue (4)
//   --queue-cap=N      admission-queue bound; overflow is shed with
//                      Unavailable rather than queued without limit (256)
//   --null-recipes=N   precompute per-cuisine null-model baselines with N
//                      randomized recipes each (0 = skip; fast startup)
//
// Transport:
//   --requests=FILE    read request lines from FILE instead of stdin
//   --metrics-out=FILE dump the metrics registry as JSON on exit (switches
//                      observability on for the run)
//
// Admin ops on the wire: {"op":"reload"} rebuilds the world from the same
// source and RCU-swaps it in — in-flight queries keep answering from the
// snapshot they pinned; {"op":"shutdown"} drains and exits 0.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "datagen/world.h"
#include "obs/metrics.h"
#include "serving/engine.h"
#include "serving/protocol.h"
#include "serving/snapshot.h"
#include "snapshot/snapshot.h"

namespace {

using namespace culinary;  // NOLINT(build/namespaces)

struct ServeArgs {
  bool small = true;
  uint64_t seed = 0;
  std::string snapshot_in;
  size_t threads = 4;
  size_t queue_cap = 256;
  size_t null_recipes = 0;
  std::string requests_file;
  std::string metrics_out;
  bool usage_error = false;
};

bool ParseUint64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

ServeArgs ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    uint64_t number = 0;
    if (key == "--small") {
      args.small = true;
    } else if (key == "--paper") {
      args.small = false;
    } else if (key == "--snapshot-in") {
      args.snapshot_in = value;
    } else if (key == "--requests") {
      args.requests_file = value;
    } else if (key == "--metrics-out") {
      args.metrics_out = value;
    } else if (key == "--seed") {
      if (!ParseUint64Value(value, &args.seed)) args.usage_error = true;
    } else if (key == "--threads") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.threads = static_cast<size_t>(number);
    } else if (key == "--queue-cap") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.queue_cap = static_cast<size_t>(number);
    } else if (key == "--null-recipes") {
      if (!ParseUint64Value(value, &number)) args.usage_error = true;
      args.null_recipes = static_cast<size_t>(number);
    } else {
      std::fprintf(stderr, "culinary_serve: unknown flag %s\n", arg.c_str());
      args.usage_error = true;
    }
  }
  return args;
}

/// Builds (or rebuilds, for reload) the serving snapshot from the world
/// source the flags selected. A reload runs this whole function again and
/// only then swaps — queries never observe a partially ingested world.
Result<std::shared_ptr<const serving::ServingSnapshot>> BuildSnapshot(
    const ServeArgs& args) {
  serving::ServingSnapshotOptions options;
  options.null_recipes = args.null_recipes;
  if (!args.snapshot_in.empty()) {
    auto loaded = snapshot::LoadWorldSnapshot(args.snapshot_in);
    if (!loaded.ok()) return loaded.status();
    return serving::ServingSnapshot::FromLoadedWorld(
        std::move(loaded).value(), options);
  }
  datagen::WorldSpec spec =
      args.small ? datagen::WorldSpec::Small() : datagen::WorldSpec::Default();
  if (args.seed != 0) spec.seed = args.seed;
  auto world = datagen::GenerateWorld(spec);
  if (!world.ok()) return world.status();
  return serving::ServingSnapshot::FromSyntheticWorld(std::move(world).value(),
                                                      options);
}

int Serve(const ServeArgs& args, std::istream& in) {
  auto built = BuildSnapshot(args);
  if (!built.ok()) {
    std::fprintf(stderr, "culinary_serve: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  serving::QueryEngineOptions engine_options;
  engine_options.num_threads = args.threads;
  engine_options.queue_capacity = args.queue_cap;
  serving::QueryEngine engine(std::move(built).value(), engine_options);
  std::fprintf(stderr, "culinary_serve: ready (%zu recipes, generation %llu)\n",
               engine.snapshot()->db().num_recipes(),
               static_cast<unsigned long long>(engine.generation()));

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = serving::ParseRequestLine(line);
    if (!parsed.ok()) {
      std::cout << serving::SerializeError("", parsed.status()) << '\n'
                << std::flush;
      continue;
    }
    const serving::WireRequest& wire = parsed.value();
    if (wire.is_admin && wire.op == "shutdown") {
      std::cout << "{\"id\":\"" << serving::EscapeJson(wire.id)
                << "\",\"op\":\"shutdown\",\"ok\":true}\n"
                << std::flush;
      break;
    }
    if (wire.is_admin && wire.op == "reload") {
      auto next = BuildSnapshot(args);
      const Status status =
          next.ok() ? engine.Reload(std::move(next).value()) : next.status();
      if (status.ok()) {
        std::cout << "{\"id\":\"" << serving::EscapeJson(wire.id)
                  << "\",\"op\":\"reload\",\"ok\":true,\"generation\":"
                  << engine.generation() << "}\n"
                  << std::flush;
      } else {
        std::cout << serving::SerializeError(wire.id, status) << '\n'
                  << std::flush;
      }
      continue;
    }
    std::future<serving::Response> future = engine.Submit(wire.request);
    std::cout << serving::SerializeResponse(wire.id, future.get()) << '\n'
              << std::flush;
  }
  engine.Stop();
  const serving::QueryEngine::Stats stats = engine.stats();
  std::fprintf(stderr,
               "culinary_serve: done (accepted=%llu shed=%llu executed=%llu "
               "reloads=%llu)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.executed),
               static_cast<unsigned long long>(stats.reloads));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeArgs args = ParseArgs(argc, argv);
  if (args.usage_error) return 2;
  if (!args.metrics_out.empty()) obs::SetEnabled(true);

  int rc = 0;
  if (!args.requests_file.empty()) {
    std::ifstream file(args.requests_file);
    if (!file) {
      std::fprintf(stderr, "culinary_serve: cannot open %s\n",
                   args.requests_file.c_str());
      return 1;
    }
    rc = Serve(args, file);
  } else {
    rc = Serve(args, std::cin);
  }

  if (!args.metrics_out.empty()) {
    std::string error;
    if (!obs::WriteMetricsJsonFile(obs::MetricsRegistry::Default(),
                                   args.metrics_out, &error)) {
      std::fprintf(stderr, "culinary_serve: metrics dump failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  return rc;
}
