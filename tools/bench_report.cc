// Benchmark report runner for the pairing fast path.
//
// Times the two hot kernels this PR optimised against faithful replicas of
// the previous (seed) implementation, and writes a machine-readable JSON
// report (BENCH_pairing.json) with ops/sec and speedup-vs-serial-baseline:
//
//   1. PairingCache construction — sorted-merge SharedCompounds per pair
//      (the old serial build) vs the packed popcount bitset build.
//   2. The Figure-4 per-region pipeline — cache build plus the four-model
//      null sweep. The baseline replays the seed end to end: uint32 cache,
//      single-stream RNG, a fresh heap-allocated sample per draw, skip-scan
//      scoring, and one full real-mean sweep per model. The optimized path
//      is the bitset cache plus CompareAgainstAllModels (block-parallel,
//      allocation-free, real mean computed once).
//
// It also verifies the determinism contract: seeded Z-scores must be
// bit-identical for num_threads ∈ {1, 2, 8}.
//
// Usage: bench_report [--small] [--threads=T] [--reps=R] [--null-recipes=N]
//                     [--out=PATH] [--check=BASELINE.json]
//
// With --check, no report is written; instead the freshly measured bitset
// kernel is compared against the committed baseline and the run fails
// (exit 1) if the kernel regressed by more than 20%. A baseline that cannot
// be compared — unreadable, truncated, or recorded on different hardware or
// world size — is reported as "no comparable baseline" and the check passes
// (exit 0): only a real measured regression should fail CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/null_models.h"
#include "analysis/options.h"
#include "analysis/pairing.h"
#include "common/random.h"
#include "common/statistics.h"
#include "common/string_util.h"
#include "datagen/world.h"
#include "flavor/bitset.h"

namespace {

using culinary::analysis::AnalysisOptions;
using culinary::analysis::FoodPairingResult;
using culinary::analysis::NullModelKind;
using culinary::analysis::NullModelOptions;
using culinary::analysis::NullModelSampler;
using culinary::analysis::PairingCache;

struct Args {
  bool small = false;
  size_t threads = 8;
  size_t reps = 3;
  size_t null_recipes = 20000;
  std::string out_path = "BENCH_pairing.json";
  std::string check_path;  // non-empty → regression-check mode
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--small") {
      args.small = true;
    } else if (culinary::StartsWith(a, "--threads=")) {
      args.threads = std::strtoull(a.c_str() + strlen("--threads="), nullptr, 10);
    } else if (culinary::StartsWith(a, "--reps=")) {
      args.reps = std::strtoull(a.c_str() + strlen("--reps="), nullptr, 10);
    } else if (culinary::StartsWith(a, "--null-recipes=")) {
      args.null_recipes = std::strtoull(
          a.c_str() + strlen("--null-recipes="), nullptr, 10);
    } else if (culinary::StartsWith(a, "--out=")) {
      args.out_path = a.substr(strlen("--out="));
    } else if (culinary::StartsWith(a, "--check=")) {
      args.check_path = a.substr(strlen("--check="));
    }
  }
  args.reps = std::max<size_t>(args.reps, 1);
  return args;
}

/// Wall time since construction, for the per-phase breakdown (whole-phase
/// cost including setup, as opposed to the best-of-reps kernel numbers).
class PhaseTimer {
 public:
  PhaseTimer() : t0_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Best-of-reps wall time of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(size_t reps, Fn&& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Legacy replicas — the seed implementation, kept verbatim so the report's
// "serial baseline" is the code this PR replaced, not a strawman.
// ---------------------------------------------------------------------------

/// Seed-layout pairing cache: hash-map dense index plus a uint32 strict
/// upper triangle. Legacy scoring reads *this* cache, not the new one, so
/// the baseline also pays the seed's memory footprint.
struct LegacyCache {
  std::unordered_map<culinary::flavor::IngredientId, int> dense;
  std::vector<uint32_t> tri;
  size_t n = 0;

  size_t TriIndex(size_t a, size_t b) const {
    return a * (n - 1) - a * (a + 1) / 2 + (b - 1);
  }
  uint32_t SharedByDense(size_t a, size_t b) const {
    if (a == b) return 0;
    if (a > b) std::swap(a, b);
    return tri[TriIndex(a, b)];
  }
  int DenseIndex(culinary::flavor::IngredientId id) const {
    auto it = dense.find(id);
    return it == dense.end() ? -1 : it->second;
  }
};

/// Old PairingCache build: one sorted-merge SharedCompounds per pair into a
/// uint32 triangle.
LegacyCache BuildLegacyCache(
    const culinary::flavor::FlavorRegistry& registry,
    const std::vector<culinary::flavor::IngredientId>& ids) {
  static const culinary::flavor::FlavorProfile kEmpty;
  LegacyCache cache;
  cache.n = ids.size();
  const size_t n = cache.n;
  std::vector<const culinary::flavor::FlavorProfile*> profiles(n, &kEmpty);
  for (size_t i = 0; i < n; ++i) {
    cache.dense[ids[i]] = static_cast<int>(i);
    const culinary::flavor::Ingredient* ing = registry.Find(ids[i]);
    if (ing != nullptr) profiles[i] = &ing->profile;
  }
  cache.tri.assign(n < 2 ? 0 : n * (n - 1) / 2, 0);
  size_t k = 0;
  for (size_t a = 0; a + 1 < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      cache.tri[k++] =
          static_cast<uint32_t>(profiles[a]->SharedCompounds(*profiles[b]));
    }
  }
  return cache;
}

/// Old dense scoring: skip-scan over all slots, per-pair branch + swap +
/// triangle index arithmetic via SharedByDense.
double LegacyScoreDense(const LegacyCache& cache,
                        const std::vector<int>& dense_ids) {
  const size_t n = dense_ids.size();
  if (n < 2) return 0.0;
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    if (dense_ids[i] < 0) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (dense_ids[j] < 0) continue;
      total += cache.SharedByDense(static_cast<size_t>(dense_ids[i]),
                                   static_cast<size_t>(dense_ids[j]));
    }
  }
  return 2.0 * static_cast<double>(total) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

/// Old id-level scoring: a fresh dense vector per recipe, resolved through
/// the hash map, then skip-scan scored.
double LegacyRecipePairingScore(
    const LegacyCache& cache,
    const std::vector<culinary::flavor::IngredientId>& ids) {
  std::vector<int> dense;
  dense.reserve(ids.size());
  for (culinary::flavor::IngredientId id : ids) {
    dense.push_back(cache.DenseIndex(id));
  }
  return LegacyScoreDense(cache, dense);
}

/// Old null-model comparison: one RNG stream, a fresh heap-allocated sample
/// per draw, skip-scan scoring, and (as the seed code did) a serial
/// real-mean sweep over the cuisine per model.
double LegacyNullSweep(const LegacyCache& cache,
                       const culinary::recipe::Cuisine& cuisine,
                       const culinary::flavor::FlavorRegistry& registry,
                       NullModelKind kind, size_t num_recipes, uint64_t seed) {
  auto sampler = NullModelSampler::Make(kind, cuisine, registry);
  if (!sampler.ok()) return 0.0;
  culinary::Rng rng(seed ^ (static_cast<uint64_t>(kind) << 32) ^
                    static_cast<uint64_t>(cuisine.region()));
  culinary::RunningStats stats;
  for (size_t i = 0; i < num_recipes; ++i) {
    std::vector<int> dense = sampler->SampleRecipe(rng);
    if (dense.size() < 2) continue;
    stats.Add(LegacyScoreDense(cache, dense));
  }
  culinary::RunningStats real;
  for (const culinary::recipe::Recipe& r : cuisine.recipes()) {
    if (!r.IsPairable()) continue;
    real.Add(LegacyRecipePairingScore(cache, r.ingredients));
  }
  return stats.mean() + real.mean();
}

constexpr NullModelKind kAllKinds[] = {
    NullModelKind::kRandom, NullModelKind::kFrequency,
    NullModelKind::kCategory, NullModelKind::kFrequencyCategory};

/// Extracts the number following `"key":` in a JSON blob. Returns false if
/// the key is missing. Good enough for the flat reports this tool writes.
bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Extracts the string following `"key":` (same caveats as above).
bool ExtractJsonString(const std::string& json, const std::string& key,
                       std::string* out) {
  std::string needle = "\"" + key + "\": \"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    needle = "\"" + key + "\":\"";
    pos = json.find(needle);
    if (pos == std::string::npos) return false;
  }
  pos += needle.size();
  size_t end = json.find('"', pos);
  if (end == std::string::npos) return false;
  *out = json.substr(pos, end - pos);
  return true;
}

/// Compares the freshly measured kernel against a committed baseline.
/// Returns 1 only for a real measured regression; an absent or
/// incomparable baseline passes with a note so a fresh checkout (or a
/// different machine) never fails CI on stale numbers.
int CheckAgainstBaseline(const Args& args, bool small, double bitset_ns) {
  auto no_baseline = [&](const char* why) {
    std::fprintf(stderr,
                 "[bench_report] no comparable baseline (%s: %s); skipping "
                 "regression check\n",
                 why, args.check_path.c_str());
    return 0;
  };
  std::ifstream in(args.check_path);
  if (!in) return no_baseline("cannot read");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string baseline = buf.str();
  if (baseline.find('}') == std::string::npos) {
    return no_baseline("truncated or empty");
  }
  double baseline_ns = 0;
  if (!ExtractJsonNumber(baseline, "bitset_ns_per_op", &baseline_ns) ||
      baseline_ns <= 0) {
    return no_baseline("lacks bitset_ns_per_op");
  }
  // Numbers from a different machine or world size say nothing about this
  // build; only compare like with like.
  double baseline_hw = 0;
  if (ExtractJsonNumber(baseline, "hardware_concurrency", &baseline_hw) &&
      baseline_hw > 0 &&
      static_cast<unsigned>(baseline_hw) !=
          std::thread::hardware_concurrency()) {
    return no_baseline("recorded on different hardware");
  }
  std::string baseline_world;
  if (ExtractJsonString(baseline, "world", &baseline_world) &&
      baseline_world != (small ? "small" : "default")) {
    return no_baseline("recorded for a different world size");
  }
  if (bitset_ns > 1.2 * baseline_ns) {
    std::fprintf(stderr,
                 "[bench_report] FAIL: bitset kernel regressed: %.3f ns/op "
                 "vs baseline %.3f ns/op (>20%% slower)\n",
                 bitset_ns, baseline_ns);
    return 1;
  }
  std::fprintf(stderr,
               "[bench_report] kernel OK: %.3f ns/op vs baseline %.3f "
               "ns/op\n",
               bitset_ns, baseline_ns);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace culinary;  // NOLINT(build/namespaces)
  Args args = ParseArgs(argc, argv);

  datagen::WorldSpec spec =
      args.small ? datagen::WorldSpec::Small() : datagen::WorldSpec::Default();
  std::fprintf(stderr, "[bench_report] generating world (%s)...\n",
               args.small ? "small" : "default");
  PhaseTimer world_timer;
  auto world_result = datagen::GenerateWorld(spec);
  if (!world_result.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world_result.status().ToString().c_str());
    return 1;
  }
  const double world_generation_ms = world_timer.ElapsedMs();
  const datagen::SyntheticWorld& world = world_result.value();
  const flavor::FlavorRegistry& registry = world.registry();
  recipe::Cuisine cuisine =
      world.db().CuisineFor(recipe::Region::kItaly);
  const std::vector<flavor::IngredientId>& ids = cuisine.unique_ingredients();
  const size_t n = ids.size();
  const size_t num_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  AnalysisOptions exec{.num_threads = args.threads};

  // --- 1. Bitset kernel vs sorted merge --------------------------------
  std::fprintf(stderr, "[bench_report] kernel: %zu ingredients...\n", n);
  PhaseTimer kernel_timer;
  std::vector<const flavor::FlavorProfile*> profiles;
  std::vector<flavor::CompoundBitset> bitsets;
  static const flavor::FlavorProfile kEmpty;
  for (flavor::IngredientId id : ids) {
    const flavor::Ingredient* ing = registry.Find(id);
    profiles.push_back(ing != nullptr ? &ing->profile : &kEmpty);
    bitsets.push_back(flavor::CompoundBitset::FromProfile(
        *profiles.back(), registry.num_molecules()));
  }
  uint64_t sink = 0;
  double merge_ms = TimeMs(args.reps, [&] {
    for (size_t a = 0; a + 1 < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        sink += profiles[a]->SharedCompounds(*profiles[b]);
      }
    }
  });
  double bitset_ms = TimeMs(args.reps, [&] {
    for (size_t a = 0; a + 1 < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        sink += bitsets[a].IntersectionCount(bitsets[b]);
      }
    }
  });
  double merge_ns = merge_ms * 1e6 / static_cast<double>(num_pairs);
  double bitset_ns = bitset_ms * 1e6 / static_cast<double>(num_pairs);
  const double kernel_phase_ms = kernel_timer.ElapsedMs();

  // --- 2. PairingCache construction ------------------------------------
  std::fprintf(stderr, "[bench_report] cache build...\n");
  PhaseTimer build_timer;
  double legacy_build_ms = TimeMs(args.reps, [&] {
    LegacyCache legacy = BuildLegacyCache(registry, ids);
    sink += legacy.tri.empty() ? 0 : legacy.tri.back();
  });
  double new_build_ms = TimeMs(args.reps, [&] {
    PairingCache cache(registry, ids, exec);
    sink += cache.triangle().empty() ? 0 : cache.triangle().back();
  });
  const double build_phase_ms = build_timer.ElapsedMs();

  // --- 3. Figure-4 per-region pipeline ---------------------------------
  // Each side runs what experiment_fig4 runs per region: build the pairing
  // cache, then compare the cuisine against all four null models.
  std::fprintf(stderr,
               "[bench_report] fig4 pipeline: %zu recipes x 4 models...\n",
               args.null_recipes);
  NullModelOptions null_options;
  null_options.num_recipes = args.null_recipes;
  null_options.exec = exec;
  PhaseTimer sweep_timer;
  double acc = 0.0;
  double legacy_sweep_ms = TimeMs(args.reps, [&] {
    LegacyCache legacy = BuildLegacyCache(registry, ids);
    for (NullModelKind kind : kAllKinds) {
      acc += LegacyNullSweep(legacy, cuisine, registry, kind,
                             args.null_recipes, null_options.seed);
    }
  });
  double new_sweep_ms = TimeMs(args.reps, [&] {
    PairingCache fresh(registry, ids, exec);
    auto r =
        analysis::CompareAgainstAllModels(fresh, cuisine, registry, null_options);
    if (r.ok()) {
      for (const FoodPairingResult& fr : *r) acc += fr.null_mean;
    }
  });
  const double sweep_phase_ms = sweep_timer.ElapsedMs();
  PairingCache cache(registry, ids, exec);

  // --- 4. Determinism across thread counts -----------------------------
  std::fprintf(stderr, "[bench_report] determinism check...\n");
  PhaseTimer determinism_timer;
  bool bit_identical = true;
  {
    NullModelOptions det = null_options;
    det.num_recipes = std::min<size_t>(args.null_recipes, 6144);
    std::vector<FoodPairingResult> reference;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      det.exec.num_threads = threads;
      auto r = analysis::CompareAgainstAllModels(cache, cuisine, registry, det);
      if (!r.ok()) {
        bit_identical = false;
        break;
      }
      if (reference.empty()) {
        reference = std::move(r).value();
        continue;
      }
      for (size_t i = 0; i < reference.size(); ++i) {
        const FoodPairingResult& a = reference[i];
        const FoodPairingResult& b = (*r)[i];
        if (a.z_score != b.z_score || a.null_mean != b.null_mean ||
            a.null_stddev != b.null_stddev || a.null_count != b.null_count ||
            a.real_mean != b.real_mean) {
          bit_identical = false;
        }
      }
    }
  }

  const double determinism_check_ms = determinism_timer.ElapsedMs();

  double build_speedup = new_build_ms > 0 ? legacy_build_ms / new_build_ms : 0;
  double sweep_speedup = new_sweep_ms > 0 ? legacy_sweep_ms / new_sweep_ms : 0;
  double kernel_speedup = bitset_ns > 0 ? merge_ns / bitset_ns : 0;
  double total_samples = 4.0 * static_cast<double>(args.null_recipes);

  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(3);
  json << "{\n"
       << "  \"tool\": \"bench_report\",\n"
       << "  \"world\": \"" << (args.small ? "small" : "default") << "\",\n"
       << "  \"threads\": " << args.threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"cuisine_ingredients\": " << n << ",\n"
       << "  \"molecule_universe\": " << registry.num_molecules() << ",\n"
       << "  \"bitset_kernel\": {\n"
       << "    \"sorted_merge_ns_per_op\": " << merge_ns << ",\n"
       << "    \"bitset_ns_per_op\": " << bitset_ns << ",\n"
       << "    \"ops_per_sec\": " << (bitset_ns > 0 ? 1e9 / bitset_ns : 0)
       << ",\n"
       << "    \"speedup\": " << kernel_speedup << "\n"
       << "  },\n"
       << "  \"pairing_cache_build\": {\n"
       << "    \"pairs\": " << num_pairs << ",\n"
       << "    \"serial_baseline_ms\": " << legacy_build_ms << ",\n"
       << "    \"optimized_ms\": " << new_build_ms << ",\n"
       << "    \"pairs_per_sec\": "
       << (new_build_ms > 0 ? static_cast<double>(num_pairs) * 1e3 / new_build_ms
                            : 0)
       << ",\n"
       << "    \"speedup\": " << build_speedup << "\n"
       << "  },\n"
       << "  \"fig4_null_sweep\": {\n"
       << "    \"null_recipes_per_model\": " << args.null_recipes << ",\n"
       << "    \"models\": 4,\n"
       << "    \"includes_cache_build\": true,\n"
       << "    \"serial_baseline_ms\": " << legacy_sweep_ms << ",\n"
       << "    \"optimized_ms\": " << new_sweep_ms << ",\n"
       << "    \"samples_per_sec\": "
       << (new_sweep_ms > 0 ? total_samples * 1e3 / new_sweep_ms : 0) << ",\n"
       << "    \"speedup\": " << sweep_speedup << "\n"
       << "  },\n"
       << "  \"determinism\": {\n"
       << "    \"thread_counts\": [1, 2, 8],\n"
       << "    \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n"
       << "  },\n"
       // Whole-phase wall times (setup + all reps of both sides), so a slow
       // run can be attributed to a phase before reaching for a profiler.
       << "  \"phases\": {\n"
       << "    \"world_generation_ms\": " << world_generation_ms << ",\n"
       << "    \"kernel_ms\": " << kernel_phase_ms << ",\n"
       << "    \"cache_build_ms\": " << build_phase_ms << ",\n"
       << "    \"fig4_sweep_ms\": " << sweep_phase_ms << ",\n"
       << "    \"determinism_check_ms\": " << determinism_check_ms << "\n"
       << "  },\n"
       << "  \"checksum\": " << static_cast<double>(sink % 1000000) + acc
       << "\n"
       << "}\n";

  std::printf("%s", json.str().c_str());

  if (!args.check_path.empty()) {
    return CheckAgainstBaseline(args, args.small, bitset_ns);
  }

  if (!bit_identical) {
    std::fprintf(stderr,
                 "[bench_report] FAIL: z-scores differ across thread counts\n");
    return 1;
  }

  std::ofstream out(args.out_path);
  if (!out) {
    std::fprintf(stderr, "[bench_report] cannot write %s\n",
                 args.out_path.c_str());
    return 1;
  }
  out << json.str();
  std::fprintf(stderr, "[bench_report] wrote %s\n", args.out_path.c_str());
  return 0;
}
